//! The runtime: type registry, dispatch, lifecycle management, and the
//! public [`Runtime`] / [`RuntimeBuilder`] / [`ActorRef`] API.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use crate::actor::{Actor, AnyActor, Handler, Message};
use crate::chaos::{ChaosNetStatsSnapshot, ChaosRuntime, FaultPlan, NetFault};
use crate::directory::Directory;
use crate::envelope::{Envelope, EnvelopeKind};
use crate::error::{CallError, PromiseError, SendError};
use crate::identity::{ActorId, ActorKey, ActorTypeId, Origin, SiloId};
use crate::mailbox::PushOutcome;
use crate::metrics::{RuntimeMetrics, RuntimeMetricsSnapshot};
use crate::net::{clock_channel, clock_loop, ClockHandle, NetConfig, TimerHandle};
use crate::placement::{Placement, PreferLocalPlacement};
use crate::promise::{Promise, ReplyTo};
use crate::silo::{worker_loop, Activation, SiloConfig, SiloUnit};
use crate::topology::{ActorTopology, CallDecl};

/// How many times dispatch re-resolves an activation after losing a race
/// with deactivation. Each retry creates a fresh activation, so more than a
/// couple of iterations indicates a misconfigured idle timeout.
const DISPATCH_RETRIES: usize = 16;

type Factory = Arc<dyn Fn(&ActorId) -> Box<dyn AnyActor> + Send + Sync>;

struct TypeEntry {
    name: &'static str,
    factory: Factory,
    declared_calls: &'static [CallDecl],
}

#[derive(Default)]
struct RegistryInner {
    entries: Vec<TypeEntry>,
    /// Name → slot index. Registration and reference minting both resolve
    /// names, so lookups must not scan `entries` under the lock.
    by_name: HashMap<&'static str, u16>,
}

struct Registry {
    inner: RwLock<RegistryInner>,
    /// Distinguishes this registry in the thread-local type-id cache, so
    /// references minted against one runtime never leak cached ids into
    /// another living in the same thread (tests routinely run several).
    uid: u64,
}

impl Default for Registry {
    fn default() -> Self {
        static NEXT_UID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        Registry {
            inner: RwLock::default(),
            uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
        }
    }
}

thread_local! {
    /// `(registry uid, Rust type) → ActorTypeId` memo for reference
    /// minting. Safe to cache forever: `Registry::register` keeps the
    /// `ActorTypeId` of a name stable across re-registration, and ids are
    /// never removed. Misses fall through to the registry lock; hits turn
    /// `typed_ref` into a pure thread-local map probe, which is what makes
    /// per-message `ActorRef` minting cheap on the dispatch fast path.
    static TYPE_ID_CACHE: std::cell::RefCell<HashMap<(u64, std::any::TypeId), ActorTypeId>> =
        RefCell::new(HashMap::new());
}

impl Registry {
    /// Lock-free-in-the-common-case lookup via the thread-local cache.
    fn lookup_cached<A: Actor>(&self) -> Option<ActorTypeId> {
        TYPE_ID_CACHE.with(|cache| {
            let key = (self.uid, std::any::TypeId::of::<A>());
            if let Some(&id) = cache.borrow().get(&key) {
                return Some(id);
            }
            let id = self.lookup(A::TYPE_NAME)?;
            cache.borrow_mut().insert(key, id);
            Some(id)
        })
    }

    fn register(
        &self,
        name: &'static str,
        factory: Factory,
        declared_calls: &'static [CallDecl],
    ) -> ActorTypeId {
        let mut inner = self.inner.write();
        if let Some(&pos) = inner.by_name.get(name) {
            // Re-registration keeps the ActorTypeId stable (references
            // minted earlier must keep resolving) and replaces the
            // factory: this supports tests that rebuild fixtures, and
            // matches Orleans' last-writer-wins code deployment semantics.
            let entry = &mut inner.entries[pos as usize];
            entry.factory = factory;
            entry.declared_calls = declared_calls;
            return ActorTypeId(pos);
        }
        assert!(
            inner.entries.len() < u16::MAX as usize,
            "too many actor types"
        );
        let pos = inner.entries.len() as u16;
        inner.entries.push(TypeEntry {
            name,
            factory,
            declared_calls,
        });
        inner.by_name.insert(name, pos);
        ActorTypeId(pos)
    }

    fn lookup(&self, name: &'static str) -> Option<ActorTypeId> {
        self.inner
            .read()
            .by_name
            .get(name)
            .map(|&pos| ActorTypeId(pos))
    }

    fn factory(&self, type_id: ActorTypeId) -> Option<Factory> {
        self.inner
            .read()
            .entries
            .get(type_id.index())
            .map(|e| Arc::clone(&e.factory))
    }

    fn name(&self, type_id: ActorTypeId) -> Option<&'static str> {
        self.inner
            .read()
            .entries
            .get(type_id.index())
            .map(|e| e.name)
    }

    fn declared_calls(&self, type_id: ActorTypeId) -> Option<&'static [CallDecl]> {
        self.inner
            .read()
            .entries
            .get(type_id.index())
            .map(|e| e.declared_calls)
    }

    /// Snapshot of every registered type with its declared edges.
    fn topology(&self) -> Vec<ActorTopology> {
        self.inner
            .read()
            .entries
            .iter()
            .map(|e| ActorTopology {
                name: e.name,
                calls: e.declared_calls,
            })
            .collect()
    }
}

/// What happens to an activation whose handler panicked.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PanicPolicy {
    /// Keep the activation alive with its in-memory state (the message
    /// that panicked is lost; its reply resolves as `Lost`).
    #[default]
    Keep,
    /// Deactivate the activation after the faulted turn **without**
    /// running `on_deactivate` (the in-memory state is suspect, so it is
    /// not flushed); the next message re-activates from the last durable
    /// state — Orleans' faulted-grain behaviour.
    Deactivate,
}

/// Runtime-wide configuration derived from the builder.
pub(crate) struct CoreConfig {
    /// Max envelopes one scheduling slice processes before yielding.
    pub max_batch: usize,
    /// Activations idle longer than this are reclaimed; `None` disables
    /// idle deactivation.
    pub idle_timeout: Option<Duration>,
    /// How often the janitor scans for idle activations.
    pub janitor_interval: Duration,
    /// Faulted-activation policy.
    pub panic_policy: PanicPolicy,
    /// Runs once after each deactivation sweep (janitor batch, shutdown
    /// drain, or a single on-idle deactivation). The write-coalescing
    /// seam for deactivation-time state flushes: actors persist via
    /// deferred puts in `on_deactivate`, and this hook issues the one
    /// `sync()` that makes the whole batch durable with a single group
    /// fsync instead of one per actor.
    pub on_deactivation_sweep: Option<Arc<dyn Fn() + Send + Sync>>,
}

/// Shared state of the runtime; everything threads need.
pub(crate) struct RuntimeCore {
    pub silos: Vec<SiloUnit>,
    pub directory: Directory,
    registry: Registry,
    placement: Box<dyn Placement>,
    pub clock: ClockHandle,
    pub config: CoreConfig,
    pub metrics: RuntimeMetrics,
    /// Seeded network-fault dice, when a [`FaultPlan`] with message faults
    /// is installed.
    chaos: Option<ChaosRuntime>,
    /// Identities evicted by a silo crash and not yet reactivated; lets the
    /// `reactivations` metric count exactly the crash-displaced actors.
    /// Only consulted when `silo_crashes > 0`, so fault-free runs never
    /// touch this lock.
    crashed: Mutex<HashSet<ActorId>>,
    /// Refuses *client* dispatches once shutdown begins, while letting
    /// in-flight actor-to-actor cascades complete.
    accepting: AtomicBool,
    shutdown: AtomicBool,
    start: Instant,
    /// The janitor thread's handle, so shutdown can unpark it instead of
    /// waiting out its scan interval.
    janitor_thread: std::sync::OnceLock<std::thread::Thread>,
}

impl RuntimeCore {
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    pub fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Typed reference construction (shared by `Runtime`, handles, and
    /// actor contexts).
    pub(crate) fn typed_ref<A: Actor>(
        self: &Arc<Self>,
        key: ActorKey,
        origin: Origin,
    ) -> Result<ActorRef<A>, SendError> {
        let type_id = self
            .registry
            .lookup_cached::<A>()
            .ok_or_else(|| SendError::NotRegistered(A::TYPE_NAME.to_string()))?;
        Ok(ActorRef {
            core: Arc::clone(self),
            id: ActorId::new(type_id, key),
            origin,
            _marker: PhantomData,
        })
    }

    /// Dispatch with network-latency accounting.
    pub(crate) fn dispatch(
        self: &Arc<Self>,
        id: ActorId,
        env: Envelope,
        origin: Origin,
    ) -> Result<(), SendError> {
        self.dispatch_inner(id, env, origin, true)
    }

    /// Dispatch that never charges latency (deliveries whose latency was
    /// already paid, timers, self-notifications).
    pub(crate) fn dispatch_free(
        self: &Arc<Self>,
        id: ActorId,
        env: Envelope,
        origin: Origin,
    ) -> Result<(), SendError> {
        self.dispatch_inner(id, env, origin, false)
    }

    fn dispatch_inner(
        self: &Arc<Self>,
        id: ActorId,
        mut env: Envelope,
        origin: Origin,
        charge_latency: bool,
    ) -> Result<(), SendError> {
        if self.is_shutdown() {
            return Err(SendError::RuntimeShutdown);
        }
        if origin == Origin::Client && !self.accepting.load(Ordering::Acquire) {
            return Err(SendError::RuntimeShutdown);
        }
        #[cfg(debug_assertions)]
        self.enforce_declared_edge(&id);
        for _ in 0..DISPATCH_RETRIES {
            let act = self.lookup_or_activate(&id, origin)?;
            if !self.silos[act.silo.index()].is_alive() {
                // The hosting silo crashed between placement and now. If
                // the mailbox is quiescent we can evict it here and retry,
                // which re-places on a live silo; otherwise fall through —
                // a retired mailbox hands the envelope back below, and a
                // scheduled one is torn down by the crash machinery (this
                // envelope then resolves as `SiloLost`).
                if act.mailbox.try_retire() {
                    self.crash_finish(&act, Vec::new());
                    continue;
                }
            }
            if charge_latency {
                if let Some(mut delay) = self.clock.hop_delay(origin, act.silo) {
                    self.metrics.remote_messages.fetch_add(1, Ordering::Relaxed);
                    // The message is on the simulated wire: this is where
                    // the chaos layer gets to lose, double, or stall it.
                    if let Some(chaos) = &self.chaos {
                        match chaos.decide() {
                            NetFault::Deliver => {}
                            NetFault::Drop => {
                                chaos.stats.dropped.fetch_add(1, Ordering::Relaxed);
                                // The sender's promise must not hang forever.
                                env.abort(PromiseError::Lost);
                                return Ok(());
                            }
                            NetFault::Duplicate => {
                                if let Some(dup) = env.try_replay() {
                                    chaos.stats.duplicated.fetch_add(1, Ordering::Relaxed);
                                    self.clock.deliver_after(
                                        id.clone(),
                                        Origin::Silo(act.silo),
                                        dup,
                                        delay + Duration::from_micros(50),
                                    );
                                }
                            }
                            NetFault::Delay(extra) => {
                                chaos.stats.delayed.fetch_add(1, Ordering::Relaxed);
                                delay += extra;
                            }
                        }
                    }
                    // Redeliver as if originating on the target silo so the
                    // hop is charged exactly once.
                    self.clock
                        .deliver_after(id, Origin::Silo(act.silo), env, delay);
                    return Ok(());
                }
            }
            self.metrics.local_messages.fetch_add(1, Ordering::Relaxed);
            match act.mailbox.push(env) {
                PushOutcome::Enqueued => return Ok(()),
                PushOutcome::EnqueuedNeedsSchedule => {
                    self.silos[act.silo.index()].enqueue_run(Arc::clone(&act));
                    return Ok(());
                }
                PushOutcome::Retired(back) => {
                    // Lost the race with deactivation: unlink the corpse and
                    // retry, which re-activates.
                    self.directory.remove_entry(&id, &act);
                    env = back;
                }
            }
        }
        Err(SendError::ActivationRace)
    }

    /// Debug-build check that a dispatch issued from inside an actor turn
    /// follows an edge the sending actor type declared
    /// ([`crate::Actor::declared_calls`]). Dispatches from client, clock,
    /// or janitor threads (no turn running) are exempt, as are self-sends.
    ///
    /// Panicking is the right failure mode: an undeclared edge means the
    /// static call graph `aodb-lint` verifies is incomplete, so its
    /// deadlock-freedom guarantee is void. The panic surfaces inside the
    /// sending turn, where the standard handler-panic machinery contains
    /// it (metrics increment + `Lost` reply).
    #[cfg(debug_assertions)]
    fn enforce_declared_edge(&self, target: &ActorId) {
        let Some(src) = crate::topology::current_turn_actor() else {
            return;
        };
        if src == target.type_id {
            return;
        }
        let Some(target_name) = self.registry.name(target.type_id) else {
            return; // dispatch itself will report NotRegistered
        };
        let declared = self.registry.declared_calls(src).unwrap_or(&[]);
        if !declared.iter().any(|d| d.covers(target_name)) {
            let src_name = self.registry.name(src).unwrap_or("<unknown>");
            panic!(
                "undeclared actor call edge: `{src_name}` -> `{target_name}`. \
                 Every cross-actor send must be declared in the sender's \
                 `Actor::declared_calls()` so the static call graph stays \
                 sound (see aodb-analysis)."
            );
        }
    }

    fn lookup_or_activate(
        self: &Arc<Self>,
        id: &ActorId,
        origin: Origin,
    ) -> Result<Arc<Activation>, SendError> {
        if let Some(act) = self.directory.get(id) {
            return Ok(act);
        }
        let factory = self
            .registry
            .factory(id.type_id)
            .ok_or_else(|| SendError::NotRegistered(format!("type #{}", id.type_id.index())))?;
        let silo = self.place_alive(id, origin)?;
        let now = self.now_ms();
        let (act, created) = self.directory.get_or_insert_with(id, || {
            Arc::new(Activation::new(id.clone(), silo, factory(id), now))
        });
        if created {
            self.metrics.activations.fetch_add(1, Ordering::Relaxed);
            if self.metrics.silo_crashes.load(Ordering::Relaxed) > 0
                && self.crashed.lock().remove(id)
            {
                self.metrics.reactivations.fetch_add(1, Ordering::Relaxed);
            }
            // The mailbox was born Scheduled holding the activate turn;
            // this is its one matching run-queue insertion.
            self.silos[act.silo.index()].enqueue_run(Arc::clone(&act));
        }
        Ok(act)
    }

    /// Placement that never targets a crashed silo: starts from the
    /// strategy's preferred silo and walks forward to the first live one,
    /// so crash re-placement stays deterministic given the set of live
    /// silos. With every silo dead there is nowhere to activate.
    fn place_alive(&self, id: &ActorId, origin: Origin) -> Result<SiloId, SendError> {
        let n = self.silos.len();
        let first = self.placement.place(id, origin, n);
        for off in 0..n {
            let unit = &self.silos[(first.index() + off) % n];
            if unit.is_alive() {
                return Ok(unit.id);
            }
        }
        Err(SendError::NoSiloAvailable)
    }

    /// Retires (if needed) and finalizes one activation — a sweep of one,
    /// so even a lone `ctx.deactivate()` gets its durability barrier.
    pub(crate) fn deactivate(self: &Arc<Self>, act: &Arc<Activation>) {
        // Unlink first so new messages create a fresh activation instead of
        // piling onto the retired mailbox.
        self.directory.remove_entry(&act.id, act);
        crate::silo::finalize_deactivation_sweep(self, std::slice::from_ref(act));
    }

    /// Discards a faulted activation without running `on_deactivate`
    /// (its in-memory state is suspect and must not be flushed).
    pub(crate) fn discard_faulted(self: &Arc<Self>, act: &Arc<Activation>) {
        self.directory.remove_entry(&act.id, act);
        crate::silo::discard_activation(self, act);
    }

    /// Tears down one crash-evicted activation whose mailbox the caller
    /// has already retired. Pending envelopes abort as
    /// [`PromiseError::SiloLost`]; user turns among them count into
    /// `lost_turns`; the identity is recorded so its next activation
    /// counts as a reactivation; the actor object is dropped **without**
    /// `on_deactivate` (a crash never flushes — only state persisted
    /// before the crash survives, which is exactly the guarantee the
    /// chaos tests probe). Returns the number of lost user envelopes.
    pub(crate) fn crash_finish(
        self: &Arc<Self>,
        act: &Arc<Activation>,
        envs: Vec<Envelope>,
    ) -> u64 {
        let mut lost = 0u64;
        for env in envs {
            if env.kind() == EnvelopeKind::User {
                lost += 1;
            }
            env.abort(PromiseError::SiloLost);
        }
        if lost > 0 {
            self.metrics.lost_turns.fetch_add(lost, Ordering::Relaxed);
        }
        // Record the identity *before* unlinking it: a racing dispatch can
        // re-create the activation the instant the directory entry is gone,
        // and its reactivation must find the marker already set.
        self.crashed.lock().insert(act.id.clone());
        self.directory.remove_entry(&act.id, act);
        crate::silo::discard_activation(self, act);
        lost
    }

    /// Crash-evicts an activation the caller owns by having dequeued it
    /// from a (now dead) silo's run queue: retiring the mailbox is legal
    /// because dequeuing grants exclusive ownership of the Scheduled state.
    pub(crate) fn crash_evict_owned(self: &Arc<Self>, act: &Arc<Activation>) -> u64 {
        let envs = act.mailbox.retire_and_drain();
        self.crash_finish(act, envs)
    }

    /// Abruptly kills a silo, modelling a process crash: queued and
    /// in-flight turns are lost (their promises resolve as
    /// [`PromiseError::SiloLost`]), unpersisted actor state is dropped
    /// without `on_deactivate`, and every hosted activation is evicted
    /// from the directory so the next message re-places it on a live silo
    /// and reactivates it from its store-persisted snapshot. Idempotent:
    /// killing a dead silo is a no-op.
    ///
    /// Turns already executing when the kill lands run to their envelope
    /// boundary and are then torn down by their own worker — at the
    /// observable level they are indistinguishable from turns that
    /// completed just before the crash. The method waits briefly for such
    /// stragglers; the returned report counts what was evicted
    /// synchronously (a worker finishing a long turn after the window
    /// still tears its activation down itself).
    pub(crate) fn kill_silo(self: &Arc<Self>, silo: SiloId) -> SiloCrashReport {
        assert!(silo.index() < self.silos.len(), "no such silo: {silo}");
        let unit = &self.silos[silo.index()];
        let mut report = SiloCrashReport {
            silo,
            evicted_activations: 0,
            lost_envelopes: 0,
        };
        if !unit.mark_dead() {
            return report;
        }
        self.metrics.silo_crashes.fetch_add(1, Ordering::Relaxed);
        // Workers parked or mid-search must observe the flag and start
        // aborting whatever they find.
        unit.wake_all_workers();
        let deadline = Instant::now() + Duration::from_millis(250);
        loop {
            // Drain the run queue ourselves: dequeuing grants ownership, so
            // each popped activation is torn down right here.
            for act in unit.drain_runnable() {
                report.lost_envelopes += self.crash_evict_owned(&act);
                report.evicted_activations += 1;
            }
            // Sweep the directory for idle residents; activations running a
            // turn right now refuse `try_retire` and are counted as
            // stragglers for the bounded wait below.
            let mut stragglers = 0usize;
            for act in self.directory.collect_on_silo(silo) {
                if act.mailbox.try_retire() {
                    report.lost_envelopes += self.crash_finish(&act, Vec::new());
                    report.evicted_activations += 1;
                } else {
                    stragglers += 1;
                }
            }
            if stragglers == 0 || Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        report
    }

    /// Brings a killed silo back into service. The silo returns empty —
    /// its actors reactivate lazily, on their next message, from persisted
    /// state. Returns `false` if the silo was not dead.
    pub(crate) fn restart_silo(&self, silo: SiloId) -> bool {
        assert!(silo.index() < self.silos.len(), "no such silo: {silo}");
        let unit = &self.silos[silo.index()];
        let revived = unit.mark_alive();
        if revived {
            unit.wake_all_workers();
        }
        revived
    }

    pub(crate) fn schedule_delayed(self: &Arc<Self>, id: ActorId, env: Envelope, delay: Duration) {
        // Deliver with a placement hint of "wherever it was" — Origin::Client
        // placement fallback is deterministic hashing.
        self.clock.deliver_after(id, Origin::Client, env, delay);
    }

    fn janitor_pass(self: &Arc<Self>) {
        let Some(idle) = self.config.idle_timeout else {
            return;
        };
        let now = self.now_ms();
        let cutoff = now.saturating_sub(idle.as_millis() as u64);
        // Collect the whole batch first, then finalize it as one sweep:
        // every actor's deferred state flush rides a single durability
        // barrier instead of paying one fsync per deactivation.
        let mut batch = Vec::new();
        for act in self.directory.collect_idle(cutoff) {
            if act.mailbox.try_retire() {
                self.directory.remove_entry(&act.id, &act);
                batch.push(act);
            }
        }
        crate::silo::finalize_deactivation_sweep(self, &batch);
    }
}

/// Janitor thread body. Parks between scans — `park_timeout` for the scan
/// interval when idle deactivation is on, indefinitely when it is off —
/// so shutdown's unpark is noticed immediately instead of after up to a
/// full `janitor_interval`, and an idle-timeout-less runtime performs no
/// periodic janitor wakeups at all.
fn janitor_loop(core: Arc<RuntimeCore>) {
    let _ = core.janitor_thread.set(std::thread::current());
    loop {
        if core.config.idle_timeout.is_some() {
            std::thread::park_timeout(core.config.janitor_interval);
        } else {
            // Nothing to scan for: sleep until shutdown unparks us.
            // (Spurious unparks just loop back here.)
            std::thread::park();
        }
        if core.is_shutdown() {
            return;
        }
        core.janitor_pass();
    }
}

/// Builder for a [`Runtime`].
pub struct RuntimeBuilder {
    silos: Vec<SiloConfig>,
    placement: Box<dyn Placement>,
    net: NetConfig,
    max_batch: usize,
    idle_timeout: Option<Duration>,
    janitor_interval: Duration,
    panic_policy: PanicPolicy,
    chaos: Option<FaultPlan>,
    on_deactivation_sweep: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl Default for RuntimeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl RuntimeBuilder {
    /// Starts from a single 2-worker silo, prefer-local placement, no
    /// simulated network, no idle deactivation.
    pub fn new() -> Self {
        RuntimeBuilder {
            silos: vec![SiloConfig::default()],
            placement: Box::new(PreferLocalPlacement),
            net: NetConfig::disabled(),
            max_batch: 16,
            idle_timeout: None,
            janitor_interval: Duration::from_millis(100),
            panic_policy: PanicPolicy::Keep,
            chaos: None,
            on_deactivation_sweep: None,
        }
    }

    /// Replaces the silo layout with `count` identical silos of
    /// `workers_each` worker threads.
    pub fn silos(mut self, count: usize, workers_each: usize) -> Self {
        assert!(count > 0, "at least one silo required");
        assert!(workers_each > 0, "at least one worker per silo required");
        self.silos = vec![
            SiloConfig {
                workers: workers_each
            };
            count
        ];
        self
    }

    /// Appends one silo with the given worker count (heterogeneous
    /// clusters).
    pub fn add_silo(mut self, workers: usize) -> Self {
        assert!(workers > 0);
        self.silos.push(SiloConfig { workers });
        self
    }

    /// Sets the placement strategy.
    pub fn placement(mut self, p: impl Placement) -> Self {
        self.placement = Box::new(p);
        self
    }

    /// Sets the simulated-network profile.
    pub fn network(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Enables idle deactivation after `timeout` of inactivity.
    pub fn idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = Some(timeout);
        self
    }

    /// How often the janitor scans for idle activations.
    pub fn janitor_interval(mut self, interval: Duration) -> Self {
        self.janitor_interval = interval;
        self
    }

    /// Max envelopes per scheduling slice (fairness/throughput knob).
    pub fn max_batch(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.max_batch = n;
        self
    }

    /// Sets what happens to activations whose handlers panic.
    pub fn panic_policy(mut self, policy: PanicPolicy) -> Self {
        self.panic_policy = policy;
        self
    }

    /// Installs a hook that runs once after every deactivation sweep —
    /// a janitor idle batch, the shutdown drain, or a single on-demand
    /// deactivation. Wire it to the state store's `sync()` so
    /// write-on-deactivate flushes performed with deferred puts get one
    /// coalesced durability barrier per sweep instead of one fsync per
    /// actor.
    pub fn on_deactivation_sweep(mut self, hook: impl Fn() + Send + Sync + 'static) -> Self {
        self.on_deactivation_sweep = Some(Arc::new(hook));
        self
    }

    /// Installs a seeded [`FaultPlan`]: its network faults apply to every
    /// message crossing the simulated network boundary (so a [`NetConfig`]
    /// with latency — e.g. [`NetConfig::lan`] — must be set for them to
    /// bite), and its crash events are scheduled on the runtime clock.
    pub fn chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Spawns worker, clock, and janitor threads and returns the runtime.
    pub fn build(self) -> Runtime {
        let (clock, clock_rx) = clock_channel(self.net);
        let chaos_dice = self
            .chaos
            .as_ref()
            .and_then(|p| p.net.map(|cfg| ChaosRuntime::new(p.seed, cfg)));
        let core = Arc::new(RuntimeCore {
            silos: self
                .silos
                .iter()
                .enumerate()
                .map(|(i, cfg)| SiloUnit::new(SiloId(i as u32), *cfg))
                .collect(),
            directory: Directory::new(),
            registry: Registry::default(),
            placement: self.placement,
            clock,
            config: CoreConfig {
                max_batch: self.max_batch,
                idle_timeout: self.idle_timeout,
                janitor_interval: self.janitor_interval,
                panic_policy: self.panic_policy,
                on_deactivation_sweep: self.on_deactivation_sweep,
            },
            metrics: RuntimeMetrics::default(),
            chaos: chaos_dice,
            crashed: Mutex::new(HashSet::new()),
            accepting: AtomicBool::new(true),
            shutdown: AtomicBool::new(false),
            start: Instant::now(),
            janitor_thread: std::sync::OnceLock::new(),
        });

        // Schedule the plan's crash events on the runtime clock. The
        // control closure spawns a dedicated thread because `kill_silo`
        // waits for in-flight turns and must not stall timer deliveries.
        if let Some(plan) = &self.chaos {
            for ev in &plan.crashes {
                assert!(
                    ev.silo.index() < core.silos.len(),
                    "fault plan targets nonexistent silo {}",
                    ev.silo
                );
                let (silo, restart_after) = (ev.silo, ev.restart_after);
                core.clock.control(
                    ev.at,
                    Box::new(move |core: &Arc<RuntimeCore>| {
                        let core = Arc::clone(core);
                        std::thread::spawn(move || {
                            core.kill_silo(silo);
                            if let Some(after) = restart_after {
                                std::thread::sleep(after);
                                core.restart_silo(silo);
                            }
                        });
                    }),
                );
            }
        }

        let mut threads = Vec::new();
        for silo in &core.silos {
            for w in 0..silo.config.workers {
                let core = Arc::clone(&core);
                let silo_id = silo.id;
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("aodb-{silo_id}-w{w}"))
                        .spawn(move || worker_loop(core, silo_id, w))
                        .expect("spawn worker"),
                );
            }
        }
        {
            let weak = Arc::downgrade(&core);
            threads.push(
                std::thread::Builder::new()
                    .name("aodb-clock".into())
                    .spawn(move || clock_loop(weak, clock_rx))
                    .expect("spawn clock"),
            );
        }
        {
            let core = Arc::clone(&core);
            threads.push(
                std::thread::Builder::new()
                    .name("aodb-janitor".into())
                    .spawn(move || janitor_loop(core))
                    .expect("spawn janitor"),
            );
        }
        Runtime {
            core,
            threads: Some(threads),
        }
    }
}

/// What [`Runtime::kill_silo`] tore down synchronously.
///
/// Turns still executing when the kill landed are torn down by their own
/// workers moments later and are not counted here; the `silo_crashes` /
/// `lost_turns` metrics cover those too.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiloCrashReport {
    /// The silo that was killed.
    pub silo: SiloId,
    /// Activations evicted from the directory by this call.
    pub evicted_activations: usize,
    /// Queued user envelopes aborted as [`PromiseError::SiloLost`].
    pub lost_envelopes: u64,
}

/// A running actor-oriented database runtime.
///
/// Dropping the runtime performs an orderly shutdown: client traffic is
/// refused, in-flight work drains, every activation is deactivated (running
/// `on_deactivate`, where persistent actors flush state), and all threads
/// join.
pub struct Runtime {
    core: Arc<RuntimeCore>,
    threads: Option<Vec<JoinHandle<()>>>,
}

impl Runtime {
    /// Entry point: a builder with sensible defaults.
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::new()
    }

    /// Single-silo runtime with `workers` threads; the common test fixture.
    pub fn single(workers: usize) -> Runtime {
        RuntimeBuilder::new().silos(1, workers).build()
    }

    /// Registers actor type `A` with its activation factory. The factory
    /// runs when a message targets an identity with no live activation.
    /// `A`'s declared call edges ([`Actor::declared_calls`]) are captured
    /// alongside the factory; debug builds enforce them at dispatch time.
    pub fn register<A: Actor>(
        &self,
        factory: impl Fn(&ActorId) -> A + Send + Sync + 'static,
    ) -> ActorTypeId {
        self.core.registry.register(
            A::TYPE_NAME,
            Arc::new(move |id| Box::new(factory(id))),
            A::declared_calls(),
        )
    }

    /// Typed reference from an external client (pays client latency if the
    /// network profile defines one).
    pub fn actor_ref<A: Actor>(&self, key: impl Into<ActorKey>) -> ActorRef<A> {
        self.try_actor_ref(key).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Runtime::actor_ref`].
    pub fn try_actor_ref<A: Actor>(
        &self,
        key: impl Into<ActorKey>,
    ) -> Result<ActorRef<A>, SendError> {
        self.core.typed_ref(key.into(), Origin::Client)
    }

    /// A client handle with silo affinity: references minted from it
    /// originate on `silo`, modelling a co-located ingest gateway
    /// (prefer-local placement will pin new activations there).
    pub fn handle_on(&self, silo: SiloId) -> RuntimeHandle {
        assert!(silo.index() < self.core.silos.len(), "no such silo: {silo}");
        RuntimeHandle {
            core: Arc::clone(&self.core),
            origin: Origin::Silo(silo),
        }
    }

    /// A plain external-client handle.
    pub fn handle(&self) -> RuntimeHandle {
        RuntimeHandle {
            core: Arc::clone(&self.core),
            origin: Origin::Client,
        }
    }

    /// Number of silos.
    pub fn silo_count(&self) -> usize {
        self.core.silos.len()
    }

    /// Abruptly crashes a silo: queued and in-flight work is lost (sync
    /// callers see [`PromiseError::SiloLost`] and can retry), unpersisted
    /// actor state is dropped without `on_deactivate`, and each hosted
    /// identity reactivates from its persisted state on a surviving silo
    /// at its next message. Idempotent on an already-dead silo.
    pub fn kill_silo(&self, silo: SiloId) -> SiloCrashReport {
        self.core.kill_silo(silo)
    }

    /// Returns a killed silo to service (empty; actors reactivate lazily).
    /// Returns `false` if the silo was not dead.
    pub fn restart_silo(&self, silo: SiloId) -> bool {
        self.core.restart_silo(silo)
    }

    /// Whether `silo` is currently alive.
    pub fn silo_alive(&self, silo: SiloId) -> bool {
        assert!(silo.index() < self.core.silos.len(), "no such silo: {silo}");
        self.core.silos[silo.index()].is_alive()
    }

    /// Injected network-fault counters, when a [`FaultPlan`] with message
    /// faults is installed.
    pub fn chaos_stats(&self) -> Option<ChaosNetStatsSnapshot> {
        self.core.chaos.as_ref().map(|c| c.snapshot())
    }

    /// Number of live activations.
    pub fn active_actors(&self) -> usize {
        self.core.directory.len()
    }

    /// The shared WAL metric cells `(groups, grouped_frames, fsyncs)`.
    ///
    /// The store crate cannot see [`RuntimeMetrics`](crate::metrics), so
    /// platform code clones these `Arc`s into the WAL's counter mirror
    /// (`mirror_wal_counters`) and the committer thread bumps them
    /// directly — the same share-an-`Arc` pattern as `persist_retries`.
    #[allow(clippy::type_complexity)]
    pub fn wal_metric_cells(
        &self,
    ) -> (
        Arc<std::sync::atomic::AtomicU64>,
        Arc<std::sync::atomic::AtomicU64>,
        Arc<std::sync::atomic::AtomicU64>,
    ) {
        (
            Arc::clone(&self.core.metrics.wal_groups),
            Arc::clone(&self.core.metrics.wal_grouped_frames),
            Arc::clone(&self.core.metrics.wal_fsyncs),
        )
    }

    /// Runtime counter snapshot, including the parked-workers gauge.
    pub fn metrics(&self) -> RuntimeMetricsSnapshot {
        let mut snap = self.core.metrics.read();
        snap.parked_workers = self
            .core
            .silos
            .iter()
            .map(|s| s.parked_workers() as u64)
            .sum();
        snap
    }

    /// Registered name of an actor type id, if any (diagnostics).
    pub fn type_name(&self, type_id: ActorTypeId) -> Option<&'static str> {
        self.core.registry.name(type_id)
    }

    /// The declared call topology of every registered actor type, in
    /// registration order — the live-runtime counterpart of the static
    /// per-crate `call_topology()` exports consumed by `aodb-analysis`.
    pub fn call_topology(&self) -> Vec<ActorTopology> {
        self.core.registry.topology()
    }

    /// Schedules `msg` to `target` every `every`, until cancelled. The
    /// message is rebuilt via `Clone` for each firing.
    pub fn schedule_interval<A, M>(
        &self,
        target: &ActorRef<A>,
        msg: M,
        every: Duration,
    ) -> TimerHandle
    where
        A: Actor + Handler<M>,
        M: Message + Clone,
    {
        let make = Box::new(move || Envelope::of::<A, M>(msg.clone(), ReplyTo::Ignore));
        self.core.clock.repeat(target.id.clone(), make, every)
    }

    /// Blocks until all mailboxes are drained or `timeout` elapses.
    /// Returns whether the system quiesced.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut calm_rounds = 0;
        while Instant::now() < deadline {
            let busy_queue = self.core.silos.iter().any(|s| s.queue_len() > 0);
            // any_busy early-exits per shard without cloning activation
            // Arcs — this loop polls every 2 ms, so the old collect_all
            // snapshot made quiesce itself a directory-wide allocation
            // storm on large actor populations.
            let busy_mail = self.core.directory.any_busy();
            if !busy_queue && !busy_mail {
                calm_rounds += 1;
                if calm_rounds >= 3 {
                    return true;
                }
            } else {
                calm_rounds = 0;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        false
    }

    /// Orderly shutdown (also performed on drop). Refuses new client
    /// traffic, waits up to `drain` for in-flight work, deactivates all
    /// activations (persisting their state), and joins all threads.
    pub fn shutdown_with_drain(mut self, drain: Duration) {
        self.shutdown_impl(drain);
    }

    /// [`Runtime::shutdown_with_drain`] with a 5 s drain budget.
    pub fn shutdown(self) {
        self.shutdown_with_drain(Duration::from_secs(5));
    }

    fn shutdown_impl(&mut self, drain: Duration) {
        let Some(threads) = self.threads.take() else {
            return;
        };
        self.core.accepting.store(false, Ordering::Release);
        self.quiesce(drain);

        // Deactivate until the directory is empty: turns may still be
        // finishing, and `on_deactivate` hooks may themselves send
        // messages that create *new* activations (e.g. a gateway draining
        // its buffer into channel actors), which must also be deactivated
        // — hence the re-collect loop rather than a one-shot snapshot.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let activations = self.core.directory.collect_all();
            if activations.is_empty() {
                break;
            }
            let mut progressed = false;
            let mut batch = Vec::new();
            for act in &activations {
                if act.mailbox.try_retire() {
                    self.core.directory.remove_entry(&act.id, act);
                    batch.push(Arc::clone(act));
                    progressed = true;
                }
            }
            // One durability barrier for the whole shutdown wave of
            // deactivation flushes (see `finalize_deactivation_sweep`).
            crate::silo::finalize_deactivation_sweep(&self.core, &batch);
            if Instant::now() > deadline {
                break; // stuck activations: abandon rather than hang
            }
            if !progressed {
                std::thread::sleep(Duration::from_millis(2));
            }
        }

        self.core.shutdown.store(true, Ordering::Release);
        // Wake everything that may be parked or blocked so the joins below
        // complete promptly: workers (parked in the idle set), the janitor
        // (parked between scans), and the clock (blocked on its channel).
        for silo in &self.core.silos {
            silo.wake_all_workers();
        }
        if let Some(janitor) = self.core.janitor_thread.get() {
            janitor.unpark();
        }
        self.core.clock.wake();
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown_impl(Duration::from_secs(5));
    }
}

/// A clonable client handle with a fixed message origin.
#[derive(Clone)]
pub struct RuntimeHandle {
    core: Arc<RuntimeCore>,
    origin: Origin,
}

impl RuntimeHandle {
    /// Typed reference originating at this handle's origin.
    pub fn actor_ref<A: Actor>(&self, key: impl Into<ActorKey>) -> ActorRef<A> {
        self.try_actor_ref(key).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`RuntimeHandle::actor_ref`].
    pub fn try_actor_ref<A: Actor>(
        &self,
        key: impl Into<ActorKey>,
    ) -> Result<ActorRef<A>, SendError> {
        self.core.typed_ref(key.into(), self.origin)
    }

    /// The origin this handle stamps on messages.
    pub fn origin(&self) -> Origin {
        self.origin
    }
}

/// Typed reference to a virtual actor.
///
/// References are cheap to clone and never dangle: the target is an
/// *identity*, not an activation, so a reference made before the actor's
/// first activation (or after a deactivation) works transparently.
pub struct ActorRef<A: Actor> {
    core: Arc<RuntimeCore>,
    id: ActorId,
    origin: Origin,
    _marker: PhantomData<fn(A)>,
}

impl<A: Actor> Clone for ActorRef<A> {
    fn clone(&self) -> Self {
        ActorRef {
            core: Arc::clone(&self.core),
            id: self.id.clone(),
            origin: self.origin,
            _marker: PhantomData,
        }
    }
}

impl<A: Actor> std::fmt::Debug for ActorRef<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ActorRef<{}>({})", A::TYPE_NAME, self.id)
    }
}

impl<A: Actor> ActorRef<A> {
    /// The target identity.
    pub fn id(&self) -> &ActorId {
        &self.id
    }

    /// The target key.
    pub fn key(&self) -> &ActorKey {
        &self.id.key
    }

    /// One-way send; the reply (if the handler produces one) is discarded.
    pub fn tell<M>(&self, msg: M) -> Result<(), SendError>
    where
        A: Handler<M>,
        M: Message,
    {
        self.core.dispatch(
            self.id.clone(),
            Envelope::of::<A, M>(msg, ReplyTo::Ignore),
            self.origin,
        )
    }

    /// Request/response: returns a promise for the reply.
    pub fn ask<M>(&self, msg: M) -> Result<Promise<M::Reply>, SendError>
    where
        A: Handler<M>,
        M: Message,
    {
        let (sink, promise) = ReplyTo::promise();
        self.core.dispatch(
            self.id.clone(),
            Envelope::of::<A, M>(msg, sink),
            self.origin,
        )?;
        Ok(promise)
    }

    /// Request/response with an explicit reply sink (collector slots,
    /// forwarding into other actors' mailboxes, …).
    pub fn ask_with<M>(&self, msg: M, reply: ReplyTo<M::Reply>) -> Result<(), SendError>
    where
        A: Handler<M>,
        M: Message,
    {
        self.core.dispatch(
            self.id.clone(),
            Envelope::of::<A, M>(msg, reply),
            self.origin,
        )
    }

    /// Like [`ActorRef::tell`], but the message can be re-delivered by the
    /// chaos layer's duplicate-delivery fault (hence `M: Clone`). Use for
    /// sends whose handlers are — or are being tested to be — idempotent.
    pub fn tell_replayable<M>(&self, msg: M) -> Result<(), SendError>
    where
        A: Handler<M>,
        M: Message + Clone,
    {
        self.core.dispatch(
            self.id.clone(),
            Envelope::replayable::<A, M>(msg, ReplyTo::Ignore),
            self.origin,
        )
    }

    /// Like [`ActorRef::ask`], but duplicable by the chaos layer; the
    /// duplicate delivery re-runs the handler with its reply discarded.
    pub fn ask_replayable<M>(&self, msg: M) -> Result<Promise<M::Reply>, SendError>
    where
        A: Handler<M>,
        M: Message + Clone,
    {
        let (sink, promise) = ReplyTo::promise();
        self.core.dispatch(
            self.id.clone(),
            Envelope::replayable::<A, M>(msg, sink),
            self.origin,
        )?;
        Ok(promise)
    }

    /// Blocking request/response for external clients. Do **not** call from
    /// inside actor handlers — use [`ActorRef::ask_with`] plus a
    /// [`crate::Collector`] instead.
    pub fn call<M>(&self, msg: M) -> Result<M::Reply, CallError>
    where
        A: Handler<M>,
        M: Message,
    {
        Ok(self.ask(msg)?.wait()?)
    }

    /// Blocking request/response with a timeout.
    pub fn call_timeout<M>(&self, msg: M, timeout: Duration) -> Result<M::Reply, CallError>
    where
        A: Handler<M>,
        M: Message,
    {
        Ok(self.ask(msg)?.wait_for(timeout)?)
    }

    /// Type-erased recipient for message type `M`: lets heterogeneous actor
    /// types (e.g. every participant of a transaction) be addressed
    /// uniformly.
    pub fn recipient<M>(&self) -> Recipient<M>
    where
        A: Handler<M>,
        M: Message,
    {
        Recipient {
            core: Arc::clone(&self.core),
            id: self.id.clone(),
            origin: self.origin,
            make: Envelope::of::<A, M>,
        }
    }
}

/// Type-erased, message-typed actor reference.
///
/// A `Recipient<M>` can address any actor type handling `M`, which is what
/// multi-actor machinery (transactions, workflows, indexes) needs.
pub struct Recipient<M: Message> {
    core: Arc<RuntimeCore>,
    id: ActorId,
    origin: Origin,
    make: fn(M, ReplyTo<M::Reply>) -> Envelope,
}

impl<M: Message> Clone for Recipient<M> {
    fn clone(&self) -> Self {
        Recipient {
            core: Arc::clone(&self.core),
            id: self.id.clone(),
            origin: self.origin,
            make: self.make,
        }
    }
}

impl<M: Message> std::fmt::Debug for Recipient<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Recipient({})", self.id)
    }
}

impl<M: Message> Recipient<M> {
    /// The target identity.
    pub fn id(&self) -> &ActorId {
        &self.id
    }

    /// One-way send.
    pub fn tell(&self, msg: M) -> Result<(), SendError> {
        self.core.dispatch(
            self.id.clone(),
            (self.make)(msg, ReplyTo::Ignore),
            self.origin,
        )
    }

    /// Request/response.
    pub fn ask(&self, msg: M) -> Result<Promise<M::Reply>, SendError> {
        let (sink, promise) = ReplyTo::promise();
        self.core
            .dispatch(self.id.clone(), (self.make)(msg, sink), self.origin)?;
        Ok(promise)
    }

    /// Request/response with an explicit reply sink.
    pub fn ask_with(&self, msg: M, reply: ReplyTo<M::Reply>) -> Result<(), SendError> {
        self.core
            .dispatch(self.id.clone(), (self.make)(msg, reply), self.origin)
    }
}
