//! Silos: the simulated servers of the cluster.
//!
//! Orleans deploys one silo per VM; grain activations live inside silos and
//! all application logic runs on silo threads. Here a [`SiloUnit`] is a
//! worker pool plus a work-stealing run queue. The worker count models the
//! server's CPU capacity (the paper's m5.large vs m5.xlarge distinction
//! becomes a worker-count ratio), and cross-silo messages pay simulated
//! network latency, so scale-out behaviour (Figure 7) is preserved
//! in-process.
//!
//! # Scheduling topology
//!
//! Each worker owns a LIFO deque (`crossbeam::deque::Worker`); the silo
//! additionally has one shared FIFO [`Injector`] for work arriving from
//! outside the pool (clients, other silos, the clock). A worker looks for
//! work in order: own deque (cache-hot LIFO pop) → injector (steal-half
//! batch) → siblings' deques (steal-half, rotating start). Every 61st scan
//! checks the injector *first* so locally-chained work (an actor whose
//! every turn schedules another local actor) cannot starve injected work.
//!
//! A worker dispatching to an actor of its own silo pushes straight onto
//! its own deque and — when that deque held no other work — wakes nobody:
//! the worker itself pops the task next, so chained actor-to-actor sends
//! proceed without ever touching a futex. Workers that find no work
//! anywhere park (see [`IdleSet`]); producers wake one parked worker when
//! they inject work or when a local deque grows beyond one task.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::actor::{ActorContext, AnyActor};
use crate::envelope::{Envelope, EnvelopeKind};
use crate::identity::{ActorId, SiloId};
use crate::mailbox::{Mailbox, TurnOutcome};
use crate::runq::{IdleSet, RunQueues, TaskSource, INJECTOR_FIRST_INTERVAL};
use crate::runtime::RuntimeCore;

thread_local! {
    /// Set for silo worker threads: which silo and worker slot this thread
    /// is, enabling the local-deque dispatch fast path.
    static CURRENT_WORKER: Cell<Option<(SiloId, usize)>> = const { Cell::new(None) };
}

/// Sizing of one silo.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiloConfig {
    /// Number of worker threads (the silo's "CPU cores").
    pub workers: usize,
}

impl Default for SiloConfig {
    fn default() -> Self {
        SiloConfig { workers: 2 }
    }
}

/// One in-memory activation of a virtual actor.
pub(crate) struct Activation {
    pub id: ActorId,
    pub silo: SiloId,
    pub mailbox: Mailbox,
    /// `None` once deactivated. The mutex is uncontended in steady state —
    /// the mailbox state machine ensures a single worker runs the actor —
    /// but protects the worker/janitor handoff during deactivation.
    actor: Mutex<Option<Box<dyn AnyActor>>>,
    last_activity_ms: AtomicU64,
    /// Debug-build watchdog for the single-threaded-per-activation
    /// invariant: set for the duration of a turn slice; two workers ever
    /// both setting it means the mailbox state machine (or the stealing
    /// scheduler) double-scheduled the activation.
    #[cfg(debug_assertions)]
    running: std::sync::atomic::AtomicBool,
}

impl Activation {
    pub fn new(id: ActorId, silo: SiloId, actor: Box<dyn AnyActor>, now_ms: u64) -> Self {
        Activation {
            id,
            silo,
            mailbox: Mailbox::new_scheduled_with(Envelope::lifecycle_activate()),
            actor: Mutex::new(Some(actor)),
            last_activity_ms: AtomicU64::new(now_ms),
            #[cfg(debug_assertions)]
            running: std::sync::atomic::AtomicBool::new(false),
        }
    }

    pub fn last_activity_ms(&self) -> u64 {
        self.last_activity_ms.load(Ordering::Relaxed)
    }

    pub fn touch(&self, now_ms: u64) {
        self.last_activity_ms.store(now_ms, Ordering::Relaxed);
    }
}

/// The shared (non-thread) part of a silo.
pub(crate) struct SiloUnit {
    pub id: SiloId,
    pub config: SiloConfig,
    /// Work-stealing run queues (per-worker LIFO deques + FIFO injector),
    /// extracted to [`crate::runq`] so the model checker can drive the
    /// identical protocol over a toy task type.
    queues: RunQueues<Arc<Activation>>,
    idle: IdleSet,
    /// False after [`kill_silo`](crate::Runtime::kill_silo): the silo's
    /// workers abort (rather than run) anything they find, and dispatch
    /// treats activations hosted here as lost. Worker threads are not
    /// joined — a dead silo's pool idles parked until `restart_silo`,
    /// modelling a machine reboot without re-spawning OS threads.
    alive: AtomicBool,
}

impl SiloUnit {
    pub fn new(id: SiloId, config: SiloConfig) -> Self {
        SiloUnit {
            id,
            config,
            queues: RunQueues::new(config.workers),
            idle: IdleSet::new(config.workers),
            alive: AtomicBool::new(true),
        }
    }

    /// Whether the silo is accepting and executing work.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Transitions alive → dead. Returns `false` when already dead (the
    /// kill was someone else's; the caller must not tear down twice).
    pub fn mark_dead(&self) -> bool {
        self.alive
            .compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Transitions dead → alive (restart). Returns `false` when the silo
    /// was not dead.
    pub fn mark_alive(&self) -> bool {
        self.alive
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Empties every run queue of this silo, returning the queued
    /// activations. Called by the crash path from the killing thread; the
    /// mailbox state machine guarantees each popped activation is owned
    /// exclusively by whoever dequeued it, so the caller may retire them.
    pub fn drain_runnable(&self) -> Vec<Arc<Activation>> {
        self.queues.drain_all()
    }

    /// Puts an activation on this silo's run queue.
    ///
    /// Fast path: a worker of this silo scheduling work pushes onto its own
    /// LIFO deque; when the deque held nothing else, no wakeup is issued —
    /// the pushing worker pops the task itself on its next scan, so
    /// actor-to-actor chains stay futex-free. All other producers (clients,
    /// other silos, clock, janitor) go through the injector and wake one
    /// parked worker.
    pub fn enqueue_run(&self, act: Arc<Activation>) {
        let slot = CURRENT_WORKER.with(|cw| cw.get());
        if let Some((silo, w)) = slot {
            if silo == self.id {
                // Backlog beyond the task this worker will pop next:
                // siblings can steal it, so make sure one is awake.
                if self.queues.push_local(w, act) > 1 {
                    self.idle.wake_one();
                }
                return;
            }
        }
        self.queues.push_injector(act);
        self.idle.wake_one();
    }

    /// Re-enqueues an activation that exhausted its turn slice with work
    /// still queued. Always goes to the back of the injector — the silo's
    /// FIFO — so saturated actors round-robin instead of a LIFO local push
    /// letting the most recent one monopolize its worker.
    ///
    /// Wake policy mirrors the local fast path: the yielding worker itself
    /// scans the injector on its next round, so a sibling is woken only
    /// when the injector holds surplus work beyond what the pusher will
    /// take. Unconditional waking here cost a wasted unpark/park futex
    /// pair per turn slice under saturated single-actor load.
    pub fn enqueue_yielded(&self, act: Arc<Activation>) {
        self.queues.push_injector(act);
        let own_silo_worker = CURRENT_WORKER
            .with(|cw| cw.get())
            .is_some_and(|(s, _)| s == self.id);
        if !own_silo_worker || self.queues.injector_len() > 1 {
            self.idle.wake_one();
        }
    }

    /// Pending run-queue length (diagnostics only).
    pub fn queue_len(&self) -> usize {
        self.queues.queued_len()
    }

    /// Number of currently parked workers (metrics gauge).
    pub fn parked_workers(&self) -> usize {
        self.idle.parked_count()
    }

    /// Wakes every worker thread (shutdown).
    pub fn wake_all_workers(&self) {
        self.idle.wake_all();
    }

    /// True when any queue holds runnable work for `worker`.
    fn has_work(&self, worker: usize) -> bool {
        self.queues.has_work(worker)
    }

    /// One scan for runnable work. `injector_first` periodically prefers
    /// injected work over the local deque (anti-starvation, see
    /// [`crate::runq`] docs).
    fn find_task(
        &self,
        worker: usize,
        injector_first: bool,
        metrics: &crate::metrics::RuntimeMetrics,
    ) -> Option<Arc<Activation>> {
        let (act, source) = self.queues.find_task(worker, injector_first)?;
        let counter = match source {
            TaskSource::Local => &metrics.scheduler_local_pops,
            TaskSource::Injector => &metrics.scheduler_injector_pops,
            TaskSource::Steal => &metrics.scheduler_steals,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        Some(act)
    }
}

/// Body of each worker thread.
pub(crate) fn worker_loop(core: Arc<RuntimeCore>, silo: SiloId, worker: usize) {
    let unit = &core.silos[silo.index()];
    unit.idle.register_thread(worker);
    CURRENT_WORKER.with(|cw| cw.set(Some((silo, worker))));
    let mut batch: std::collections::VecDeque<Envelope> =
        std::collections::VecDeque::with_capacity(core.config.max_batch);
    let mut tick: u64 = 0;
    loop {
        tick = tick.wrapping_add(1);
        let injector_first = tick.is_multiple_of(INJECTOR_FIRST_INTERVAL);
        if let Some(act) = unit.find_task(worker, injector_first, &core.metrics) {
            if !unit.is_alive() {
                // The silo died with this activation still reaching the run
                // queue (a racing dispatch slipped past the kill's drain).
                // Popping granted us exclusive ownership: finish the crash's
                // work by evicting it and aborting its queue as SiloLost.
                core.crash_evict_owned(&act);
                continue;
            }
            run_activation_slice(&core, &act, &mut batch);
            continue;
        }
        if core.is_shutdown() {
            return;
        }
        // Park protocol: register, re-check, then park (see IdleSet docs).
        unit.idle.prepare_park(worker);
        if unit.has_work(worker) || core.is_shutdown() {
            unit.idle.cancel_park(worker);
            if core.is_shutdown() {
                return;
            }
            continue;
        }
        core.metrics.worker_parks.fetch_add(1, Ordering::Relaxed);
        unit.idle.park_current();
        unit.idle.cancel_park(worker);
    }
}

/// Runs one scheduling slice (up to `max_batch` turns) of an activation.
pub(crate) fn run_activation_slice(
    core: &Arc<RuntimeCore>,
    act: &Arc<Activation>,
    batch: &mut std::collections::VecDeque<Envelope>,
) {
    #[cfg(debug_assertions)]
    {
        let was_running = act.running.swap(true, Ordering::SeqCst);
        debug_assert!(
            !was_running,
            "single-threaded-per-activation invariant violated: two workers \
             are executing activation {} concurrently",
            act.id
        );
    }
    batch.clear();
    act.mailbox.drain_batch(core.config.max_batch, batch);
    let discard_on_panic = core.config.panic_policy == crate::runtime::PanicPolicy::Deactivate;
    let unit = &core.silos[act.silo.index()];
    let mut deactivate = false;
    let mut faulted = false;
    let mut killed = false;
    let mut processed = 0u64;
    // Envelopes salvaged from a faulted slice, re-dispatched to a fresh
    // activation below.
    let mut leftover: Vec<Envelope> = Vec::new();
    {
        let mut guard = act.actor.lock();
        let actor = match guard.as_mut() {
            Some(a) => a,
            // Deactivated between scheduling and execution (shutdown path);
            // drop the messages — their reply sinks resolve as Lost.
            None => {
                #[cfg(debug_assertions)]
                act.running.store(false, Ordering::SeqCst);
                return;
            }
        };
        // Mark this thread as running turns of this actor type so debug
        // builds can check outgoing dispatches against its declared edges.
        let _turn = crate::topology::TurnGuard::enter(act.id.type_id);
        for env in batch.drain(..) {
            killed = killed || !unit.is_alive();
            if killed || (faulted && discard_on_panic) {
                // Either the silo crashed mid-slice (remaining turns are
                // lost with it), or an earlier turn corrupted the actor:
                // run nothing further against it; salvage instead.
                leftover.push(env);
                continue;
            }
            let kind = env.kind();
            let mut ctx = ActorContext::new(core, &act.id, act.silo);
            let outcome = catch_unwind(AssertUnwindSafe(|| env.run(actor.as_mut(), &mut ctx)));
            if outcome.is_err() {
                core.metrics.handler_panics.fetch_add(1, Ordering::Relaxed);
                faulted = true;
            }
            if kind == EnvelopeKind::User {
                processed += 1;
            }
            deactivate |= ctx.deactivate_requested;
        }
        killed = killed || !unit.is_alive();
    }
    if processed > 0 {
        core.metrics
            .messages_processed
            .fetch_add(processed, Ordering::Relaxed);
    }
    act.touch(core.now_ms());
    if killed {
        // The silo died under this slice. The in-flight turn(s) already ran
        // — indistinguishable from completing just before the crash — but
        // everything still queued dies with the silo: abort as SiloLost,
        // drop the actor *without* on_deactivate (unpersisted state is
        // lost, exactly like a process kill), and evict the identity so
        // the next message reactivates it from durable state elsewhere.
        leftover.extend(act.mailbox.retire_and_drain());
        #[cfg(debug_assertions)]
        act.running.store(false, Ordering::SeqCst);
        core.crash_finish(act, leftover);
        return;
    }
    if faulted && discard_on_panic {
        // Orleans faulted-grain behaviour: discard this activation right
        // away (without flushing its suspect state) and re-dispatch the
        // salvaged and still-queued messages to a fresh activation built
        // from the last durable state.
        leftover.extend(act.mailbox.retire_and_drain());
        core.discard_faulted(act);
        #[cfg(debug_assertions)]
        act.running.store(false, Ordering::SeqCst);
        for env in leftover {
            let _ =
                core.dispatch_free(act.id.clone(), env, crate::identity::Origin::Silo(act.silo));
        }
        return;
    }
    let outcome = act.mailbox.finish_turn(deactivate);
    #[cfg(debug_assertions)]
    act.running.store(false, Ordering::SeqCst);
    match outcome {
        TurnOutcome::Drained => {}
        TurnOutcome::MorePending => core.silos[act.silo.index()].enqueue_yielded(Arc::clone(act)),
        TurnOutcome::RetiredForDeactivation => core.deactivate(act),
    }
}

/// Drops a faulted actor instance *without* running `on_deactivate`:
/// its in-memory state is suspect after a panic and must not overwrite
/// the last durable state.
pub(crate) fn discard_activation(core: &Arc<RuntimeCore>, act: &Arc<Activation>) {
    debug_assert!(act.mailbox.is_retired());
    if act.actor.lock().take().is_some() {
        core.metrics.deactivations.fetch_add(1, Ordering::Relaxed);
    }
}

/// Finalizes a batch of deactivations as one *sweep*: every actor's
/// `on_deactivate` runs (where persistent actors flush state, typically
/// via deferred puts that skip the per-write fsync), then the runtime's
/// `on_deactivation_sweep` hook runs **once** to issue the single
/// durability barrier covering all of them. This is the write-coalescing
/// path for deactivation-time flushes: a janitor batch of N idle actors
/// costs one group fsync, not N.
///
/// Callers must have retired every mailbox and unlinked the directory
/// entries. An empty batch is a no-op (no spurious barrier).
pub(crate) fn finalize_deactivation_sweep(core: &Arc<RuntimeCore>, acts: &[Arc<Activation>]) {
    if acts.is_empty() {
        return;
    }
    for act in acts {
        finalize_deactivation(core, act);
    }
    if let Some(hook) = &core.config.on_deactivation_sweep {
        hook();
    }
}

/// Runs `on_deactivate` and drops the actor instance. The caller must have
/// retired the mailbox first (so no worker can be executing the actor).
pub(crate) fn finalize_deactivation(core: &Arc<RuntimeCore>, act: &Arc<Activation>) {
    debug_assert!(act.mailbox.is_retired());
    let taken = act.actor.lock().take();
    if let Some(mut actor) = taken {
        let mut ctx = ActorContext::new(core, &act.id, act.silo);
        let _turn = crate::topology::TurnGuard::enter(act.id.type_id);
        if catch_unwind(AssertUnwindSafe(|| actor.deactivate(&mut ctx))).is_err() {
            core.metrics.handler_panics.fetch_add(1, Ordering::Relaxed);
        }
        core.metrics.deactivations.fetch_add(1, Ordering::Relaxed);
    }
}
