//! Silos: the simulated servers of the cluster.
//!
//! Orleans deploys one silo per VM; grain activations live inside silos and
//! all application logic runs on silo threads. Here a [`SiloUnit`] is a
//! worker pool plus a run queue. The worker count models the server's CPU
//! capacity (the paper's m5.large vs m5.xlarge distinction becomes a
//! worker-count ratio), and cross-silo messages pay simulated network
//! latency, so scale-out behaviour (Figure 7) is preserved in-process.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::actor::{ActorContext, AnyActor};
use crate::envelope::{Envelope, EnvelopeKind};
use crate::identity::{ActorId, SiloId};
use crate::mailbox::{Mailbox, TurnOutcome};
use crate::runtime::RuntimeCore;

/// Sizing of one silo.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiloConfig {
    /// Number of worker threads (the silo's "CPU cores").
    pub workers: usize,
}

impl Default for SiloConfig {
    fn default() -> Self {
        SiloConfig { workers: 2 }
    }
}

/// One in-memory activation of a virtual actor.
pub(crate) struct Activation {
    pub id: ActorId,
    pub silo: SiloId,
    pub mailbox: Mailbox,
    /// `None` once deactivated. The mutex is uncontended in steady state —
    /// the mailbox state machine ensures a single worker runs the actor —
    /// but protects the worker/janitor handoff during deactivation.
    actor: Mutex<Option<Box<dyn AnyActor>>>,
    last_activity_ms: AtomicU64,
}

impl Activation {
    pub fn new(id: ActorId, silo: SiloId, actor: Box<dyn AnyActor>, now_ms: u64) -> Self {
        Activation {
            id,
            silo,
            mailbox: Mailbox::new_scheduled_with(Envelope::lifecycle_activate()),
            actor: Mutex::new(Some(actor)),
            last_activity_ms: AtomicU64::new(now_ms),
        }
    }

    pub fn last_activity_ms(&self) -> u64 {
        self.last_activity_ms.load(Ordering::Relaxed)
    }

    pub fn touch(&self, now_ms: u64) {
        self.last_activity_ms.store(now_ms, Ordering::Relaxed);
    }
}

/// The shared (non-thread) part of a silo.
pub(crate) struct SiloUnit {
    pub id: SiloId,
    pub config: SiloConfig,
    run_tx: Sender<Arc<Activation>>,
    run_rx: Receiver<Arc<Activation>>,
}

impl SiloUnit {
    pub fn new(id: SiloId, config: SiloConfig) -> Self {
        let (run_tx, run_rx) = unbounded();
        SiloUnit {
            id,
            config,
            run_tx,
            run_rx,
        }
    }

    /// Puts an activation on this silo's run queue.
    pub fn enqueue_run(&self, act: Arc<Activation>) {
        // The receiver lives as long as the silo; send can only fail during
        // teardown, when dropping the work is correct.
        let _ = self.run_tx.send(act);
    }

    /// Pending run-queue length (diagnostics only).
    pub fn queue_len(&self) -> usize {
        self.run_rx.len()
    }
}

/// Body of each worker thread.
pub(crate) fn worker_loop(core: Arc<RuntimeCore>, silo: SiloId) {
    let rx = core.silos[silo.index()].run_rx.clone();
    let mut batch: Vec<Envelope> = Vec::with_capacity(core.config.max_batch);
    loop {
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(act) => run_activation_slice(&core, &act, &mut batch),
            Err(RecvTimeoutError::Timeout) => {
                if core.is_shutdown() {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Runs one scheduling slice (up to `max_batch` turns) of an activation.
pub(crate) fn run_activation_slice(
    core: &Arc<RuntimeCore>,
    act: &Arc<Activation>,
    batch: &mut Vec<Envelope>,
) {
    batch.clear();
    act.mailbox.drain_batch(core.config.max_batch, batch);
    let discard_on_panic = core.config.panic_policy == crate::runtime::PanicPolicy::Deactivate;
    let mut deactivate = false;
    let mut faulted = false;
    let mut processed = 0u64;
    // Envelopes salvaged from a faulted slice, re-dispatched to a fresh
    // activation below.
    let mut leftover: Vec<Envelope> = Vec::new();
    {
        let mut guard = act.actor.lock();
        let actor = match guard.as_mut() {
            Some(a) => a,
            // Deactivated between scheduling and execution (shutdown path);
            // drop the messages — their reply sinks resolve as Lost.
            None => return,
        };
        // Mark this thread as running turns of this actor type so debug
        // builds can check outgoing dispatches against its declared edges.
        let _turn = crate::topology::TurnGuard::enter(act.id.type_id);
        for env in batch.drain(..) {
            if faulted && discard_on_panic {
                // An earlier turn in this slice corrupted the actor: run
                // nothing further against it; salvage instead.
                leftover.push(env);
                continue;
            }
            let kind = env.kind();
            let mut ctx = ActorContext::new(core, &act.id, act.silo);
            let outcome = catch_unwind(AssertUnwindSafe(|| env.run(actor.as_mut(), &mut ctx)));
            if outcome.is_err() {
                core.metrics.handler_panics.fetch_add(1, Ordering::Relaxed);
                faulted = true;
            }
            if kind == EnvelopeKind::User {
                processed += 1;
            }
            deactivate |= ctx.deactivate_requested;
        }
    }
    if processed > 0 {
        core.metrics
            .messages_processed
            .fetch_add(processed, Ordering::Relaxed);
    }
    act.touch(core.now_ms());
    if faulted && discard_on_panic {
        // Orleans faulted-grain behaviour: discard this activation right
        // away (without flushing its suspect state) and re-dispatch the
        // salvaged and still-queued messages to a fresh activation built
        // from the last durable state.
        leftover.extend(act.mailbox.retire_and_drain());
        core.discard_faulted(act);
        for env in leftover {
            let _ =
                core.dispatch_free(act.id.clone(), env, crate::identity::Origin::Silo(act.silo));
        }
        return;
    }
    match act.mailbox.finish_turn(deactivate) {
        TurnOutcome::Drained => {}
        TurnOutcome::MorePending => core.silos[act.silo.index()].enqueue_run(Arc::clone(act)),
        TurnOutcome::RetiredForDeactivation => core.deactivate(act),
    }
}

/// Drops a faulted actor instance *without* running `on_deactivate`:
/// its in-memory state is suspect after a panic and must not overwrite
/// the last durable state.
pub(crate) fn discard_activation(core: &Arc<RuntimeCore>, act: &Arc<Activation>) {
    debug_assert!(act.mailbox.is_retired());
    if act.actor.lock().take().is_some() {
        core.metrics.deactivations.fetch_add(1, Ordering::Relaxed);
    }
}

/// Runs `on_deactivate` and drops the actor instance. The caller must have
/// retired the mailbox first (so no worker can be executing the actor).
pub(crate) fn finalize_deactivation(core: &Arc<RuntimeCore>, act: &Arc<Activation>) {
    debug_assert!(act.mailbox.is_retired());
    let taken = act.actor.lock().take();
    if let Some(mut actor) = taken {
        let mut ctx = ActorContext::new(core, &act.id, act.silo);
        let _turn = crate::topology::TurnGuard::enter(act.id.type_id);
        if catch_unwind(AssertUnwindSafe(|| actor.deactivate(&mut ctx))).is_err() {
            core.metrics.handler_panics.fetch_add(1, Ordering::Relaxed);
        }
        core.metrics.deactivations.fetch_add(1, Ordering::Relaxed);
    }
}
