//! Static call-topology declarations.
//!
//! Every actor type declares its outbound message edges up front via
//! [`crate::Actor::declared_calls`]: which actor types it sends to, and
//! whether an edge is a *synchronous* call (the sender blocks its turn on
//! the reply) or an *asynchronous* send (`tell` / `ask_with` into a
//! [`crate::Collector`] slot — the turn completes without waiting).
//!
//! The distinction matters because turn-based execution makes cycles of
//! synchronous calls deadlock: if actor A blocks its only turn waiting on
//! B, and B (transitively) calls back into A, the reply can never be
//! processed — the classic reentrancy deadlock of non-reentrant actor
//! systems. Declarations make the call graph a static artifact that the
//! `aodb-analysis` crate can extract and check (Tarjan SCC over `Call`
//! edges) without running the system, and that debug builds enforce at
//! dispatch time (see [`TurnGuard`] and the check in `runtime.rs`).

use std::cell::Cell;

use crate::identity::ActorTypeId;

/// How an outbound edge is driven.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CallKind {
    /// Synchronous request/response: the sending turn blocks on the
    /// reply (`call`, or `ask` + immediate `wait`). Cycles of `Call`
    /// edges deadlock and are rejected by `aodb-lint`.
    Call,
    /// Asynchronous send: `tell`, or `ask_with` routing the reply to a
    /// [`crate::Collector`] slot or another mailbox. Never blocks the
    /// sending turn, so cycles of `Send` edges are safe.
    Send,
}

impl std::fmt::Display for CallKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallKind::Call => write!(f, "call"),
            CallKind::Send => write!(f, "send"),
        }
    }
}

/// One declared outbound edge: this actor type messages `to`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CallDecl {
    /// `TYPE_NAME` of the target actor type.
    pub to: &'static str,
    /// Whether the edge blocks the sending turn.
    pub kind: CallKind,
}

impl CallDecl {
    /// Wildcard target for infrastructure actors that message
    /// caller-supplied [`crate::Recipient`]s (2PC coordinators, workflow
    /// engines): the concrete actor type is chosen by whoever built the
    /// recipient, so it cannot be named statically. Wildcard edges show up
    /// as a synthetic `(any)` node in the extracted call graph, and a
    /// wildcard `Call` edge is treated as potentially cyclic by the lint.
    pub const ANY: &'static str = "*";

    /// A synchronous-call edge to actor type `to`.
    pub const fn call(to: &'static str) -> Self {
        CallDecl {
            to,
            kind: CallKind::Call,
        }
    }

    /// An asynchronous-send edge to actor type `to`.
    pub const fn send(to: &'static str) -> Self {
        CallDecl {
            to,
            kind: CallKind::Send,
        }
    }

    /// An asynchronous-send edge to a dynamically chosen target
    /// ([`CallDecl::ANY`]).
    pub const fn send_any() -> Self {
        CallDecl {
            to: CallDecl::ANY,
            kind: CallKind::Send,
        }
    }

    /// Whether this declaration covers a dispatch to `target_type`.
    pub fn covers(&self, target_type: &str) -> bool {
        self.to == CallDecl::ANY || self.to == target_type
    }
}

/// One actor type's row in a crate's exported call topology: its
/// `TYPE_NAME` plus its declared outbound edges. Application crates
/// export `call_topology()` returning these so `aodb-analysis` can build
/// the whole-workspace call graph without spinning up a runtime.
#[derive(Clone, Copy, Debug)]
pub struct ActorTopology {
    /// The actor's registered `TYPE_NAME`.
    pub name: &'static str,
    /// Outbound edges, as returned by `Actor::declared_calls()`.
    pub calls: &'static [CallDecl],
}

impl ActorTopology {
    /// Topology row for actor type `A`.
    pub fn of<A: crate::Actor>() -> Self {
        ActorTopology {
            name: A::TYPE_NAME,
            calls: A::declared_calls(),
        }
    }
}

thread_local! {
    /// The actor type whose turn is running on this thread, if any.
    /// `None` on client / clock / janitor threads.
    static CURRENT_TURN: Cell<Option<ActorTypeId>> = const { Cell::new(None) };
}

/// RAII marker that a turn of `type_id` is executing on this thread.
/// Dispatches issued while the guard is live are checked (in debug
/// builds) against the running actor's declared edges.
pub(crate) struct TurnGuard {
    prev: Option<ActorTypeId>,
}

impl TurnGuard {
    pub(crate) fn enter(type_id: ActorTypeId) -> Self {
        TurnGuard {
            prev: CURRENT_TURN.replace(Some(type_id)),
        }
    }

    /// Clears the turn marker for the guard's lifetime. Used around reply
    /// delivery: a reply callback (a continuation closure or a collector's
    /// completion) belongs to the *requesting* actor but runs on the
    /// replier's worker thread, so dispatches it issues must not be charged
    /// against the replier's declared edges. Reply routing is runtime
    /// machinery, not a request edge — it never blocks and cannot deadlock.
    pub(crate) fn suspend() -> Self {
        TurnGuard {
            prev: CURRENT_TURN.replace(None),
        }
    }
}

impl Drop for TurnGuard {
    fn drop(&mut self) {
        CURRENT_TURN.set(self.prev);
    }
}

/// The actor type currently executing a turn on this thread, if any.
pub(crate) fn current_turn_actor() -> Option<ActorTypeId> {
    CURRENT_TURN.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn turn_guard_nests_and_restores() {
        assert_eq!(current_turn_actor(), None);
        {
            let _outer = TurnGuard::enter(ActorTypeId::from_raw(1));
            assert_eq!(current_turn_actor(), Some(ActorTypeId::from_raw(1)));
            {
                let _inner = TurnGuard::enter(ActorTypeId::from_raw(2));
                assert_eq!(current_turn_actor(), Some(ActorTypeId::from_raw(2)));
            }
            assert_eq!(current_turn_actor(), Some(ActorTypeId::from_raw(1)));
        }
        assert_eq!(current_turn_actor(), None);
    }

    #[test]
    fn decl_constructors() {
        let c = CallDecl::call("a.b");
        let s = CallDecl::send("a.b");
        assert_eq!(c.kind, CallKind::Call);
        assert_eq!(s.kind, CallKind::Send);
        assert_eq!(c.to, s.to);
        assert_eq!(c.kind.to_string(), "call");
        assert_eq!(s.kind.to_string(), "send");
    }
}
