//! Edge-case tests: post-shutdown sends, client network latency, run-queue
//! fairness under flooding, and misuse panics.

use std::time::{Duration, Instant};

use aodb_runtime::{
    Actor, ActorContext, Handler, LatencyModel, Message, NetConfig, Runtime, SendError,
};

struct Echo;
impl Actor for Echo {
    const TYPE_NAME: &'static str = "edge.echo";
}

#[derive(Clone)]
struct Ping;
impl Message for Ping {
    type Reply = u64;
}
impl Handler<Ping> for Echo {
    fn handle(&mut self, _msg: Ping, _ctx: &mut ActorContext<'_>) -> u64 {
        7
    }
}

#[test]
fn handles_outliving_the_runtime_fail_cleanly() {
    let rt = Runtime::single(1);
    rt.register(|_id| Echo);
    let handle = rt.handle();
    let actor = handle.actor_ref::<Echo>("e");
    assert_eq!(actor.call(Ping).unwrap(), 7);
    rt.shutdown();
    // The clone of the core is still alive, but the runtime is down:
    // every operation reports shutdown instead of hanging or panicking.
    assert_eq!(actor.tell(Ping), Err(SendError::RuntimeShutdown));
    assert!(matches!(
        handle.actor_ref::<Echo>("other").ask(Ping),
        Err(SendError::RuntimeShutdown)
    ));
}

#[test]
fn client_latency_is_charged_to_plain_clients_only() {
    let rt = Runtime::builder()
        .silos(1, 1)
        .network(NetConfig {
            cross_silo: None,
            client: Some(LatencyModel::fixed(Duration::from_millis(15))),
        })
        .build();
    rt.register(|_id| Echo);

    let plain = rt.actor_ref::<Echo>("c");
    plain.call(Ping).unwrap(); // activation
    let t0 = Instant::now();
    plain.call(Ping).unwrap();
    assert!(
        t0.elapsed() >= Duration::from_millis(13),
        "plain client must pay the client hop, took {:?}",
        t0.elapsed()
    );

    // A silo-affine gateway models a co-located proxy: no client hop.
    let local = rt.handle_on(aodb_runtime::SiloId(0)).actor_ref::<Echo>("c");
    let t0 = Instant::now();
    local.call(Ping).unwrap();
    assert!(
        t0.elapsed() < Duration::from_millis(10),
        "affine gateway must not pay the client hop, took {:?}",
        t0.elapsed()
    );
    rt.shutdown();
}

#[test]
fn flooded_actor_does_not_starve_neighbours() {
    // One worker, small batch: a flooded actor must be time-sliced so a
    // second actor still gets turns promptly.
    let rt = Runtime::builder().silos(1, 1).max_batch(8).build();
    rt.register(|_id| Echo);
    let flooded = rt.actor_ref::<Echo>("flooded");
    let bystander = rt.actor_ref::<Echo>("bystander");
    bystander.call(Ping).unwrap(); // pre-activate

    for _ in 0..20_000 {
        flooded.tell(Ping).unwrap();
    }
    let t0 = Instant::now();
    let reply = bystander.call_timeout(Ping, Duration::from_secs(5));
    assert_eq!(reply.unwrap(), 7);
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "bystander starved for {:?}",
        t0.elapsed()
    );
    rt.shutdown();
}

#[test]
#[should_panic(expected = "no such silo")]
fn handle_on_unknown_silo_panics() {
    let rt = Runtime::single(1);
    let _ = rt.handle_on(aodb_runtime::SiloId(5));
}

#[test]
fn quiesce_reports_failure_when_work_never_drains() {
    struct SelfPerpetuating;
    impl Actor for SelfPerpetuating {
        const TYPE_NAME: &'static str = "edge.perpetual";
    }
    struct Spin;
    impl Message for Spin {
        type Reply = ();
    }
    impl Handler<Spin> for SelfPerpetuating {
        fn handle(&mut self, _msg: Spin, ctx: &mut ActorContext<'_>) {
            // Re-sends to itself forever.
            let me = ctx.actor_ref::<SelfPerpetuating>(ctx.key().clone());
            let _ = me.tell(Spin);
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let rt = Runtime::single(1);
    rt.register(|_id| SelfPerpetuating);
    rt.actor_ref::<SelfPerpetuating>("p").tell(Spin).unwrap();
    assert!(
        !rt.quiesce(Duration::from_millis(300)),
        "quiesce must report a system that never drains"
    );
    rt.shutdown_with_drain(Duration::from_millis(100));
}

#[test]
fn duplicate_registration_replaces_factory() {
    let rt = Runtime::single(1);
    rt.register(|_id| Echo);
    let a = rt.actor_ref::<Echo>("x");
    assert_eq!(a.call(Ping).unwrap(), 7);
    // Re-registering the same TYPE_NAME must not panic and keeps working.
    rt.register(|_id| Echo);
    assert_eq!(a.call(Ping).unwrap(), 7);
    rt.shutdown();
}
