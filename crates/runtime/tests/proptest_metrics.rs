//! Property-based tests for the latency histogram and identity hashing.

use aodb_runtime::metrics::Snapshot;
use aodb_runtime::{ActorId, ActorKey, ActorTypeId, Histogram};
use proptest::prelude::*;

fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    /// Histogram quantiles must stay within the bucketing error bound of
    /// the exact quantile (3.2 % relative, or ±1 for tiny values).
    #[test]
    fn quantile_error_is_bounded(
        mut values in proptest::collection::vec(0u64..10_000_000, 1..500),
        q in 0.01f64..1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let exact = exact_quantile(&values, q);
        let approx = h.snapshot().value_at_quantile(q);
        // The histogram reports the lower bound of the containing bucket,
        // so it may under-report by the bucket width but never exceed the
        // true max.
        prop_assert!(approx <= *values.last().unwrap());
        let tolerance = (exact as f64 * 0.032).max(1.0);
        prop_assert!(
            (approx as f64) >= exact as f64 - tolerance - 1.0,
            "q={q}: approx {approx} far below exact {exact}"
        );
    }

    /// count/sum/max must be exact regardless of input.
    #[test]
    fn counters_are_exact(values in proptest::collection::vec(0u64..1_000_000, 0..300)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count(), values.len() as u64);
        prop_assert_eq!(s.max(), values.iter().copied().max().unwrap_or(0));
        if !values.is_empty() {
            let mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
            prop_assert!((s.mean() - mean).abs() < 1e-6);
        }
    }

    /// Merging per-thread histograms must equal recording everything into
    /// one histogram.
    #[test]
    fn merge_equals_union(
        a in proptest::collection::vec(0u64..1_000_000, 0..200),
        b in proptest::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let hu = Histogram::new();
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        let mut merged = Snapshot::empty();
        merged.merge(&ha.snapshot());
        merged.merge(&hb.snapshot());
        let union = hu.snapshot();
        prop_assert_eq!(merged.count(), union.count());
        prop_assert_eq!(merged.max(), union.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            prop_assert_eq!(merged.value_at_quantile(q), union.value_at_quantile(q));
        }
    }

    /// Quantiles are monotone in q.
    #[test]
    fn quantiles_monotone(values in proptest::collection::vec(0u64..100_000_000, 1..300)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        let mut last = 0;
        for i in 1..=20 {
            let v = s.value_at_quantile(i as f64 / 20.0);
            prop_assert!(v >= last, "quantile decreased at {i}/20");
            last = v;
        }
    }

    /// Actor identity equality implies stable-hash equality, and string
    /// keys never collide with numeric keys.
    #[test]
    fn identity_hash_consistency(n in 0u64..1_000_000, s in "[a-z0-9/-]{1,20}") {
        let t = ActorTypeId::from_raw(1);
        let a = ActorId::new(t, ActorKey::from(n));
        let b = ActorId::new(t, ActorKey::from(n));
        prop_assert_eq!(a.stable_hash(), b.stable_hash());
        let c = ActorId::new(t, ActorKey::from(s.as_str()));
        let d = ActorId::new(t, ActorKey::from(s.clone()));
        prop_assert_eq!(c.stable_hash(), d.stable_hash());
        prop_assert_ne!(&a.key, &c.key);
    }
}
