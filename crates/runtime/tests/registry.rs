//! Registration-surface regressions: re-registering an actor type must
//! keep its `ActorTypeId` stable (outstanding `ActorRef`s embed the id)
//! while replacing the factory for future activations.

use std::time::Duration;

use aodb_runtime::{Actor, ActorContext, Handler, Message, Runtime};

struct Greeter {
    greeting: &'static str,
}

impl Actor for Greeter {
    const TYPE_NAME: &'static str = "registry-test.greeter";
}

struct Greet;
impl Message for Greet {
    type Reply = &'static str;
}

impl Handler<Greet> for Greeter {
    fn handle(&mut self, _msg: Greet, _ctx: &mut ActorContext<'_>) -> &'static str {
        self.greeting
    }
}

struct Other;
impl Actor for Other {
    const TYPE_NAME: &'static str = "registry-test.other";
}
impl Handler<Greet> for Other {
    fn handle(&mut self, _msg: Greet, _ctx: &mut ActorContext<'_>) -> &'static str {
        "other"
    }
}

#[test]
fn reregistration_keeps_type_id_and_replaces_factory() {
    let rt = Runtime::single(2);
    let first = rt.register(|_| Greeter { greeting: "v1" });
    // A reference minted against the first registration.
    let early_ref = rt.actor_ref::<Greeter>("g");

    // Interleave another type so a naive "next slot" scheme would drift.
    let other = rt.register(|_| Other);
    assert_ne!(first, other);

    let second = rt.register(|_| Greeter { greeting: "v2" });
    assert_eq!(
        first, second,
        "re-registration must keep the ActorTypeId stable"
    );

    // No activation existed yet, so the first message runs the replacement
    // factory — and the pre-re-registration reference still routes to it.
    let got = early_ref
        .call_timeout(Greet, Duration::from_secs(5))
        .expect("stale ActorRef must stay routable");
    assert_eq!(got, "v2");
    rt.shutdown();
}

#[test]
fn thread_local_type_cache_survives_reregistration() {
    // `typed_ref` memoizes (registry, Rust type) → ActorTypeId in a
    // thread-local cache. That is only sound because re-registration
    // keeps the id stable; this pins the interaction: a thread that
    // cached the resolution *before* a re-registration must keep
    // dispatching correctly — and reach the replacement factory — using
    // its stale-but-valid cache entry afterwards.
    let rt = Runtime::single(2);
    rt.register(|_| Greeter { greeting: "v1" });

    let (warmed_tx, warmed_rx) = std::sync::mpsc::channel::<()>();
    let (rereg_tx, rereg_rx) = std::sync::mpsc::channel::<()>();

    std::thread::scope(|s| {
        let rt_ref = &rt;
        s.spawn(move || {
            // Warm this thread's cache and activate one instance under
            // the original factory.
            let got = rt_ref
                .actor_ref::<Greeter>("warm")
                .call_timeout(Greet, Duration::from_secs(5))
                .expect("warm-up call");
            assert_eq!(got, "v1");
            warmed_tx.send(()).unwrap();
            rereg_rx.recv().unwrap();

            // Pure cache-hit mint after the re-registration: a fresh key
            // must activate through the *replacement* factory, and the
            // already-active instance must stay reachable.
            let fresh = rt_ref
                .actor_ref::<Greeter>("fresh")
                .call_timeout(Greet, Duration::from_secs(5))
                .expect("post-re-registration dispatch from caching thread");
            assert_eq!(fresh, "v2", "cached ActorTypeId routed to a stale factory");
            let warm = rt_ref
                .actor_ref::<Greeter>("warm")
                .call_timeout(Greet, Duration::from_secs(5))
                .expect("existing activation stays reachable");
            assert_eq!(warm, "v1", "live activation must not be rebuilt");
        });

        warmed_rx.recv().unwrap();
        // Re-register from the main thread (whose own cache state is
        // irrelevant to the spawned thread's).
        rt.register(|_| Greeter { greeting: "v2" });
        rereg_tx.send(()).unwrap();
    });
    rt.shutdown();
}

#[test]
fn distinct_types_get_distinct_ids_and_names() {
    let rt = Runtime::single(1);
    let a = rt.register(|_| Greeter { greeting: "hi" });
    let b = rt.register(|_| Other);
    assert_ne!(a, b);
    assert_eq!(rt.type_name(a), Some("registry-test.greeter"));
    assert_eq!(rt.type_name(b), Some("registry-test.other"));
    let topo = rt.call_topology();
    assert!(topo.iter().any(|t| t.name == "registry-test.greeter"));
    assert!(topo.iter().any(|t| t.name == "registry-test.other"));
    rt.shutdown();
}
