//! End-to-end behavioural tests of the virtual-actor runtime: activation
//! lifecycle, turn-based execution, placement, simulated network, timers,
//! panic isolation, and shutdown semantics.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aodb_runtime::{
    gather, Actor, ActorContext, CallError, ConsistentHashPlacement, Handler, LatencyModel,
    Message, NetConfig, PreferLocalPlacement, PromiseError, Runtime, SendError, SiloId,
};

// ---------------------------------------------------------------- fixtures

/// Shared probe counters handed to test actors through their factories.
#[derive(Default)]
struct Probe {
    activations: AtomicUsize,
    deactivations: AtomicUsize,
}

struct Counter {
    value: u64,
    probe: Arc<Probe>,
}

impl Actor for Counter {
    const TYPE_NAME: &'static str = "test.counter";

    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.probe.activations.fetch_add(1, Ordering::SeqCst);
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.probe.deactivations.fetch_add(1, Ordering::SeqCst);
    }
}

#[derive(Clone)]
struct Add(u64);
impl Message for Add {
    type Reply = u64;
}
impl Handler<Add> for Counter {
    fn handle(&mut self, msg: Add, _ctx: &mut ActorContext<'_>) -> u64 {
        self.value += msg.0;
        self.value
    }
}

struct Get;
impl Message for Get {
    type Reply = u64;
}
impl Handler<Get> for Counter {
    fn handle(&mut self, _msg: Get, _ctx: &mut ActorContext<'_>) -> u64 {
        self.value
    }
}

struct Boom;
impl Message for Boom {
    type Reply = ();
}
impl Handler<Boom> for Counter {
    fn handle(&mut self, _msg: Boom, _ctx: &mut ActorContext<'_>) {
        panic!("intentional test panic");
    }
}

struct Retire;
impl Message for Retire {
    type Reply = ();
}
impl Handler<Retire> for Counter {
    fn handle(&mut self, _msg: Retire, ctx: &mut ActorContext<'_>) {
        ctx.deactivate();
    }
}

struct WhichSilo;
impl Message for WhichSilo {
    type Reply = SiloId;
}
impl Handler<WhichSilo> for Counter {
    fn handle(&mut self, _msg: WhichSilo, ctx: &mut ActorContext<'_>) -> SiloId {
        ctx.silo()
    }
}

fn counter_runtime(probe: &Arc<Probe>) -> Runtime {
    let rt = Runtime::single(2);
    let probe = Arc::clone(probe);
    rt.register(move |_id| Counter {
        value: 0,
        probe: Arc::clone(&probe),
    });
    rt
}

// ------------------------------------------------------------------ tests

#[test]
fn virtual_actor_activates_on_first_message() {
    let probe = Arc::new(Probe::default());
    let rt = counter_runtime(&probe);
    assert_eq!(rt.active_actors(), 0);
    let c = rt.actor_ref::<Counter>(1u64);
    assert_eq!(c.call(Add(3)).unwrap(), 3);
    assert_eq!(rt.active_actors(), 1);
    assert_eq!(probe.activations.load(Ordering::SeqCst), 1);
    rt.shutdown();
}

#[test]
fn state_persists_across_messages_within_activation() {
    let probe = Arc::new(Probe::default());
    let rt = counter_runtime(&probe);
    let c = rt.actor_ref::<Counter>("acc");
    for i in 1..=100u64 {
        assert_eq!(c.call(Add(1)).unwrap(), i);
    }
    assert_eq!(
        probe.activations.load(Ordering::SeqCst),
        1,
        "must not re-activate"
    );
    rt.shutdown();
}

#[test]
fn distinct_keys_are_distinct_actors() {
    let probe = Arc::new(Probe::default());
    let rt = counter_runtime(&probe);
    let a = rt.actor_ref::<Counter>(1u64);
    let b = rt.actor_ref::<Counter>(2u64);
    a.call(Add(10)).unwrap();
    b.call(Add(20)).unwrap();
    assert_eq!(a.call(Get).unwrap(), 10);
    assert_eq!(b.call(Get).unwrap(), 20);
    assert_eq!(rt.active_actors(), 2);
    rt.shutdown();
}

#[test]
fn turn_based_execution_means_no_lost_updates() {
    // 8 client threads hammer one actor; turn-based execution must make
    // the increments fully serialized.
    let probe = Arc::new(Probe::default());
    let rt = counter_runtime(&probe);
    let per_thread = 5_000u64;
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let c = rt.actor_ref::<Counter>("shared");
            std::thread::spawn(move || {
                for _ in 0..per_thread {
                    c.tell(Add(1)).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert!(rt.quiesce(Duration::from_secs(10)));
    let c = rt.actor_ref::<Counter>("shared");
    assert_eq!(c.call(Get).unwrap(), 8 * per_thread);
    rt.shutdown();
}

#[test]
fn unregistered_type_reports_error() {
    let rt = Runtime::single(1);
    let err = rt.try_actor_ref::<Counter>(1u64).unwrap_err();
    assert!(matches!(err, SendError::NotRegistered(_)));
    rt.shutdown();
}

#[test]
fn handler_panic_is_isolated_and_reply_is_lost() {
    let probe = Arc::new(Probe::default());
    let rt = counter_runtime(&probe);
    let c = rt.actor_ref::<Counter>("panicky");
    c.call(Add(5)).unwrap();
    let err = c.call(Boom).unwrap_err();
    assert!(matches!(err, CallError::Reply(PromiseError::Lost)));
    // The actor survives the panic with state intact.
    assert_eq!(c.call(Get).unwrap(), 5);
    assert_eq!(rt.metrics().handler_panics, 1);
    rt.shutdown();
}

#[test]
fn explicit_deactivation_resets_state_and_reactivates() {
    let probe = Arc::new(Probe::default());
    let rt = counter_runtime(&probe);
    let c = rt.actor_ref::<Counter>("cycle");
    c.call(Add(42)).unwrap();
    c.call(Retire).unwrap();
    assert!(rt.quiesce(Duration::from_secs(5)));
    // Deactivation happens right after the turn; give the worker a moment.
    let deadline = Instant::now() + Duration::from_secs(2);
    while probe.deactivations.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(probe.deactivations.load(Ordering::SeqCst), 1);
    // Next message transparently re-activates with factory-fresh state.
    assert_eq!(c.call(Get).unwrap(), 0);
    assert_eq!(probe.activations.load(Ordering::SeqCst), 2);
    rt.shutdown();
}

#[test]
fn idle_timeout_reclaims_activations() {
    let probe = Arc::new(Probe::default());
    let rt = Runtime::builder()
        .silos(1, 2)
        .idle_timeout(Duration::from_millis(50))
        .janitor_interval(Duration::from_millis(10))
        .build();
    {
        let probe = Arc::clone(&probe);
        rt.register(move |_id| Counter {
            value: 0,
            probe: Arc::clone(&probe),
        });
    }
    let c = rt.actor_ref::<Counter>("idler");
    c.call(Add(1)).unwrap();
    assert_eq!(rt.active_actors(), 1);
    let deadline = Instant::now() + Duration::from_secs(3);
    while rt.active_actors() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(rt.active_actors(), 0, "idle activation should be reclaimed");
    assert_eq!(probe.deactivations.load(Ordering::SeqCst), 1);
    // Virtual actor is still addressable afterwards.
    assert_eq!(c.call(Get).unwrap(), 0);
    rt.shutdown();
}

#[test]
fn shutdown_deactivates_everything() {
    let probe = Arc::new(Probe::default());
    let rt = counter_runtime(&probe);
    for k in 0..10u64 {
        rt.actor_ref::<Counter>(k).call(Add(1)).unwrap();
    }
    assert_eq!(rt.active_actors(), 10);
    rt.shutdown();
    assert_eq!(probe.deactivations.load(Ordering::SeqCst), 10);
}

#[test]
fn consistent_hash_placement_is_reproducible_across_silos() {
    let probe = Arc::new(Probe::default());
    let build = || {
        let rt = Runtime::builder()
            .silos(4, 1)
            .placement(ConsistentHashPlacement)
            .build();
        let probe = Arc::clone(&probe);
        rt.register(move |_id| Counter {
            value: 0,
            probe: Arc::clone(&probe),
        });
        rt
    };
    let rt1 = build();
    let placements1: Vec<SiloId> = (0..32u64)
        .map(|k| rt1.actor_ref::<Counter>(k).call(WhichSilo).unwrap())
        .collect();
    rt1.shutdown();
    let rt2 = build();
    let placements2: Vec<SiloId> = (0..32u64)
        .map(|k| rt2.actor_ref::<Counter>(k).call(WhichSilo).unwrap())
        .collect();
    rt2.shutdown();
    assert_eq!(placements1, placements2);
    let distinct: std::collections::HashSet<_> = placements1.iter().collect();
    assert!(distinct.len() > 1, "keys should spread over silos");
}

#[test]
fn prefer_local_pins_to_gateway_silo() {
    let probe = Arc::new(Probe::default());
    let rt = Runtime::builder()
        .silos(3, 1)
        .placement(PreferLocalPlacement)
        .build();
    {
        let probe = Arc::clone(&probe);
        rt.register(move |_id| Counter {
            value: 0,
            probe: Arc::clone(&probe),
        });
    }
    for silo in 0..3u32 {
        let handle = rt.handle_on(SiloId(silo));
        let c = handle.actor_ref::<Counter>(1000 + silo as u64);
        assert_eq!(c.call(WhichSilo).unwrap(), SiloId(silo));
    }
    rt.shutdown();
}

#[test]
fn cross_silo_messages_pay_latency() {
    let probe = Arc::new(Probe::default());
    let rt = Runtime::builder()
        .silos(2, 1)
        .placement(PreferLocalPlacement)
        .network(NetConfig {
            cross_silo: Some(LatencyModel::fixed(Duration::from_millis(20))),
            client: None,
        })
        .build();
    {
        let probe = Arc::clone(&probe);
        rt.register(move |_id| Counter {
            value: 0,
            probe: Arc::clone(&probe),
        });
    }
    // Pin the actor to silo 0 via an affine gateway.
    let local = rt.handle_on(SiloId(0)).actor_ref::<Counter>("pinned");
    local.call(Add(1)).unwrap();

    // Local call: fast.
    let t0 = Instant::now();
    local.call(Get).unwrap();
    let local_latency = t0.elapsed();

    // Call from a gateway on the other silo: pays the 20 ms hop.
    let remote = rt.handle_on(SiloId(1)).actor_ref::<Counter>("pinned");
    let t0 = Instant::now();
    remote.call(Get).unwrap();
    let remote_latency = t0.elapsed();

    assert!(
        remote_latency >= Duration::from_millis(18),
        "remote call should pay the simulated hop, took {remote_latency:?}"
    );
    assert!(
        local_latency < Duration::from_millis(10),
        "local call should not pay the hop, took {local_latency:?}"
    );
    assert!(rt.metrics().remote_messages >= 1);
    rt.shutdown();
}

#[test]
fn scatter_gather_collects_from_many_actors() {
    let probe = Arc::new(Probe::default());
    let rt = counter_runtime(&probe);
    for k in 0..20u64 {
        rt.actor_ref::<Counter>(k).call(Add(k)).unwrap();
    }
    let (collector, promise) = gather::<u64>(20);
    for k in 0..20u64 {
        rt.actor_ref::<Counter>(k)
            .ask_with(Get, collector.slot())
            .unwrap();
    }
    let mut values = promise.wait_for(Duration::from_secs(5)).unwrap();
    values.sort_unstable();
    assert_eq!(values, (0..20).collect::<Vec<_>>());
    rt.shutdown();
}

#[test]
fn recipient_erases_actor_type() {
    let probe = Arc::new(Probe::default());
    let rt = counter_runtime(&probe);
    let recipient = rt.actor_ref::<Counter>("erased").recipient::<Add>();
    assert_eq!(recipient.ask(Add(4)).unwrap().wait().unwrap(), 4);
    recipient.tell(Add(6)).unwrap();
    assert!(rt.quiesce(Duration::from_secs(5)));
    assert_eq!(rt.actor_ref::<Counter>("erased").call(Get).unwrap(), 10);
    rt.shutdown();
}

#[test]
fn interval_timer_fires_until_cancelled() {
    let probe = Arc::new(Probe::default());
    let rt = counter_runtime(&probe);
    let c = rt.actor_ref::<Counter>("timed");
    c.call(Add(0)).unwrap();
    let timer = rt.schedule_interval(&c, Add(1), Duration::from_millis(10));
    let deadline = Instant::now() + Duration::from_secs(5);
    while c.call(Get).unwrap() < 5 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let at_cancel = c.call(Get).unwrap();
    assert!(at_cancel >= 5, "timer should have fired repeatedly");
    timer.cancel();
    std::thread::sleep(Duration::from_millis(60));
    let after = c.call(Get).unwrap();
    std::thread::sleep(Duration::from_millis(60));
    // Allow one in-flight firing around cancellation, then it must stop.
    assert!(
        c.call(Get).unwrap() <= after + 1,
        "timer kept firing after cancel"
    );
    rt.shutdown();
}

#[test]
fn delayed_self_notification() {
    struct Echo {
        fired: Arc<AtomicU64>,
    }
    impl Actor for Echo {
        const TYPE_NAME: &'static str = "test.echo";
    }
    struct Kick;
    impl Message for Kick {
        type Reply = ();
    }
    impl Handler<Kick> for Echo {
        fn handle(&mut self, _msg: Kick, ctx: &mut ActorContext<'_>) {
            if self.fired.fetch_add(1, Ordering::SeqCst) == 0 {
                ctx.notify_self_after::<Echo, Kick>(Kick, Duration::from_millis(20));
            }
        }
    }
    let fired = Arc::new(AtomicU64::new(0));
    let rt = Runtime::single(1);
    {
        let fired = Arc::clone(&fired);
        rt.register(move |_id| Echo {
            fired: Arc::clone(&fired),
        });
    }
    rt.actor_ref::<Echo>("e").call(Kick).unwrap();
    let deadline = Instant::now() + Duration::from_secs(3);
    while fired.load(Ordering::SeqCst) < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(fired.load(Ordering::SeqCst), 2);
    rt.shutdown();
}

#[test]
fn throughput_sanity_many_actors_many_messages() {
    let probe = Arc::new(Probe::default());
    let rt = Runtime::single(4);
    {
        let probe = Arc::clone(&probe);
        rt.register(move |_id| Counter {
            value: 0,
            probe: Arc::clone(&probe),
        });
    }
    let n_actors = 1000u64;
    let per_actor = 100u64;
    for round in 0..per_actor {
        for k in 0..n_actors {
            let _ = round;
            rt.actor_ref::<Counter>(k).tell(Add(1)).unwrap();
        }
    }
    assert!(rt.quiesce(Duration::from_secs(30)));
    for k in (0..n_actors).step_by(97) {
        assert_eq!(rt.actor_ref::<Counter>(k).call(Get).unwrap(), per_actor);
    }
    let m = rt.metrics();
    assert!(m.messages_processed >= n_actors * per_actor);
    rt.shutdown();
}
