//! Integration tests for the work-stealing silo scheduler: message
//! conservation under multi-silo load, the single-threaded-per-activation
//! invariant under steal pressure, deactivation races, parking behaviour
//! of idle workers, and shutdown latency.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aodb_runtime::{Actor, ActorContext, Handler, Message, Runtime, RuntimeBuilder};

struct Counter {
    count: u64,
    /// Shared tally across all activations of the fixture.
    total: Arc<AtomicU64>,
}

impl Actor for Counter {
    const TYPE_NAME: &'static str = "sched.counter";
}

#[derive(Clone)]
struct Inc;
impl Message for Inc {
    type Reply = ();
}
impl Handler<Inc> for Counter {
    fn handle(&mut self, _msg: Inc, _ctx: &mut ActorContext<'_>) {
        self.count += 1;
        self.total.fetch_add(1, Ordering::Relaxed);
    }
}

struct Get;
impl Message for Get {
    type Reply = u64;
}
impl Handler<Get> for Counter {
    fn handle(&mut self, _msg: Get, _ctx: &mut ActorContext<'_>) -> u64 {
        self.count
    }
}

/// N producer threads × M actors × K silos: every sent message must be
/// processed exactly once (no loss, no duplication) even while workers
/// steal from each other and from the injectors.
#[test]
fn multi_silo_stress_conserves_messages() {
    const PRODUCERS: usize = 4;
    const ACTORS: u64 = 32;
    const PER_PRODUCER: u64 = 2_000;
    let rt = Runtime::builder().silos(3, 2).build();
    let total = Arc::new(AtomicU64::new(0));
    {
        let total = Arc::clone(&total);
        rt.register(move |_id| Counter {
            count: 0,
            total: Arc::clone(&total),
        });
    }
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let handle = rt.handle();
            std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let key = (p as u64 + i) % ACTORS;
                    handle.actor_ref::<Counter>(key).tell(Inc).unwrap();
                }
            })
        })
        .collect();
    for t in producers {
        t.join().unwrap();
    }
    assert!(rt.quiesce(Duration::from_secs(30)), "runtime must quiesce");
    let sent = PRODUCERS as u64 * PER_PRODUCER;
    assert_eq!(total.load(Ordering::Relaxed), sent, "handler-side tally");
    assert_eq!(rt.metrics().messages_processed, sent, "metrics tally");
    // Per-actor counts must sum to the total as well.
    let sum: u64 = (0..ACTORS)
        .map(|k| rt.actor_ref::<Counter>(k).call(Get).unwrap())
        .sum();
    assert_eq!(sum, sent);
    assert_eq!(rt.metrics().handler_panics, 0);
    rt.shutdown();
}

/// An actor that detects overlapping turn execution itself: entering the
/// handler flips a flag that must never already be set. Run under heavy
/// multi-producer fire at a handful of actors on a many-worker silo so
/// local pops, injector pops, and steals all interleave.
struct Exclusive {
    entered: Arc<AtomicBool>,
    violations: Arc<AtomicU64>,
}

impl Actor for Exclusive {
    const TYPE_NAME: &'static str = "sched.exclusive";
}

#[derive(Clone)]
struct Probe;
impl Message for Probe {
    type Reply = ();
}
impl Handler<Probe> for Exclusive {
    fn handle(&mut self, _msg: Probe, _ctx: &mut ActorContext<'_>) {
        if self.entered.swap(true, Ordering::SeqCst) {
            self.violations.fetch_add(1, Ordering::SeqCst);
        }
        // Keep the turn open long enough for a concurrent runner to
        // overlap if the scheduler ever double-dispatches.
        std::hint::spin_loop();
        self.entered.store(false, Ordering::SeqCst);
    }
}

#[test]
fn single_threaded_per_activation_under_steal_pressure() {
    const ACTORS: u64 = 4;
    const PRODUCERS: usize = 6;
    const PER_PRODUCER: u64 = 3_000;
    let rt = Runtime::single(4);
    let violations = Arc::new(AtomicU64::new(0));
    {
        let violations = Arc::clone(&violations);
        rt.register(move |_id| Exclusive {
            entered: Arc::new(AtomicBool::new(false)),
            violations: Arc::clone(&violations),
        });
    }
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let handle = rt.handle();
            std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let key = (p as u64 + i) % ACTORS;
                    handle.actor_ref::<Exclusive>(key).tell(Probe).unwrap();
                }
            })
        })
        .collect();
    for t in producers {
        t.join().unwrap();
    }
    assert!(rt.quiesce(Duration::from_secs(30)));
    assert_eq!(
        violations.load(Ordering::SeqCst),
        0,
        "two workers ran the same activation concurrently"
    );
    assert_eq!(
        rt.metrics().messages_processed,
        PRODUCERS as u64 * PER_PRODUCER
    );
    rt.shutdown();
}

/// An actor that requests deactivation on every message, hammered by
/// producers: each message either lands in the current activation or
/// races its retirement and re-activates a fresh one. Nothing may be
/// lost either way.
struct Ephemeral {
    total: Arc<AtomicU64>,
}

impl Actor for Ephemeral {
    const TYPE_NAME: &'static str = "sched.ephemeral";
}

#[derive(Clone)]
struct Touch;
impl Message for Touch {
    type Reply = ();
}
impl Handler<Touch> for Ephemeral {
    fn handle(&mut self, _msg: Touch, ctx: &mut ActorContext<'_>) {
        self.total.fetch_add(1, Ordering::Relaxed);
        ctx.deactivate();
    }
}

#[test]
fn deactivation_race_under_steal_pressure_loses_nothing() {
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: u64 = 1_500;
    let rt = Runtime::single(4);
    let total = Arc::new(AtomicU64::new(0));
    {
        let total = Arc::clone(&total);
        rt.register(move |_id| Ephemeral {
            total: Arc::clone(&total),
        });
    }
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let handle = rt.handle();
            std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    // Two hot keys maximize push-vs-retire races.
                    let key = (p as u64 + i) % 2;
                    handle.actor_ref::<Ephemeral>(key).tell(Touch).unwrap();
                }
            })
        })
        .collect();
    for t in producers {
        t.join().unwrap();
    }
    assert!(rt.quiesce(Duration::from_secs(30)));
    assert_eq!(
        total.load(Ordering::Relaxed),
        PRODUCERS as u64 * PER_PRODUCER
    );
    // Deactivate-per-message means activations churned heavily.
    assert!(rt.metrics().deactivations > 2, "expected activation churn");
    rt.shutdown();
}

/// Idle workers park and *stay* parked: no periodic polling wakeups. The
/// parked-workers gauge must equal the worker count, and the cumulative
/// park counter must not move across an idle observation window.
#[test]
fn idle_workers_park_without_periodic_wakeups() {
    const WORKERS: usize = 4;
    let rt = Runtime::single(WORKERS);
    rt.register(|_id| Counter {
        count: 0,
        total: Arc::new(AtomicU64::new(0)),
    });
    // Run a little traffic, then let the runtime go idle.
    for i in 0..100u64 {
        rt.actor_ref::<Counter>(i % 8).tell(Inc).unwrap();
    }
    assert!(rt.quiesce(Duration::from_secs(10)));
    // Give the last workers time to finish their park protocol.
    let deadline = Instant::now() + Duration::from_secs(5);
    while rt.metrics().parked_workers < WORKERS as u64 {
        assert!(
            Instant::now() < deadline,
            "workers failed to park when idle"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let before = rt.metrics();
    std::thread::sleep(Duration::from_millis(150));
    let after = rt.metrics();
    assert_eq!(
        before.worker_parks, after.worker_parks,
        "parked workers woke up during an idle window (polling regression)"
    );
    assert_eq!(after.parked_workers, WORKERS as u64);
    rt.shutdown();
}

/// Dropping an idle runtime must complete quickly: parked workers, the
/// janitor, and the clock all get woken instead of timing out.
#[test]
fn idle_runtime_drops_fast() {
    let rt = Runtime::single(4);
    rt.register(|_id| Counter {
        count: 0,
        total: Arc::new(AtomicU64::new(0)),
    });
    rt.actor_ref::<Counter>(1u64).tell(Inc).unwrap();
    assert!(rt.quiesce(Duration::from_secs(10)));
    let start = Instant::now();
    drop(rt);
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_millis(100),
        "idle Runtime::drop took {elapsed:?}, expected < 100ms"
    );
}

/// Shutdown latency must not include the janitor interval: even with a
/// deliberately huge janitor interval and idle deactivation enabled, the
/// janitor is unparked promptly at shutdown.
#[test]
fn shutdown_wakes_janitor_promptly() {
    let rt = RuntimeBuilder::new()
        .silos(1, 2)
        .idle_timeout(Duration::from_secs(60))
        .janitor_interval(Duration::from_secs(60))
        .build();
    rt.register(|_id| Counter {
        count: 0,
        total: Arc::new(AtomicU64::new(0)),
    });
    rt.actor_ref::<Counter>(7u64).tell(Inc).unwrap();
    assert!(rt.quiesce(Duration::from_secs(10)));
    let start = Instant::now();
    rt.shutdown();
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "shutdown waited on the janitor interval: {elapsed:?}"
    );
}

/// The scheduler counters actually move: worker-originated dispatch uses
/// local deques, client dispatch goes through the injector.
#[test]
fn scheduler_counters_classify_dispatch_paths() {
    let rt = Runtime::single(2);
    rt.register(|_id| Counter {
        count: 0,
        total: Arc::new(AtomicU64::new(0)),
    });
    for i in 0..200u64 {
        rt.actor_ref::<Counter>(i % 16).tell(Inc).unwrap();
    }
    assert!(rt.quiesce(Duration::from_secs(10)));
    let m = rt.metrics();
    assert!(
        m.scheduler_injector_pops > 0,
        "client dispatches must flow through the injector"
    );
    assert_eq!(m.messages_processed, 200);
    rt.shutdown();
}
