//! Silo crash/restart semantics: eviction, SiloLost resolution,
//! re-placement on survivors, and reactivation accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use aodb_runtime::{
    Actor, ActorContext, ActorError, FaultPlan, Handler, Message, NetConfig, PanicPolicy,
    Placement, Runtime, RuntimeBuilder, SendError, SiloId,
};

/// Pins every actor onto the silo named by the low bits of its key hash —
/// deterministic multi-silo spread for crash targeting.
struct ModuloPlacement;
impl Placement for ModuloPlacement {
    fn name(&self) -> &'static str {
        "modulo"
    }
    fn place(
        &self,
        id: &aodb_runtime::ActorId,
        _origin: aodb_runtime::Origin,
        silos: usize,
    ) -> SiloId {
        SiloId((id.stable_hash() % silos as u64) as u32)
    }
}

struct Counter {
    value: u64,
    activations: Arc<AtomicU64>,
}

impl Actor for Counter {
    const TYPE_NAME: &'static str = "crash.counter";
    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.activations.fetch_add(1, Ordering::SeqCst);
    }
}

#[derive(Clone)]
struct Add(u64);
impl Message for Add {
    type Reply = u64;
}
impl Handler<Add> for Counter {
    fn handle(&mut self, msg: Add, _ctx: &mut ActorContext<'_>) -> u64 {
        self.value += msg.0;
        self.value
    }
}

#[derive(Clone)]
struct SlowAdd(u64, Duration);
impl Message for SlowAdd {
    type Reply = u64;
}
impl Handler<SlowAdd> for Counter {
    fn handle(&mut self, msg: SlowAdd, _ctx: &mut ActorContext<'_>) -> u64 {
        std::thread::sleep(msg.1);
        self.value += msg.0;
        self.value
    }
}

fn multi_silo() -> (Runtime, Arc<AtomicU64>) {
    let rt = RuntimeBuilder::new()
        .silos(3, 2)
        .placement(ModuloPlacement)
        .build();
    let activations = Arc::new(AtomicU64::new(0));
    let acts = Arc::clone(&activations);
    rt.register(move |_id| Counter {
        value: 0,
        activations: Arc::clone(&acts),
    });
    (rt, activations)
}

/// Finds a key whose ModuloPlacement target is `silo`.
fn key_on(rt: &Runtime, silo: SiloId) -> String {
    for i in 0..10_000 {
        let key = format!("k{i}");
        let r = rt.actor_ref::<Counter>(key.as_str());
        if r.id().stable_hash() % rt.silo_count() as u64 == silo.index() as u64 {
            return key;
        }
    }
    panic!("no key maps to {silo}");
}

#[test]
fn kill_evicts_and_next_message_reactivates_elsewhere() {
    let (rt, activations) = multi_silo();
    let victim = SiloId(1);
    let key = key_on(&rt, victim);
    let r = rt.actor_ref::<Counter>(key.as_str());
    assert_eq!(r.call(Add(5)).unwrap(), 5);
    assert_eq!(activations.load(Ordering::SeqCst), 1);
    assert!(rt.quiesce(Duration::from_secs(2)));

    let report = rt.kill_silo(victim);
    assert!(!rt.silo_alive(victim));
    assert_eq!(report.evicted_activations, 1);
    assert_eq!(rt.active_actors(), 0);
    assert_eq!(rt.metrics().silo_crashes, 1);

    // Unpersisted state is gone; the next message re-activates fresh on a
    // surviving silo.
    assert_eq!(r.call(Add(3)).unwrap(), 3);
    assert_eq!(activations.load(Ordering::SeqCst), 2);
    assert_eq!(rt.metrics().reactivations, 1);
    rt.shutdown();
}

#[test]
fn kill_is_idempotent_and_restart_revives() {
    let (rt, _) = multi_silo();
    let victim = SiloId(2);
    assert_eq!(rt.kill_silo(victim).evicted_activations, 0);
    // Second kill is a no-op.
    let again = rt.kill_silo(victim);
    assert_eq!(again.evicted_activations, 0);
    assert_eq!(rt.metrics().silo_crashes, 1);

    assert!(rt.restart_silo(victim));
    assert!(!rt.restart_silo(victim)); // not dead anymore
    assert!(rt.silo_alive(victim));

    // The revived silo hosts work again.
    let key = key_on(&rt, victim);
    let r = rt.actor_ref::<Counter>(key.as_str());
    assert_eq!(r.call(Add(1)).unwrap(), 1);
    rt.shutdown();
}

#[test]
fn queued_work_on_killed_silo_resolves_as_silo_lost() {
    let (rt, _) = multi_silo();
    let victim = SiloId(1);
    let key = key_on(&rt, victim);
    let r = rt.actor_ref::<Counter>(key.as_str());

    // Occupy the activation with a slow turn, then queue more work behind
    // it so the kill catches a non-empty mailbox.
    let slow = r.ask(SlowAdd(1, Duration::from_millis(300))).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let queued: Vec<_> = (0..4).map(|_| r.ask(Add(1)).unwrap()).collect();
    std::thread::sleep(Duration::from_millis(20));

    let _ = rt.kill_silo(victim);

    // The in-flight turn ran to completion (indistinguishable from
    // finishing just before the crash); everything queued behind it died
    // with the silo.
    assert_eq!(slow.wait().unwrap(), 1);
    let mut lost = 0;
    for p in queued {
        match p.wait() {
            Err(ActorError::SiloLost) => lost += 1,
            Ok(_) => panic!("queued turn survived a dead silo"),
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!(lost, 4);
    assert_eq!(rt.metrics().lost_turns, 4);

    // SiloLost is retryable: the same reference works immediately.
    assert_eq!(r.call(Add(10)).unwrap(), 10);
    rt.shutdown();
}

#[test]
fn all_silos_dead_yields_no_silo_available() {
    let (rt, _) = multi_silo();
    for i in 0..rt.silo_count() {
        rt.kill_silo(SiloId(i as u32));
    }
    let r = rt.actor_ref::<Counter>("anyone");
    match r.tell(Add(1)) {
        Err(SendError::NoSiloAvailable) => {}
        other => panic!("expected NoSiloAvailable, got {other:?}"),
    }
    rt.restart_silo(SiloId(0));
    assert_eq!(r.call(Add(1)).unwrap(), 1);
    rt.shutdown();
}

#[test]
fn crash_under_load_loses_no_acknowledged_reply() {
    // Hammer one actor across a kill+restart: every Ok(reply) must reflect
    // a turn that really ran (monotonic counter), and every failure must be
    // a typed, retryable error — never a hang or a wrong value.
    let (rt, _) = multi_silo();
    let victim = SiloId(1);
    let key = key_on(&rt, victim);
    let r = rt.actor_ref::<Counter>(key.as_str());

    // Pipeline requests (don't wait one-by-one) so the kill catches a
    // backed-up mailbox; each turn sleeps a little to keep the queue deep.
    let mut promises = Vec::new();
    for i in 0..400 {
        if i == 150 {
            rt.kill_silo(victim);
        }
        if i == 250 {
            assert!(rt.restart_silo(victim));
        }
        match r.ask(SlowAdd(1, Duration::from_micros(200))) {
            Ok(p) => promises.push(p),
            Err(SendError::NoSiloAvailable) => {}
            Err(e) => panic!("unexpected send error: {e}"),
        }
    }
    let mut acked = 0u64;
    let mut lost = 0u64;
    for p in promises {
        match p.wait_for(Duration::from_secs(10)) {
            Ok(v) => {
                assert!(v > 0);
                acked += 1;
            }
            Err(ActorError::SiloLost) | Err(ActorError::Lost) => lost += 1,
            Err(e) => panic!("unexpected promise error: {e}"),
        }
    }
    // The counter restarts from zero on crash eviction (no persistence in
    // this fixture), so the final value can be below `acked`; what must
    // hold is that at least as many turns ran as were acknowledged.
    // (Quiesce first: a slice adds to `messages_processed` after its last
    // reply is delivered but before its mailbox goes Idle.)
    assert!(rt.quiesce(Duration::from_secs(5)));
    let processed = rt.metrics().messages_processed;
    assert!(
        processed >= acked,
        "acked {acked} > processed {processed} (acknowledged write lost)"
    );
    assert!(acked > 0, "no request ever succeeded");
    assert!(lost > 0, "kill never interfered — test proves nothing");
    rt.shutdown();
}

#[test]
fn chaos_plan_drops_and_delays_cross_silo_messages() {
    // All-faults-on plan over a latency-charging network: drops resolve as
    // Lost (never hang), and stats record injected faults.
    let plan = FaultPlan::new(0xC0FFEE).with_net(aodb_runtime::ChaosNetConfig {
        drop_per_mille: 200,
        duplicate_per_mille: 0,
        delay_per_mille: 300,
        max_extra_delay: Duration::from_micros(500),
    });
    let rt = RuntimeBuilder::new()
        .silos(2, 2)
        .placement(ModuloPlacement)
        .network(NetConfig {
            cross_silo: Some(aodb_runtime::LatencyModel::fixed(Duration::from_micros(50))),
            client: Some(aodb_runtime::LatencyModel::fixed(Duration::from_micros(50))),
        })
        .chaos(plan)
        .build();
    let activations = Arc::new(AtomicU64::new(0));
    let acts = Arc::clone(&activations);
    rt.register(move |_id| Counter {
        value: 0,
        activations: Arc::clone(&acts),
    });

    let r = rt.actor_ref::<Counter>("chaotic");
    let mut ok = 0;
    let mut lost = 0;
    for _ in 0..300 {
        match r.ask(Add(1)).unwrap().wait_for(Duration::from_secs(5)) {
            Ok(_) => ok += 1,
            Err(ActorError::Lost) => lost += 1,
            Err(e) => panic!("unexpected error under chaos: {e}"),
        }
    }
    let stats = rt.chaos_stats().expect("chaos installed");
    assert_eq!(stats.dropped, lost, "every drop must resolve a promise");
    assert!(ok > 0 && lost > 0, "ok={ok} lost={lost}");
    assert!(stats.delayed > 0);
    rt.shutdown();
}

#[test]
fn chaos_duplicates_replayable_sends_only() {
    let plan = FaultPlan::new(7).with_net(aodb_runtime::ChaosNetConfig {
        drop_per_mille: 0,
        duplicate_per_mille: 1000, // duplicate every message that can be
        delay_per_mille: 0,
        max_extra_delay: Duration::ZERO,
    });
    let rt = RuntimeBuilder::new()
        .silos(1, 2)
        .network(NetConfig {
            cross_silo: None,
            client: Some(aodb_runtime::LatencyModel::fixed(Duration::from_micros(20))),
        })
        .chaos(plan)
        .panic_policy(PanicPolicy::Keep)
        .build();
    let activations = Arc::new(AtomicU64::new(0));
    let acts = Arc::clone(&activations);
    rt.register(move |_id| Counter {
        value: 0,
        activations: Arc::clone(&acts),
    });
    let r = rt.actor_ref::<Counter>("dup");

    // Non-replayable ask: delivered exactly once even at 100% duplication.
    assert_eq!(r.ask(Add(1)).unwrap().wait().unwrap(), 1);
    rt.quiesce(Duration::from_secs(2));
    assert_eq!(rt.chaos_stats().unwrap().duplicated, 0);

    // Replayable ask: the duplicate re-runs the handler with its reply
    // discarded, so the counter jumps by 2 per logical send.
    let v = r.ask_replayable(Add(1)).unwrap().wait().unwrap();
    assert!(v >= 2, "reply {v} should reflect first delivery");
    rt.quiesce(Duration::from_secs(2));
    assert_eq!(rt.chaos_stats().unwrap().duplicated, 1);
    assert_eq!(r.call(Add(0)).unwrap(), 3);
    rt.shutdown();
}
