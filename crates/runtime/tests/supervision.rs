//! Supervision tests: faulted-activation policies and recovery semantics
//! under injected panics.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aodb_runtime::{Actor, ActorContext, Handler, Message, PanicPolicy, Runtime, RuntimeBuilder};

/// An actor with in-memory state and a "durable" baseline restored on
/// activation (a stand-in for Persisted state without a store dependency).
struct Fragile {
    value: u64,
    activations: Arc<AtomicUsize>,
    deactivate_flushes: Arc<AtomicUsize>,
}

impl Actor for Fragile {
    const TYPE_NAME: &'static str = "test.fragile";

    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.activations.fetch_add(1, Ordering::SeqCst);
        self.value = 100; // the "durable" baseline
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.deactivate_flushes.fetch_add(1, Ordering::SeqCst);
    }
}

struct Add(u64);
impl Message for Add {
    type Reply = u64;
}
impl Handler<Add> for Fragile {
    fn handle(&mut self, msg: Add, _ctx: &mut ActorContext<'_>) -> u64 {
        self.value += msg.0;
        self.value
    }
}

struct CorruptAndPanic;
impl Message for CorruptAndPanic {
    type Reply = ();
}
impl Handler<CorruptAndPanic> for Fragile {
    fn handle(&mut self, _msg: CorruptAndPanic, _ctx: &mut ActorContext<'_>) {
        self.value = 999_999; // half-applied mutation...
        panic!("boom mid-mutation"); // ...then the turn dies
    }
}

fn build(policy: PanicPolicy) -> (Runtime, Arc<AtomicUsize>, Arc<AtomicUsize>) {
    let activations = Arc::new(AtomicUsize::new(0));
    let flushes = Arc::new(AtomicUsize::new(0));
    let rt = RuntimeBuilder::new()
        .silos(1, 2)
        .panic_policy(policy)
        .build();
    {
        let activations = Arc::clone(&activations);
        let flushes = Arc::clone(&flushes);
        rt.register(move |_id| Fragile {
            value: 0,
            activations: Arc::clone(&activations),
            deactivate_flushes: Arc::clone(&flushes),
        });
    }
    (rt, activations, flushes)
}

#[test]
fn keep_policy_preserves_corrupted_state() {
    // The default: the activation survives, corrupted state and all —
    // the test documents why Deactivate exists.
    let (rt, activations, _) = build(PanicPolicy::Keep);
    let actor = rt.actor_ref::<Fragile>("a");
    assert_eq!(actor.call(Add(1)).unwrap(), 101);
    let _ = actor.call(CorruptAndPanic);
    assert_eq!(actor.call(Add(0)).unwrap(), 999_999);
    assert_eq!(activations.load(Ordering::SeqCst), 1);
    rt.shutdown();
}

#[test]
fn deactivate_policy_discards_corrupted_state() {
    let (rt, activations, flushes) = build(PanicPolicy::Deactivate);
    let actor = rt.actor_ref::<Fragile>("a");
    assert_eq!(actor.call(Add(1)).unwrap(), 101);
    let _ = actor.call(CorruptAndPanic);
    // Next message re-activates from the durable baseline: the
    // half-applied 999_999 never escapes.
    assert_eq!(actor.call(Add(0)).unwrap(), 100);
    assert_eq!(activations.load(Ordering::SeqCst), 2);
    // Crucially the faulted instance was NOT flushed via on_deactivate.
    assert_eq!(flushes.load(Ordering::SeqCst), 0);
    assert_eq!(rt.metrics().handler_panics, 1);
    rt.shutdown();
}

#[test]
fn queued_messages_survive_a_faulted_turn() {
    let (rt, _, _) = build(PanicPolicy::Deactivate);
    let actor = rt.actor_ref::<Fragile>("q");
    actor.call(Add(0)).unwrap();
    // Queue a panic followed by a burst of adds in one go; the adds must
    // be re-dispatched to the fresh activation, not lost.
    actor.tell(CorruptAndPanic).unwrap();
    for _ in 0..10 {
        actor.tell(Add(1)).unwrap();
    }
    assert!(rt.quiesce(Duration::from_secs(10)));
    // Fresh activation at 100 + up to 10 adds; exact count depends on how
    // many adds were drained into the faulted slice (they are re-sent),
    // so all 10 must have landed.
    assert_eq!(actor.call(Add(0)).unwrap(), 110);
    rt.shutdown();
}

#[test]
fn repeated_faults_do_not_wedge_the_actor() {
    let (rt, activations, _) = build(PanicPolicy::Deactivate);
    let actor = rt.actor_ref::<Fragile>("r");
    for _ in 0..5 {
        let _ = actor.call(CorruptAndPanic);
        assert_eq!(actor.call(Add(1)).unwrap(), 101);
    }
    assert!(activations.load(Ordering::SeqCst) >= 5);
    assert_eq!(rt.metrics().handler_panics, 5);
    rt.shutdown();
}

#[test]
fn faulted_activations_count_as_deactivations_in_metrics() {
    let (rt, _, _) = build(PanicPolicy::Deactivate);
    let actor = rt.actor_ref::<Fragile>("m");
    let _ = actor.call(CorruptAndPanic);
    let deadline = Instant::now() + Duration::from_secs(2);
    while rt.metrics().deactivations == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(rt.metrics().deactivations, 1);
    rt.shutdown();
}
