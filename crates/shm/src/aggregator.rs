//! The `Aggregator` actor cascade: hour → day → month statistical buckets.
//!
//! Figure 4 introduces aggregator actors because aggregation across levels
//! of detail is parallelizable ("hourly aggregates serving as input to
//! daily aggregates"). Each aggregator owns the buckets of one channel at
//! one granularity; when a bucket closes (time moves past it), its summary
//! is rolled up to the parent level with a single message.
//!
//! The aggregator's identity encodes channel and level
//! (`"{channel}#hour"`), so the factory derives its role from its own key
//! — no configuration message needed, which keeps provisioning cheap.

use std::collections::BTreeMap;

use aodb_runtime::{Actor, ActorContext, Handler};
use serde::{Deserialize, Serialize};

use crate::env::ShmEnv;
use crate::messages::{MergeBucket, QueryAggregates, RecordSamples};
use crate::types::{Aggregate, AggregateLevel};
use aodb_core::Persisted;

/// Bounded bucket retention per aggregator (oldest evicted first).
const MAX_BUCKETS: usize = 4096;

/// Builds the aggregator actor key for a channel and level.
pub fn aggregator_key(channel: &str, level: AggregateLevel) -> String {
    format!("{channel}#{}", level.suffix())
}

/// Splits an aggregator key back into `(channel, level)`.
pub fn parse_aggregator_key(key: &str) -> Option<(&str, AggregateLevel)> {
    let (channel, suffix) = key.rsplit_once('#')?;
    Some((channel, AggregateLevel::from_suffix(suffix)?))
}

#[derive(Default, Serialize, Deserialize)]
struct AggregatorState {
    buckets: BTreeMap<u64, Aggregate>,
    /// Buckets strictly below this start have been rolled up already.
    forwarded_until: u64,
}

/// One channel × one granularity of statistical buckets.
pub struct Aggregator {
    state: Persisted<AggregatorState>,
    channel: String,
    level: AggregateLevel,
}

impl Aggregator {
    /// Registers the actor type. Keys must follow [`aggregator_key`].
    pub fn register(rt: &aodb_runtime::Runtime, env: ShmEnv) {
        rt.register(move |id| {
            let key = id.key.as_display();
            let (channel, level) = parse_aggregator_key(&key)
                .unwrap_or_else(|| panic!("malformed aggregator key `{key}`"));
            Aggregator {
                state: env.persisted_data(Self::TYPE_NAME, &id.key),
                channel: channel.to_string(),
                level,
            }
        });
    }

    /// Merges a value-summary into the bucket containing `ts_ms`, then
    /// rolls up any buckets that the advancing clock has closed.
    fn absorb(&mut self, bucket_start: u64, agg: Aggregate, ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| {
            s.buckets.entry(bucket_start).or_default().merge(&agg);
            while s.buckets.len() > MAX_BUCKETS {
                let oldest = *s.buckets.keys().next().expect("non-empty");
                s.buckets.remove(&oldest);
            }
        });
        self.roll_up_closed(bucket_start, ctx);
    }

    /// Forwards every bucket strictly older than `open_bucket` that has
    /// not been forwarded yet to the parent level.
    fn roll_up_closed(&mut self, open_bucket: u64, ctx: &mut ActorContext<'_>) {
        let Some(parent_level) = self.level.parent() else {
            return;
        };
        let to_forward: Vec<(u64, Aggregate)> = {
            let s = self.state.get();
            if open_bucket <= s.forwarded_until {
                return;
            }
            s.buckets
                .range(s.forwarded_until..open_bucket)
                .map(|(k, v)| (*k, *v))
                .collect()
        };
        if to_forward.is_empty() {
            // Still advance the watermark so later out-of-order arrivals
            // below it do not retrigger forwarding of unseen buckets.
            self.state
                .mutate(|s| s.forwarded_until = s.forwarded_until.max(open_bucket));
            return;
        }
        let parent = ctx.actor_ref::<Aggregator>(aggregator_key(&self.channel, parent_level));
        for (child_start, agg) in &to_forward {
            let _ = parent.tell(MergeBucket {
                bucket_start_ms: parent_level.bucket_start(*child_start),
                agg: *agg,
            });
        }
        self.state.mutate(|s| s.forwarded_until = open_bucket);
    }
}

impl Actor for Aggregator {
    const TYPE_NAME: &'static str = "shm.aggregator";
    fn declared_calls() -> &'static [aodb_runtime::CallDecl] {
        // Closed buckets roll up to the parent-level aggregator (same
        // type, different key — exempt from runtime enforcement but part
        // of the extracted graph).
        const CALLS: &[aodb_runtime::CallDecl] = &[aodb_runtime::CallDecl::send("shm.aggregator")];
        CALLS
    }

    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.load_or_default();
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.flush();
    }
}

impl Handler<RecordSamples> for Aggregator {
    fn handle(&mut self, msg: RecordSamples, ctx: &mut ActorContext<'_>) {
        // Group the batch by bucket first: one state mutation + one
        // roll-up check per bucket touched, not per point.
        let mut per_bucket: BTreeMap<u64, Aggregate> = BTreeMap::new();
        for p in &msg.points {
            per_bucket
                .entry(self.level.bucket_start(p.ts_ms))
                .or_default()
                .record(p.value);
        }
        for (bucket_start, agg) in per_bucket {
            self.absorb(bucket_start, agg, ctx);
        }
    }
}

impl Handler<MergeBucket> for Aggregator {
    fn handle(&mut self, msg: MergeBucket, ctx: &mut ActorContext<'_>) {
        self.absorb(msg.bucket_start_ms, msg.agg, ctx);
    }
}

impl Handler<QueryAggregates> for Aggregator {
    fn handle(
        &mut self,
        msg: QueryAggregates,
        _ctx: &mut ActorContext<'_>,
    ) -> Vec<(u64, Aggregate)> {
        self.state
            .get()
            .buckets
            .range(self.level.bucket_start(msg.from_ms)..=msg.to_ms)
            .map(|(k, v)| (*k, *v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip() {
        let key = aggregator_key("org-1/s-2/c-0", AggregateLevel::Day);
        assert_eq!(
            parse_aggregator_key(&key),
            Some(("org-1/s-2/c-0", AggregateLevel::Day))
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_aggregator_key("no-suffix"), None);
        assert_eq!(parse_aggregator_key("chan#fortnight"), None);
    }
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use crate::test_props::{aggregate, assert_codec_roundtrip};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any aggregator state survives the persistence codec unchanged
        /// (u64 bucket keys included — integer map keys are part of the
        /// codec's contract).
        #[test]
        fn aggregator_state_roundtrips(
            buckets in proptest::collection::vec((any::<u64>(), aggregate()), 0..8),
            forwarded_until in any::<u64>(),
        ) {
            assert_codec_roundtrip(&AggregatorState {
                buckets: buckets.into_iter().collect(),
                forwarded_until,
            });
        }
    }
}
