//! The `AlertLog` actor: one per organization, collecting threshold
//! alerts raised by that organization's channels (functional
//! requirement 5: customized alerts to users when thresholds are met).
//!
//! A separate actor (keyed by the organization key) keeps alert traffic
//! off the organization actor, which serves structural queries and the
//! live-data fan-out.

use std::collections::VecDeque;

use aodb_runtime::{Actor, ActorContext, Handler};
use serde::{Deserialize, Serialize};

use crate::env::ShmEnv;
use crate::messages::{CountAlerts, PushAlert, RecentAlerts};
use crate::types::Alert;
use aodb_core::Persisted;

/// Alerts retained in the log (newest win).
const MAX_ALERTS: usize = 1024;

#[derive(Default, Serialize, Deserialize)]
struct AlertLogState {
    recent: VecDeque<Alert>,
    total: u64,
}

/// The per-organization alert log actor.
pub struct AlertLog {
    state: Persisted<AlertLogState>,
}

impl AlertLog {
    /// Registers the actor type. Keys are organization keys.
    pub fn register(rt: &aodb_runtime::Runtime, env: ShmEnv) {
        rt.register(move |id| AlertLog {
            state: env.persisted_data(Self::TYPE_NAME, &id.key),
        });
    }
}

impl Actor for AlertLog {
    const TYPE_NAME: &'static str = "shm.alert-log";

    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.load_or_default();
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.flush();
    }
}

impl Handler<PushAlert> for AlertLog {
    fn handle(&mut self, msg: PushAlert, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| {
            s.recent.push_back(msg.0);
            if s.recent.len() > MAX_ALERTS {
                s.recent.pop_front();
            }
            s.total += 1;
        });
    }
}

impl Handler<RecentAlerts> for AlertLog {
    fn handle(&mut self, msg: RecentAlerts, _ctx: &mut ActorContext<'_>) -> Vec<Alert> {
        let s = self.state.get();
        s.recent
            .iter()
            .rev()
            .take(if msg.limit == 0 {
                usize::MAX
            } else {
                msg.limit
            })
            .cloned()
            .collect()
    }
}

impl Handler<CountAlerts> for AlertLog {
    fn handle(&mut self, _msg: CountAlerts, _ctx: &mut ActorContext<'_>) -> u64 {
        self.state.get().total
    }
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use crate::test_props::{alert, assert_codec_roundtrip};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any alert-log state survives the persistence codec unchanged.
        #[test]
        fn alert_log_state_roundtrips(
            recent in proptest::collection::vec(alert(), 0..8),
            total in any::<u64>(),
        ) {
            assert_codec_roundtrip(&AlertLogState { recent: recent.into(), total });
        }
    }
}
