//! Tenant authentication and access control (non-functional
//! requirement 7).
//!
//! The paper implements access control "at the application level by
//! building on actor modularity": each tenant's credentials live in a
//! per-organization guard actor, so authentication state is isolated
//! exactly like every other tenant resource — there is no shared user
//! table to misconfigure. [`SecureShmClient`] wraps the platform client
//! and refuses queries whose session token does not belong to the target
//! organization with a sufficient role.

use std::collections::HashMap;

use aodb_runtime::{Actor, ActorContext, Handler, Message, Runtime};
use serde::{Deserialize, Serialize};

use crate::env::ShmEnv;
use crate::messages::LiveDataReport;
use crate::platform::ShmClient;
use crate::types::{Alert, DataPoint, UserRole};
use aodb_core::Persisted;

/// Access levels, ordered: an `Admin` can do everything an `Operator`
/// can, who can do everything a `Viewer` can.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AccessLevel {
    /// Read-only dashboards (live data, plots).
    Viewer,
    /// Operations: raw data exploration, alert management.
    Operator,
    /// Tenant administration.
    Admin,
}

impl From<UserRole> for AccessLevel {
    fn from(role: UserRole) -> Self {
        match role {
            UserRole::Engineer => AccessLevel::Operator,
            UserRole::Analyst => AccessLevel::Operator,
            UserRole::Maintenance => AccessLevel::Admin,
        }
    }
}

/// A session token: opaque to clients, validated by the tenant's guard.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SessionToken(pub u64);

/// Registers a user with a shared secret (provisioning-time, admin-only
/// in a real deployment).
pub struct GrantAccess {
    /// User name.
    pub user: String,
    /// Shared secret.
    pub secret: String,
    /// Granted level.
    pub level: AccessLevel,
}
impl Message for GrantAccess {
    type Reply = ();
}

/// Exchanges credentials for a session token.
pub struct Authenticate {
    /// User name.
    pub user: String,
    /// Shared secret.
    pub secret: String,
}
impl Message for Authenticate {
    type Reply = Option<SessionToken>;
}

/// Validates a token, returning the session's user and level.
pub struct Validate(pub SessionToken);
impl Message for Validate {
    type Reply = Option<(String, AccessLevel)>;
}

/// Revokes a session.
pub struct Revoke(pub SessionToken);
impl Message for Revoke {
    type Reply = bool;
}

#[derive(Default, Serialize, Deserialize)]
struct GuardState {
    /// user → (secret, level).
    users: HashMap<String, (String, AccessLevel)>,
    /// Live sessions. Persisted so sessions survive guard deactivation.
    sessions: HashMap<u64, (String, AccessLevel)>,
    next_token: u64,
}

/// Per-organization access-control guard actor. Key = organization key.
pub struct TenantGuard {
    state: Persisted<GuardState>,
}

impl TenantGuard {
    /// Registers the guard actor type.
    pub fn register(rt: &Runtime, env: ShmEnv) {
        rt.register(move |id| TenantGuard {
            state: env.persisted_structural(Self::TYPE_NAME, &id.key),
        });
    }
}

impl Actor for TenantGuard {
    const TYPE_NAME: &'static str = "shm.tenant-guard";

    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.load_or_default();
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.flush();
    }
}

impl Handler<GrantAccess> for TenantGuard {
    fn handle(&mut self, msg: GrantAccess, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| {
            s.users.insert(msg.user, (msg.secret, msg.level));
        });
    }
}

impl Handler<Authenticate> for TenantGuard {
    fn handle(&mut self, msg: Authenticate, ctx: &mut ActorContext<'_>) -> Option<SessionToken> {
        let level = {
            let s = self.state.get();
            match s.users.get(&msg.user) {
                Some((secret, level)) if *secret == msg.secret => *level,
                _ => return None,
            }
        };
        // Token = per-tenant counter mixed with the tenant identity hash,
        // so tokens from different tenants can never collide or be
        // replayed across organizations.
        let tenant_hash = ctx.actor_id().stable_hash();
        Some(SessionToken(self.state.mutate(|s| {
            s.next_token += 1;
            let token = tenant_hash ^ (s.next_token << 16) ^ 0xA11C_E5E5;
            s.sessions.insert(token, (msg.user.clone(), level));
            token
        })))
    }
}

impl Handler<Validate> for TenantGuard {
    fn handle(
        &mut self,
        msg: Validate,
        _ctx: &mut ActorContext<'_>,
    ) -> Option<(String, AccessLevel)> {
        self.state.get().sessions.get(&msg.0 .0).cloned()
    }
}

impl Handler<Revoke> for TenantGuard {
    fn handle(&mut self, msg: Revoke, _ctx: &mut ActorContext<'_>) -> bool {
        self.state
            .mutate(|s| s.sessions.remove(&msg.0 .0).is_some())
    }
}

/// Why a secured call was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessError {
    /// Token unknown to this tenant (wrong tenant or revoked).
    InvalidToken,
    /// Token valid but the level is insufficient for the operation.
    Forbidden {
        /// Level required by the operation.
        required: AccessLevel,
        /// Level the session has.
        held: AccessLevel,
    },
    /// The platform itself failed.
    Platform(String),
}

impl std::fmt::Display for AccessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessError::InvalidToken => write!(f, "invalid or revoked session token"),
            AccessError::Forbidden { required, held } => {
                write!(f, "requires {required:?}, session holds {held:?}")
            }
            AccessError::Platform(e) => write!(f, "platform error: {e}"),
        }
    }
}

impl std::error::Error for AccessError {}

/// An authenticated, tenant-scoped view of the platform. Every call
/// validates the session against the *target organization's* guard, so a
/// token stolen from tenant A is useless against tenant B.
pub struct SecureShmClient {
    client: ShmClient,
    org: String,
    token: SessionToken,
}

const WAIT: std::time::Duration = std::time::Duration::from_secs(10);

impl SecureShmClient {
    /// Authenticates against `org`'s guard; fails on bad credentials.
    pub fn login(
        client: ShmClient,
        org: &str,
        user: &str,
        secret: &str,
    ) -> Result<SecureShmClient, AccessError> {
        let guard = client
            .handle()
            .try_actor_ref::<TenantGuard>(org)
            .map_err(|e| AccessError::Platform(e.to_string()))?;
        let token = guard
            .ask(Authenticate {
                user: user.into(),
                secret: secret.into(),
            })
            .map_err(|e| AccessError::Platform(e.to_string()))?
            .wait_for(WAIT)
            .map_err(|e| AccessError::Platform(e.to_string()))?
            .ok_or(AccessError::InvalidToken)?;
        Ok(SecureShmClient {
            client,
            org: org.to_string(),
            token,
        })
    }

    /// The session token (for diagnostics).
    pub fn token(&self) -> SessionToken {
        self.token
    }

    fn authorize(&self, required: AccessLevel) -> Result<(), AccessError> {
        let guard = self
            .client
            .handle()
            .try_actor_ref::<TenantGuard>(self.org.as_str())
            .map_err(|e| AccessError::Platform(e.to_string()))?;
        let (_, held) = guard
            .ask(Validate(self.token))
            .map_err(|e| AccessError::Platform(e.to_string()))?
            .wait_for(WAIT)
            .map_err(|e| AccessError::Platform(e.to_string()))?
            .ok_or(AccessError::InvalidToken)?;
        if held < required {
            return Err(AccessError::Forbidden { required, held });
        }
        Ok(())
    }

    fn channel_in_tenant(&self, channel: &str) -> Result<(), AccessError> {
        // Channel keys embed the organization prefix (`org-1/s-3/c-0`), so
        // tenant scoping is a structural check, not a lookup.
        if channel.starts_with(&format!("{}/", self.org)) {
            Ok(())
        } else {
            Err(AccessError::InvalidToken)
        }
    }

    /// Live view of this tenant's channels (Viewer+).
    pub fn live_data(&self) -> Result<LiveDataReport, AccessError> {
        self.authorize(AccessLevel::Viewer)?;
        self.client
            .live_data(&self.org)
            .map_err(|e| AccessError::Platform(e.to_string()))?
            .wait_for(WAIT)
            .map_err(|e| AccessError::Platform(e.to_string()))
    }

    /// Raw time-range query on one of this tenant's channels (Operator+).
    pub fn raw_range(
        &self,
        channel: &str,
        from_ms: u64,
        to_ms: u64,
    ) -> Result<Vec<DataPoint>, AccessError> {
        self.authorize(AccessLevel::Operator)?;
        self.channel_in_tenant(channel)?;
        self.client
            .raw_range(channel, from_ms, to_ms, 0)
            .map_err(|e| AccessError::Platform(e.to_string()))?
            .wait_for(WAIT)
            .map_err(|e| AccessError::Platform(e.to_string()))
    }

    /// Recent alerts of this tenant (Operator+).
    pub fn recent_alerts(&self, limit: usize) -> Result<Vec<Alert>, AccessError> {
        self.authorize(AccessLevel::Operator)?;
        self.client
            .recent_alerts(&self.org, limit)
            .map_err(|e| AccessError::Platform(e.to_string()))?
            .wait_for(WAIT)
            .map_err(|e| AccessError::Platform(e.to_string()))
    }

    /// Logs the session out.
    pub fn logout(self) -> Result<bool, AccessError> {
        let guard = self
            .client
            .handle()
            .try_actor_ref::<TenantGuard>(self.org.as_str())
            .map_err(|e| AccessError::Platform(e.to_string()))?;
        guard
            .ask(Revoke(self.token))
            .map_err(|e| AccessError::Platform(e.to_string()))?
            .wait_for(WAIT)
            .map_err(|e| AccessError::Platform(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_levels_are_ordered() {
        assert!(AccessLevel::Viewer < AccessLevel::Operator);
        assert!(AccessLevel::Operator < AccessLevel::Admin);
    }

    #[test]
    fn roles_map_to_levels() {
        assert_eq!(AccessLevel::from(UserRole::Maintenance), AccessLevel::Admin);
        assert_eq!(AccessLevel::from(UserRole::Engineer), AccessLevel::Operator);
    }
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use crate::test_props::{assert_codec_roundtrip, key};
    use proptest::prelude::*;

    fn access_level() -> impl Strategy<Value = AccessLevel> {
        prop_oneof![
            Just(AccessLevel::Viewer),
            Just(AccessLevel::Operator),
            Just(AccessLevel::Admin),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any guard state survives the persistence codec unchanged —
        /// sessions keyed by u64 tokens included, so auth state (and the
        /// sessions it keeps alive) survives silo crashes.
        #[test]
        fn guard_state_roundtrips(
            users in proptest::collection::vec((key(), (key(), access_level())), 0..5),
            sessions in proptest::collection::vec((any::<u64>(), (key(), access_level())), 0..5),
            next_token in any::<u64>(),
        ) {
            assert_codec_roundtrip(&GuardState {
                users: users.into_iter().collect(),
                sessions: sessions.into_iter().collect(),
                next_token,
            });
        }
    }
}
