//! Shared construction environment for the SHM actor factories.

use std::sync::Arc;

use aodb_core::{Persisted, PersistentState, WritePolicy};
use aodb_runtime::ActorKey;
use aodb_store::tseries::{SeriesStore, TsConfig, TsStore};
use aodb_store::{StateStore, StoreResult, WalConfig};

/// Everything an SHM actor factory needs: the state store and the write
/// policies of the two durability classes the paper distinguishes in
/// Section 5 — structural entities (organizations, sensors, channel
/// configuration) want immediate durability, while sensor *data* collects
/// a window of updates before being forced to storage.
#[derive(Clone)]
pub struct ShmEnv {
    /// The grain-state store (the DynamoDB role).
    pub store: Arc<dyn StateStore>,
    /// Policy for structural entity state.
    pub structural_policy: WritePolicy,
    /// Policy for sensor data state (the paper's benchmark sets this to
    /// [`WritePolicy::OnDeactivate`]).
    pub data_policy: WritePolicy,
    /// Ring-buffer capacity of each channel's in-memory data window.
    pub window_capacity: usize,
    /// Simulated per-ingest service time.
    ///
    /// The reproduction's stand-in for server CPU capacity: the paper's
    /// silos run on m5 instances whose vCPUs bound ingest throughput at
    /// ~1,800 requests/s. On arbitrary (possibly single-core) reproduction
    /// hardware we model that budget by having the worker *sleep* this
    /// long inside each `Ingest` turn — occupying the worker exactly as
    /// CPU work would, without consuming host CPU, so multi-silo scaling
    /// behaves like the paper's cluster. `None` (the default) disables the
    /// simulation; the benchmark harness enables it.
    pub ingest_service_time: Option<std::time::Duration>,
    /// Columnar time-series engine for channel point streams. `None`
    /// (the paper-faithful default) keeps points inside the KV state
    /// blob; `Some` routes `Ingest` appends and range queries through
    /// the compressed [`SeriesStore`] instead, with the channel's dedup
    /// watermarks and running stats committing atomically alongside the
    /// points as series metadata.
    pub series: Option<Arc<dyn SeriesStore>>,
    /// When true, `Ingest` handlers hand their reply off to the series
    /// engine ([`SeriesStore::append_batch_async`]) instead of blocking
    /// the turn on durability — the ack then rides the engine's group
    /// commit and resolves on the WAL committer thread. Only set this
    /// when `series` is an engine that actually defers (a
    /// [`TsStore::with_wal`] instance); with the default synchronous
    /// engines it is harmless but pointless.
    pub deferred_acks: bool,
}

impl ShmEnv {
    /// The configuration used by the paper's experiments: immediate
    /// durability for structure, deactivation-time persistence for data,
    /// and an hour of 10 Hz data in the window.
    pub fn paper_default(store: Arc<dyn StateStore>) -> Self {
        ShmEnv {
            store,
            structural_policy: WritePolicy::EveryChange,
            data_policy: WritePolicy::OnDeactivate,
            window_capacity: 36_000,
            ingest_service_time: None,
            series: None,
            deferred_acks: false,
        }
    }

    /// [`ShmEnv::paper_default`] plus a [`TsStore`] columnar engine over
    /// the same backing store: point streams go to compressed sealed
    /// blocks, state blobs stay on the KV path.
    pub fn tseries_default(store: Arc<dyn StateStore>) -> Self {
        let series = Arc::new(TsStore::with_defaults(Arc::clone(&store)));
        ShmEnv::paper_default(store).with_series_store(series)
    }

    /// [`ShmEnv::tseries_default`] with the engine in group-commit mode
    /// (see [`TsStore::with_wal`]): appends write compact delta frames
    /// to a group-commit WAL at `wal_path`, ingest acks defer onto the
    /// committer thread, and one fsync covers every concurrently
    /// appending channel. Returns the engine alongside the env so the
    /// platform can wire checkpoints, metric mirroring, and
    /// deactivation-sweep sync barriers.
    pub fn tseries_wal_default(
        store: Arc<dyn StateStore>,
        wal_path: impl Into<std::path::PathBuf>,
        wal_config: WalConfig,
    ) -> StoreResult<(Self, Arc<TsStore>)> {
        let ts = Arc::new(TsStore::with_wal(
            Arc::clone(&store),
            TsConfig::default(),
            wal_path,
            wal_config,
        )?);
        let mut env = ShmEnv::paper_default(store).with_series_store(Arc::clone(&ts) as _);
        env.deferred_acks = true;
        Ok((env, ts))
    }

    /// Routes channel point streams through `series` (see
    /// [`ShmEnv::series`]).
    pub fn with_series_store(mut self, series: Arc<dyn SeriesStore>) -> Self {
        self.series = Some(series);
        self
    }

    /// Sets the simulated per-ingest service time (see
    /// [`ShmEnv::ingest_service_time`]).
    pub fn with_service_time(mut self, d: std::time::Duration) -> Self {
        self.ingest_service_time = Some(d);
        self
    }

    /// Persisted cell for a structural actor.
    pub fn persisted_structural<S: PersistentState>(
        &self,
        type_name: &str,
        key: &ActorKey,
    ) -> Persisted<S> {
        Persisted::for_actor(
            Arc::clone(&self.store),
            type_name,
            key,
            self.structural_policy,
        )
    }

    /// Persisted cell for a data-bearing actor.
    pub fn persisted_data<S: PersistentState>(
        &self,
        type_name: &str,
        key: &ActorKey,
    ) -> Persisted<S> {
        Persisted::for_actor(Arc::clone(&self.store), type_name, key, self.data_policy)
    }
}
