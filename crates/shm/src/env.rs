//! Shared construction environment for the SHM actor factories.

use std::sync::Arc;

use aodb_core::{Persisted, PersistentState, WritePolicy};
use aodb_runtime::ActorKey;
use aodb_store::tseries::{SeriesStore, TsStore};
use aodb_store::StateStore;

/// Everything an SHM actor factory needs: the state store and the write
/// policies of the two durability classes the paper distinguishes in
/// Section 5 — structural entities (organizations, sensors, channel
/// configuration) want immediate durability, while sensor *data* collects
/// a window of updates before being forced to storage.
#[derive(Clone)]
pub struct ShmEnv {
    /// The grain-state store (the DynamoDB role).
    pub store: Arc<dyn StateStore>,
    /// Policy for structural entity state.
    pub structural_policy: WritePolicy,
    /// Policy for sensor data state (the paper's benchmark sets this to
    /// [`WritePolicy::OnDeactivate`]).
    pub data_policy: WritePolicy,
    /// Ring-buffer capacity of each channel's in-memory data window.
    pub window_capacity: usize,
    /// Simulated per-ingest service time.
    ///
    /// The reproduction's stand-in for server CPU capacity: the paper's
    /// silos run on m5 instances whose vCPUs bound ingest throughput at
    /// ~1,800 requests/s. On arbitrary (possibly single-core) reproduction
    /// hardware we model that budget by having the worker *sleep* this
    /// long inside each `Ingest` turn — occupying the worker exactly as
    /// CPU work would, without consuming host CPU, so multi-silo scaling
    /// behaves like the paper's cluster. `None` (the default) disables the
    /// simulation; the benchmark harness enables it.
    pub ingest_service_time: Option<std::time::Duration>,
    /// Columnar time-series engine for channel point streams. `None`
    /// (the paper-faithful default) keeps points inside the KV state
    /// blob; `Some` routes `Ingest` appends and range queries through
    /// the compressed [`SeriesStore`] instead, with the channel's dedup
    /// watermarks and running stats committing atomically alongside the
    /// points as series metadata.
    pub series: Option<Arc<dyn SeriesStore>>,
}

impl ShmEnv {
    /// The configuration used by the paper's experiments: immediate
    /// durability for structure, deactivation-time persistence for data,
    /// and an hour of 10 Hz data in the window.
    pub fn paper_default(store: Arc<dyn StateStore>) -> Self {
        ShmEnv {
            store,
            structural_policy: WritePolicy::EveryChange,
            data_policy: WritePolicy::OnDeactivate,
            window_capacity: 36_000,
            ingest_service_time: None,
            series: None,
        }
    }

    /// [`ShmEnv::paper_default`] plus a [`TsStore`] columnar engine over
    /// the same backing store: point streams go to compressed sealed
    /// blocks, state blobs stay on the KV path.
    pub fn tseries_default(store: Arc<dyn StateStore>) -> Self {
        let series = Arc::new(TsStore::with_defaults(Arc::clone(&store)));
        ShmEnv::paper_default(store).with_series_store(series)
    }

    /// Routes channel point streams through `series` (see
    /// [`ShmEnv::series`]).
    pub fn with_series_store(mut self, series: Arc<dyn SeriesStore>) -> Self {
        self.series = Some(series);
        self
    }

    /// Sets the simulated per-ingest service time (see
    /// [`ShmEnv::ingest_service_time`]).
    pub fn with_service_time(mut self, d: std::time::Duration) -> Self {
        self.ingest_service_time = Some(d);
        self
    }

    /// Persisted cell for a structural actor.
    pub fn persisted_structural<S: PersistentState>(
        &self,
        type_name: &str,
        key: &ActorKey,
    ) -> Persisted<S> {
        Persisted::for_actor(
            Arc::clone(&self.store),
            type_name,
            key,
            self.structural_policy,
        )
    }

    /// Persisted cell for a data-bearing actor.
    pub fn persisted_data<S: PersistentState>(
        &self,
        type_name: &str,
        key: &ActorKey,
    ) -> Persisted<S> {
        Persisted::for_actor(Arc::clone(&self.store), type_name, key, self.data_policy)
    }
}
