//! Burst-absorbing ingest gateway.
//!
//! The paper's production sketch (§6.1): sensors reach the platform over
//! HTTP, and "message queues can be employed to accommodate for bursty
//! behavior in sensor measurements". The [`IngestGateway`] actor is that
//! queue: devices fire small packets at it; the gateway coalesces them
//! into batches per channel, forwards a batch when it reaches
//! `flush_batch` points, drains the remainder on a periodic flush tick,
//! and applies backpressure (explicit rejection) when its bounded buffer
//! is full — the overload contract a lossy sensor network expects.

use std::collections::BTreeMap;

use aodb_runtime::{Actor, ActorContext, Handler, Message};
use serde::{Deserialize, Serialize};

use crate::messages::Ingest;
use crate::physical::PhysicalSensorChannel;
use crate::types::DataPoint;

/// Gateway sizing.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GatewayConfig {
    /// Points per channel that trigger an immediate forward.
    pub flush_batch: usize,
    /// Total buffered points across all channels before rejections start.
    pub capacity_points: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            flush_batch: 10,
            capacity_points: 100_000,
        }
    }
}

/// Configures the gateway (idempotent).
pub struct ConfigureGateway(pub GatewayConfig);
impl Message for ConfigureGateway {
    type Reply = ();
}

/// A device packet entering through the gateway.
pub struct GatewayIngest {
    /// Target channel key.
    pub channel: String,
    /// The points (possibly a partial or bursty batch).
    pub points: Vec<DataPoint>,
}
impl Message for GatewayIngest {
    type Reply = GatewayAck;
}

/// Gateway's answer to a device packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GatewayAck {
    /// Buffered (and possibly already forwarded).
    Accepted,
    /// Buffer full: the device must back off and retry.
    Rejected,
}

/// Forces all buffered points out (also fired by the periodic flush
/// timer).
#[derive(Clone, Copy)]
pub struct FlushGateway;
impl Message for FlushGateway {
    type Reply = u32;
}

/// Buffer occupancy snapshot.
#[derive(Clone, Copy)]
pub struct GatewayStats;
impl Message for GatewayStats {
    type Reply = GatewayStatsReply;
}

/// Reply of [`GatewayStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatewayStatsReply {
    /// Points currently buffered.
    pub buffered_points: usize,
    /// Packets accepted since activation.
    pub accepted: u64,
    /// Packets rejected since activation.
    pub rejected: u64,
    /// Batches forwarded to channel actors.
    pub forwarded_batches: u64,
}

/// The gateway actor. Key it per tenant or per ingest endpoint.
///
/// Buffers are deliberately **not** persisted: a gateway models an
/// in-flight network queue, and its loss semantics on crash (drop the
/// un-forwarded tail) match a real message broker running without
/// replication, which is what the paper's burst buffer would be.
pub struct IngestGateway {
    config: GatewayConfig,
    buffers: BTreeMap<String, Vec<DataPoint>>,
    buffered_points: usize,
    accepted: u64,
    rejected: u64,
    forwarded_batches: u64,
}

impl IngestGateway {
    /// Registers the gateway actor type.
    pub fn register(rt: &aodb_runtime::Runtime) {
        rt.register(|_id| IngestGateway {
            config: GatewayConfig::default(),
            buffers: BTreeMap::new(),
            buffered_points: 0,
            accepted: 0,
            rejected: 0,
            forwarded_batches: 0,
        });
    }

    fn forward(&mut self, channel: &str, ctx: &mut ActorContext<'_>) {
        if let Some(points) = self.buffers.remove(channel) {
            if points.is_empty() {
                return;
            }
            self.buffered_points -= points.len();
            self.forwarded_batches += 1;
            let _ = ctx
                .actor_ref::<PhysicalSensorChannel>(channel)
                .tell(Ingest::new(points));
        }
    }
}

impl Actor for IngestGateway {
    const TYPE_NAME: &'static str = "shm.ingest-gateway";
    fn declared_calls() -> &'static [aodb_runtime::CallDecl] {
        // Buffered points are forwarded to the physical channel actors.
        const CALLS: &[aodb_runtime::CallDecl] = &[aodb_runtime::CallDecl::send("shm.channel")];
        CALLS
    }

    fn on_deactivate(&mut self, ctx: &mut ActorContext<'_>) {
        // Drain on orderly shutdown so nothing buffered is lost.
        let channels: Vec<String> = self.buffers.keys().cloned().collect();
        for channel in channels {
            self.forward(&channel, ctx);
        }
    }
}

impl Handler<ConfigureGateway> for IngestGateway {
    fn handle(&mut self, msg: ConfigureGateway, _ctx: &mut ActorContext<'_>) {
        self.config = msg.0;
    }
}

impl Handler<GatewayIngest> for IngestGateway {
    fn handle(&mut self, msg: GatewayIngest, ctx: &mut ActorContext<'_>) -> GatewayAck {
        if self.buffered_points + msg.points.len() > self.config.capacity_points {
            self.rejected += 1;
            return GatewayAck::Rejected;
        }
        self.buffered_points += msg.points.len();
        self.accepted += 1;
        let buffer = self.buffers.entry(msg.channel.clone()).or_default();
        buffer.extend(msg.points);
        if buffer.len() >= self.config.flush_batch {
            self.forward(&msg.channel, ctx);
        }
        GatewayAck::Accepted
    }
}

impl Handler<FlushGateway> for IngestGateway {
    fn handle(&mut self, _msg: FlushGateway, ctx: &mut ActorContext<'_>) -> u32 {
        let channels: Vec<String> = self.buffers.keys().cloned().collect();
        let mut flushed = 0u32;
        for channel in channels {
            flushed += self
                .buffers
                .get(&channel)
                .map(|b| b.len() as u32)
                .unwrap_or(0);
            self.forward(&channel, ctx);
        }
        flushed
    }
}

/// Durable-reminder support: a [`aodb_core::ReminderFired`] delivered to
/// the gateway acts as a flush tick, so the flush schedule itself can be
/// persisted (survives restarts) via `aodb_core::register_reminder`.
impl Handler<aodb_core::ReminderFired> for IngestGateway {
    fn handle(&mut self, _msg: aodb_core::ReminderFired, ctx: &mut ActorContext<'_>) {
        let channels: Vec<String> = self.buffers.keys().cloned().collect();
        for channel in channels {
            self.forward(&channel, ctx);
        }
    }
}

impl Handler<GatewayStats> for IngestGateway {
    fn handle(&mut self, _msg: GatewayStats, _ctx: &mut ActorContext<'_>) -> GatewayStatsReply {
        GatewayStatsReply {
            buffered_points: self.buffered_points,
            accepted: self.accepted,
            rejected: self.rejected,
            forwarded_batches: self.forwarded_batches,
        }
    }
}
