//! # aodb-shm — the Structural Health Monitoring data platform
//!
//! Case study 1 of the EDBT 2019 paper, and the system its evaluation
//! measures: an IoT data platform for bridge monitoring built as an
//! actor-oriented database following the model of Figure 4.
//!
//! ## Actor model (Figure 4)
//!
//! | Actor | Role | Non-actor objects it encapsulates |
//! |---|---|---|
//! | [`Organization`] | Tenant; structural registry; live-data fan-out | `Project`, `User` |
//! | [`Sensor`] | Relocatable device metadata | position |
//! | [`PhysicalSensorChannel`] | One raw data stream: window, accumulated change, thresholds | `DataPoint`s |
//! | [`VirtualSensorChannel`] | Equation over physical channels | derived `DataPoint`s |
//! | [`Aggregator`] | Hour→day→month statistical cascade | `Aggregate` buckets |
//! | [`AlertLog`] | Per-tenant alert feed | `Alert`s |
//! | [`TenantGuard`] | Per-tenant authentication & authorization (NFR 7) | users, sessions |
//! | [`IngestGateway`] | Burst-absorbing device queue (§6.1) | buffered packets |
//!
//! The [`warehouse`] module exports online aggregates into a star schema
//! for historical analytics — the third component of the paper's
//! architecture (§5).
//!
//! ## Quick use
//!
//! ```
//! use std::sync::Arc;
//! use aodb_runtime::Runtime;
//! use aodb_store::MemStore;
//! use aodb_shm::{register_all, provision, ShmClient, ShmEnv, Topology, TopologySpec};
//! use aodb_shm::types::DataPoint;
//!
//! let rt = Runtime::single(2);
//! register_all(&rt, ShmEnv::paper_default(Arc::new(MemStore::new())));
//! let topology = Topology::layout(10, TopologySpec::default());
//! provision(&rt, &topology, |_org| None).unwrap();
//!
//! let client = ShmClient::new(rt.handle());
//! let channel = topology.physical_channels().next().unwrap();
//! client
//!     .ingest(channel, vec![DataPoint { ts_ms: 0, value: 1.5 }])
//!     .unwrap()
//!     .wait()
//!     .unwrap();
//! rt.shutdown();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod aggregator;
mod alerts;
pub mod auth;
mod env;
pub mod gateway;
pub mod messages;
mod organization;
mod physical;
mod platform;
mod sensor;
mod sidecar;
#[cfg(test)]
pub(crate) mod test_props;
pub mod types;
mod virtual_channel;
pub mod warehouse;

pub use aggregator::{aggregator_key, parse_aggregator_key, Aggregator};
pub use alerts::AlertLog;
pub use auth::{AccessError, AccessLevel, SecureShmClient, SessionToken, TenantGuard};
pub use env::ShmEnv;
pub use gateway::IngestGateway;
pub use organization::Organization;
pub use physical::PhysicalSensorChannel;
pub use platform::{
    provision, register_all, OrgTopology, SensorTopology, ShmClient, Topology, TopologySpec,
};
pub use sensor::Sensor;
pub use virtual_channel::VirtualSensorChannel;
pub use warehouse::{WarehouseExporter, WarehouseReader};

/// The static call topology of every SHM actor type: one row per actor,
/// with the outbound edges from [`aodb_runtime::Actor::declared_calls`].
/// Input to the `aodb-analysis` call-graph extraction.
pub fn call_topology() -> Vec<aodb_runtime::ActorTopology> {
    use aodb_runtime::ActorTopology;
    vec![
        ActorTopology::of::<Sensor>(),
        ActorTopology::of::<IngestGateway>(),
        ActorTopology::of::<PhysicalSensorChannel>(),
        ActorTopology::of::<VirtualSensorChannel>(),
        ActorTopology::of::<Aggregator>(),
        ActorTopology::of::<Organization>(),
        ActorTopology::of::<AlertLog>(),
        ActorTopology::of::<TenantGuard>(),
    ]
}
