//! Message vocabulary of the SHM platform.

use aodb_runtime::{Message, ReplyTo};
use serde::{Deserialize, Serialize};

use crate::types::{
    Aggregate, Alert, DataPoint, Equation, PointBatch, Position, Project, SensorKind, Threshold,
    User, UserRole,
};

// ------------------------------------------------------------ organization

/// Initializes an organization tenant.
pub struct InitOrg {
    /// Display name.
    pub name: String,
}
impl Message for InitOrg {
    type Reply = ();
}

/// Adds a user to the organization; replies with the user id.
pub struct AddUser {
    /// Display name.
    pub name: String,
    /// Role.
    pub role: UserRole,
}
impl Message for AddUser {
    type Reply = u32;
}

/// Adds a monitoring project; replies with the project id.
pub struct AddProject {
    /// Project name.
    pub name: String,
    /// Monitored structure.
    pub structure: String,
}
impl Message for AddProject {
    type Reply = u32;
}

/// Registers a sensor under this organization.
pub struct RegisterSensor {
    /// Sensor actor key.
    pub sensor: String,
}
impl Message for RegisterSensor {
    type Reply = ();
}

/// Registers a (physical or virtual) channel for live-data fan-out.
pub struct RegisterChannel {
    /// Channel actor key.
    pub channel: String,
    /// Whether the channel is virtual.
    pub virtual_channel: bool,
}
impl Message for RegisterChannel {
    type Reply = ();
}

/// Live view over all of the organization's channels (functional
/// requirement 7; the paper's "live data request" in Figure 9).
///
/// The reply is produced by scatter/gather over the channels, so it cannot
/// be returned synchronously from the handler: the reply sink travels in
/// the message. Use [`crate::ShmClient::live_data`] for the ergonomic form.
pub struct GetLiveData {
    /// Where the gathered report goes.
    pub reply: ReplyTo<LiveDataReport>,
}
impl Message for GetLiveData {
    type Reply = ();
}

/// Result of [`GetLiveData`]: the most recent point of every channel.
#[derive(Clone, Debug, Default)]
pub struct LiveDataReport {
    /// `(channel key, latest point if any)`, unordered.
    pub channels: Vec<(String, Option<DataPoint>)>,
}

/// Structural snapshot of an organization.
pub struct GetOrgInfo;
impl Message for GetOrgInfo {
    type Reply = OrgInfo;
}

/// Reply of [`GetOrgInfo`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OrgInfo {
    /// Display name.
    pub name: String,
    /// Users (non-actor objects owned by the org).
    pub users: Vec<User>,
    /// Projects (non-actor objects owned by the org).
    pub projects: Vec<Project>,
    /// Registered sensor keys.
    pub sensors: Vec<String>,
    /// Registered channel keys (physical and virtual).
    pub channels: Vec<String>,
}

// ------------------------------------------------------------------ sensor

/// Initializes a sensor actor.
pub struct InitSensor {
    /// Owning organization key.
    pub org: String,
    /// What it measures.
    pub kind: SensorKind,
    /// Mounting position.
    pub position: Position,
}
impl Message for InitSensor {
    type Reply = ();
}

/// Attaches a channel to the sensor.
pub struct AttachChannel {
    /// Channel actor key.
    pub channel: String,
}
impl Message for AttachChannel {
    type Reply = ();
}

/// Relocates the sensor (sensors are active entities: they move).
pub struct UpdatePosition(pub Position);
impl Message for UpdatePosition {
    type Reply = ();
}

/// Sensor metadata snapshot.
pub struct GetSensorInfo;
impl Message for GetSensorInfo {
    type Reply = SensorInfo;
}

/// Reply of [`GetSensorInfo`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SensorInfo {
    /// Owning organization key.
    pub org: String,
    /// Measured quantity.
    pub kind: SensorKind,
    /// Current position.
    pub position: Position,
    /// Attached channel keys.
    pub channels: Vec<String>,
}

// ---------------------------------------------------------------- channels

/// Configures a physical channel (idempotent; provisioning).
pub struct ConfigureChannel {
    /// Owning organization key (alert routing).
    pub org: String,
    /// Owning sensor key.
    pub sensor: String,
    /// Threshold rules.
    pub threshold: Threshold,
    /// Virtual channels subscribed to this channel's stream.
    pub subscribers: Vec<String>,
    /// Whether to feed the hourly aggregator cascade.
    pub aggregates: bool,
}
impl Message for ConfigureChannel {
    type Reply = ();
}

/// Configures a virtual channel.
pub struct ConfigureVirtual {
    /// Owning organization key.
    pub org: String,
    /// Input (physical) channel keys, in equation order.
    pub inputs: Vec<String>,
    /// The derivation.
    pub equation: Equation,
    /// Whether to feed the aggregator cascade.
    pub aggregates: bool,
}
impl Message for ConfigureVirtual {
    type Reply = ();
}

/// Sensor data insertion: the workload that dominates the paper's
/// benchmark (98 % of requests; 10 points per channel per request).
///
/// `Clone` so the batch can travel over an at-least-once boundary
/// (`tell_replayable` / `ask_replayable`); pair it with a [`dedup`]
/// token so redelivered copies are dropped instead of double-counted.
///
/// [`dedup`]: Ingest::dedup
#[derive(Clone)]
pub struct Ingest {
    /// The new points, oldest first. A [`PointBatch`] so replay copies
    /// and downstream fan-out share one allocation.
    pub points: PointBatch,
    /// Optional idempotence token `(source, seq)`. The channel keeps a
    /// per-source high-watermark of the largest `seq` applied and
    /// ignores batches at or below it, so duplicate delivery (network
    /// chaos, client retry after a silo crash) applies each batch once.
    ///
    /// The watermark is TCP-style: a source must send its sequence
    /// numbers in order and **retransmit an unacknowledged `seq` until
    /// it is acked before moving to `seq + 1`** — skipping ahead over a
    /// lost batch would leave a gap the watermark then (by design)
    /// refuses to fill.
    pub dedup: Option<(u64, u64)>,
}

impl Ingest {
    /// A plain batch with no idempotence token (at-most-once delivery).
    pub fn new(points: impl Into<PointBatch>) -> Self {
        Ingest {
            points: points.into(),
            dedup: None,
        }
    }

    /// A batch tagged `(source, seq)` for duplicate-safe redelivery.
    pub fn deduped(points: impl Into<PointBatch>, source: u64, seq: u64) -> Self {
        Ingest {
            points: points.into(),
            dedup: Some((source, seq)),
        }
    }
}

impl Message for Ingest {
    type Reply = u32; // number of points accepted
}

/// Derived-stream push from a physical channel to a subscribed virtual
/// channel.
pub struct PushDerived {
    /// The source physical channel.
    pub source: String,
    /// Its new points (shared with the originating ingest batch).
    pub points: PointBatch,
}
impl Message for PushDerived {
    type Reply = ();
}

/// Most recent data point of a channel (live-data building block).
#[derive(Clone, Copy)]
pub struct GetLatest;
impl Message for GetLatest {
    type Reply = Option<DataPoint>;
}

/// Raw time-range query over a channel's in-memory window (the paper's
/// "raw data request" in Figure 8).
#[derive(Clone, Copy)]
pub struct QueryRange {
    /// Inclusive start (ms).
    pub from_ms: u64,
    /// Inclusive end (ms).
    pub to_ms: u64,
    /// Max points returned (0 = unlimited).
    pub limit: usize,
}
impl Message for QueryRange {
    type Reply = Vec<DataPoint>;
}

/// Channel statistics (accumulated change — functional requirement 4).
#[derive(Clone, Copy)]
pub struct GetChannelStats;
impl Message for GetChannelStats {
    type Reply = ChannelStats;
}

/// Reply of [`GetChannelStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Points ever ingested.
    pub total_points: u64,
    /// Points currently held in the window.
    pub window_len: usize,
    /// Sum of |Δvalue| over consecutive points (how far the element has
    /// moved in total).
    pub accumulated_change: f64,
    /// Last value minus first-ever value.
    pub net_change: f64,
    /// Most recent point.
    pub last: Option<DataPoint>,
}

// -------------------------------------------------------------- aggregator

/// A batch of samples entering the hourly aggregator (channels forward
/// whole ingest batches to keep messaging overhead at one hop per
/// request, not per point).
pub struct RecordSamples {
    /// The samples, oldest first (shared with the originating batch).
    pub points: PointBatch,
}
impl Message for RecordSamples {
    type Reply = ();
}

/// A closed child bucket rolled up into this (coarser) aggregator.
pub struct MergeBucket {
    /// Start of the bucket in *this* aggregator's granularity.
    pub bucket_start_ms: u64,
    /// The child summary.
    pub agg: Aggregate,
}
impl Message for MergeBucket {
    type Reply = ();
}

/// Statistical buckets in a time range (plot data, functional
/// requirement 6).
#[derive(Clone, Copy)]
pub struct QueryAggregates {
    /// Inclusive start (ms).
    pub from_ms: u64,
    /// Inclusive end (ms).
    pub to_ms: u64,
}
impl Message for QueryAggregates {
    type Reply = Vec<(u64, Aggregate)>;
}

// --------------------------------------------------------------- alert log

/// A channel raising an alert into its organization's log.
pub struct PushAlert(pub Alert);
impl Message for PushAlert {
    type Reply = ();
}

/// Recent alerts, newest first.
pub struct RecentAlerts {
    /// Max alerts returned.
    pub limit: usize,
}
impl Message for RecentAlerts {
    type Reply = Vec<Alert>;
}

/// Total alerts ever logged.
pub struct CountAlerts;
impl Message for CountAlerts {
    type Reply = u64;
}
