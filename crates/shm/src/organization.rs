//! The `Organization` actor: a tenant of the multi-tenant platform.
//!
//! Per the paper's granularity principle (Section 4.2), organizations are
//! actors while their projects and users are *non-actor objects*
//! encapsulated in organization state — projects are passive structural
//! schemes, so separate actors would only add messaging overhead.

use aodb_runtime::{Actor, ActorContext, Collector, Handler};
use serde::{Deserialize, Serialize};

use crate::env::ShmEnv;
use crate::messages::{
    AddProject, AddUser, GetLatest, GetLiveData, GetOrgInfo, InitOrg, LiveDataReport, OrgInfo,
    RegisterChannel, RegisterSensor,
};
use crate::physical::PhysicalSensorChannel;
use crate::types::{Project, User};
use crate::virtual_channel::VirtualSensorChannel;
use aodb_core::Persisted;

#[derive(Default, Serialize, Deserialize)]
pub(crate) struct OrgState {
    name: String,
    users: Vec<User>,
    projects: Vec<Project>,
    sensors: Vec<String>,
    /// `(channel key, is_virtual)` — virtuality decides which actor type
    /// the live-data fan-out addresses.
    channels: Vec<(String, bool)>,
}

/// The organization (tenant) actor.
pub struct Organization {
    state: Persisted<OrgState>,
}

impl Organization {
    /// Registers the actor type.
    pub fn register(rt: &aodb_runtime::Runtime, env: ShmEnv) {
        rt.register(move |id| Organization {
            state: env.persisted_structural(Self::TYPE_NAME, &id.key),
        });
    }
}

impl Actor for Organization {
    const TYPE_NAME: &'static str = "shm.organization";
    fn declared_calls() -> &'static [aodb_runtime::CallDecl] {
        // Live-data fan-out over the org's channels (collector slots, so
        // the turn never blocks).
        const CALLS: &[aodb_runtime::CallDecl] = &[
            aodb_runtime::CallDecl::send("shm.virtual-channel"),
            aodb_runtime::CallDecl::send("shm.channel"),
        ];
        CALLS
    }

    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.load_or_default();
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.flush();
    }
}

impl Handler<InitOrg> for Organization {
    fn handle(&mut self, msg: InitOrg, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| s.name = msg.name);
    }
}

impl Handler<AddUser> for Organization {
    fn handle(&mut self, msg: AddUser, _ctx: &mut ActorContext<'_>) -> u32 {
        self.state.mutate(|s| {
            let id = s.users.len() as u32;
            s.users.push(User {
                id,
                name: msg.name,
                role: msg.role,
            });
            id
        })
    }
}

impl Handler<AddProject> for Organization {
    fn handle(&mut self, msg: AddProject, _ctx: &mut ActorContext<'_>) -> u32 {
        self.state.mutate(|s| {
            let id = s.projects.len() as u32;
            s.projects.push(Project {
                id,
                name: msg.name,
                structure: msg.structure,
            });
            id
        })
    }
}

impl Handler<RegisterSensor> for Organization {
    fn handle(&mut self, msg: RegisterSensor, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| {
            if !s.sensors.contains(&msg.sensor) {
                s.sensors.push(msg.sensor);
            }
        });
    }
}

impl Handler<RegisterChannel> for Organization {
    fn handle(&mut self, msg: RegisterChannel, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| {
            if !s.channels.iter().any(|(c, _)| c == &msg.channel) {
                s.channels.push((msg.channel, msg.virtual_channel));
            }
        });
    }
}

impl Handler<GetLiveData> for Organization {
    /// The paper's "live data request": most recent values from **all**
    /// sensor channels of the organization. Implemented as a non-blocking
    /// scatter/gather — the organization's turn ends immediately; the
    /// collector assembles the report as channel replies arrive and
    /// resolves the caller's promise from whichever worker thread delivers
    /// the last one.
    fn handle(&mut self, msg: GetLiveData, ctx: &mut ActorContext<'_>) {
        let channels = &self.state.get().channels;
        let keys: Vec<String> = channels.iter().map(|(c, _)| c.clone()).collect();
        let collector = Collector::new(
            channels.len(),
            move |hits: Vec<(usize, Option<crate::types::DataPoint>)>| {
                let mut report = LiveDataReport {
                    channels: Vec::with_capacity(hits.len()),
                };
                for (idx, point) in hits {
                    report.channels.push((keys[idx].clone(), point));
                }
                msg.reply.deliver(report);
            },
        );
        for (idx, (channel, is_virtual)) in channels.iter().enumerate() {
            let slot = collector.slot();
            let tagged = aodb_runtime::ReplyTo::Callback(Box::new(move |point| {
                slot.deliver((idx, point));
            }));
            let sent = if *is_virtual {
                ctx.actor_ref::<VirtualSensorChannel>(channel.as_str())
                    .ask_with(GetLatest, tagged)
            } else {
                ctx.actor_ref::<PhysicalSensorChannel>(channel.as_str())
                    .ask_with(GetLatest, tagged)
            };
            if sent.is_err() {
                // Shutdown race: the collector slot for this channel was
                // consumed by the tagged callback, which is now dropped —
                // the overall reply resolves as Lost, which is correct.
            }
        }
    }
}

impl Handler<GetOrgInfo> for Organization {
    fn handle(&mut self, _msg: GetOrgInfo, _ctx: &mut ActorContext<'_>) -> OrgInfo {
        let s = self.state.get();
        OrgInfo {
            name: s.name.clone(),
            users: s.users.clone(),
            projects: s.projects.clone(),
            sensors: s.sensors.clone(),
            channels: s.channels.iter().map(|(c, _)| c.clone()).collect(),
        }
    }
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use crate::test_props::{assert_codec_roundtrip, key, project, user};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any organization state survives the persistence codec unchanged.
        #[test]
        fn org_state_roundtrips(
            name in key(),
            users in proptest::collection::vec(user(), 0..5),
            projects in proptest::collection::vec(project(), 0..5),
            sensors in proptest::collection::vec(key(), 0..5),
            channels in proptest::collection::vec((key(), any::<bool>()), 0..5),
        ) {
            assert_codec_roundtrip(&OrgState { name, users, projects, sensors, channels });
        }
    }
}
