//! The `PhysicalSensorChannel` actor: one data stream from one physical
//! sensor channel.
//!
//! This is the hot actor of the whole platform — the paper's benchmark
//! drives 10 data points per second into each of ~thousands of these. A
//! channel holds a bounded in-memory window of recent points (the
//! "programmable cache" role of the AODB), maintains the accumulated
//! change required by functional requirement 4, raises threshold alerts
//! (FR 5), feeds subscribed virtual channels, and forwards batches to its
//! hourly aggregator.

use std::collections::VecDeque;
use std::sync::Arc;

use aodb_runtime::{Actor, ActorContext, Handler};
use aodb_store::tseries::SeriesStore;
use serde::{Deserialize, Serialize};

use crate::aggregator::{aggregator_key, Aggregator};
use crate::alerts::AlertLog;
use crate::env::ShmEnv;
use crate::messages::{
    ChannelStats, ConfigureChannel, GetChannelStats, GetLatest, Ingest, PushAlert, PushDerived,
    QueryRange, RecordSamples,
};
use crate::sidecar;
use crate::types::{AggregateLevel, Alert, AlertKind, AlertSeverity, DataPoint, Threshold};
use crate::virtual_channel::VirtualSensorChannel;
use aodb_core::Persisted;

#[derive(Default, Serialize, Deserialize)]
pub(crate) struct ChannelState {
    org: String,
    sensor: String,
    threshold: Threshold,
    subscribers: Vec<String>,
    aggregates: bool,
    window: VecDeque<DataPoint>,
    total_points: u64,
    accumulated_change: f64,
    first_value: Option<f64>,
    last: Option<DataPoint>,
    /// Hysteresis flags so a sustained breach raises one alert, not one
    /// per sample.
    breaching_high: bool,
    breaching_low: bool,
    accumulated_alerted: bool,
    /// Per-source ingest high-watermarks `(source, max seq applied)`.
    /// A `Vec` of pairs rather than a map: serde_json requires string
    /// map keys, and the set of sources per channel is small.
    #[serde(default)]
    ingest_watermarks: Vec<(u64, u64)>,
}

impl ChannelState {
    /// Returns `true` (and advances the watermark) when the token is
    /// fresh; `false` when the batch is a duplicate redelivery.
    pub(crate) fn admit_dedup(&mut self, source: u64, seq: u64) -> bool {
        match self
            .ingest_watermarks
            .iter_mut()
            .find(|(src, _)| *src == source)
        {
            Some((_, mark)) if seq <= *mark => false,
            Some((_, mark)) => {
                *mark = seq;
                true
            }
            None => {
                self.ingest_watermarks.push((source, seq));
                true
            }
        }
    }
}

/// The channel's data-plane fields, shipped as series metadata on the
/// columnar path so they commit in the same durable write as the points
/// they describe (the dedup watermarks in particular: a watermark must
/// never be durable without its points, or ahead of them).
#[derive(Default, Serialize, Deserialize)]
pub(crate) struct ChannelSideCar {
    total_points: u64,
    accumulated_change: f64,
    first_value: Option<f64>,
    last: Option<DataPoint>,
    breaching_high: bool,
    breaching_low: bool,
    accumulated_alerted: bool,
    ingest_watermarks: Vec<(u64, u64)>,
}

impl ChannelSideCar {
    /// Compact fixed-layout encoding (the side-car rides every columnar
    /// append, so this sits on the ingest hot path — see `sidecar.rs`).
    fn encode(&self) -> Vec<u8> {
        let mut w = sidecar::Writer::new();
        w.u64(self.total_points);
        w.f64(self.accumulated_change);
        w.opt_f64(self.first_value);
        w.opt_point(self.last);
        w.bool(self.breaching_high);
        w.bool(self.breaching_low);
        w.bool(self.accumulated_alerted);
        w.pairs(&self.ingest_watermarks);
        w.finish()
    }

    fn decode(bytes: &[u8]) -> Result<Self, sidecar::SideCarDecodeError> {
        let mut r = sidecar::Reader::new(bytes)?;
        Ok(ChannelSideCar {
            total_points: r.u64()?,
            accumulated_change: r.f64()?,
            first_value: r.opt_f64()?,
            last: r.opt_point()?,
            breaching_high: r.bool()?,
            breaching_low: r.bool()?,
            accumulated_alerted: r.bool()?,
            ingest_watermarks: r.pairs()?,
        })
    }

    fn capture(s: &ChannelState) -> Self {
        ChannelSideCar {
            total_points: s.total_points,
            accumulated_change: s.accumulated_change,
            first_value: s.first_value,
            last: s.last,
            breaching_high: s.breaching_high,
            breaching_low: s.breaching_low,
            accumulated_alerted: s.accumulated_alerted,
            ingest_watermarks: s.ingest_watermarks.clone(),
        }
    }

    fn apply(self, s: &mut ChannelState) {
        s.total_points = self.total_points;
        s.accumulated_change = self.accumulated_change;
        s.first_value = self.first_value;
        s.last = self.last;
        s.breaching_high = self.breaching_high;
        s.breaching_low = self.breaching_low;
        s.accumulated_alerted = self.accumulated_alerted;
        s.ingest_watermarks = self.ingest_watermarks;
    }
}

/// Series name of a channel's point stream: type-prefixed so physical
/// and virtual channels with the same key stay isolated.
pub(crate) fn channel_series_key(type_name: &str, channel_key: &str) -> String {
    format!("{type_name}/{channel_key}")
}

/// The physical sensor channel actor.
pub struct PhysicalSensorChannel {
    state: Persisted<ChannelState>,
    window_capacity: usize,
    service_time: Option<std::time::Duration>,
    /// Columnar point-stream engine; `None` = KV-blob mode.
    series: Option<Arc<dyn SeriesStore>>,
    /// Hand ingest acks to the series engine's group commit instead of
    /// blocking the turn on durability (see `ShmEnv::deferred_acks`).
    deferred_acks: bool,
}

impl PhysicalSensorChannel {
    /// Registers the actor type.
    pub fn register(rt: &aodb_runtime::Runtime, env: ShmEnv) {
        rt.register(move |id| PhysicalSensorChannel {
            state: env.persisted_data(Self::TYPE_NAME, &id.key),
            window_capacity: env.window_capacity,
            service_time: env.ingest_service_time,
            series: env.series.clone(),
            deferred_acks: env.deferred_acks,
        });
    }

    /// Shared ingest/alert logic, also used by virtual channels.
    pub(crate) fn apply_points(
        state: &mut ChannelState,
        points: &[DataPoint],
        window_capacity: usize,
        alerts: &mut Vec<Alert>,
        channel_key: &str,
    ) -> u32 {
        let mut accepted = 0u32;
        for p in points {
            if let Some(last) = state.last {
                state.accumulated_change += (p.value - last.value).abs();
            } else {
                state.first_value = Some(p.value);
            }
            state.last = Some(*p);
            // Capacity 0 = no window at all (the columnar path serves
            // range queries from the series store instead).
            if window_capacity > 0 {
                state.window.push_back(*p);
                if state.window.len() > window_capacity {
                    state.window.pop_front();
                }
            }
            state.total_points += 1;
            accepted += 1;
            check_thresholds(state, *p, alerts, channel_key);
        }
        accepted
    }
}

fn check_thresholds(
    state: &mut ChannelState,
    p: DataPoint,
    alerts: &mut Vec<Alert>,
    channel_key: &str,
) {
    let th = state.threshold;
    if let Some(high) = th.high {
        let breaching = p.value > high;
        if breaching && !state.breaching_high {
            alerts.push(Alert {
                channel: channel_key.to_string(),
                ts_ms: p.ts_ms,
                value: p.value,
                kind: AlertKind::AboveHigh,
                severity: AlertSeverity::Critical,
            });
        }
        state.breaching_high = breaching;
    }
    if let Some(low) = th.low {
        let breaching = p.value < low;
        if breaching && !state.breaching_low {
            alerts.push(Alert {
                channel: channel_key.to_string(),
                ts_ms: p.ts_ms,
                value: p.value,
                kind: AlertKind::BelowLow,
                severity: AlertSeverity::Critical,
            });
        }
        state.breaching_low = breaching;
    }
    if let Some(limit) = th.max_accumulated_change {
        if state.accumulated_change > limit && !state.accumulated_alerted {
            alerts.push(Alert {
                channel: channel_key.to_string(),
                ts_ms: p.ts_ms,
                value: state.accumulated_change,
                kind: AlertKind::AccumulatedChange,
                severity: AlertSeverity::Warning,
            });
            state.accumulated_alerted = true;
        }
    }
}

/// Shared window query, also used by virtual channels.
pub(crate) fn query_window(window: &VecDeque<DataPoint>, q: QueryRange) -> Vec<DataPoint> {
    // Windows are (quasi-)sorted by timestamp because devices stream
    // monotonically; binary search the slices for the range bounds.
    let (a, b) = window.as_slices();
    let mut out = Vec::new();
    for slice in [a, b] {
        let start = slice.partition_point(|p| p.ts_ms < q.from_ms);
        for p in &slice[start..] {
            if p.ts_ms > q.to_ms {
                break;
            }
            out.push(*p);
            if q.limit != 0 && out.len() >= q.limit {
                return out;
            }
        }
    }
    out
}

impl Actor for PhysicalSensorChannel {
    const TYPE_NAME: &'static str = "shm.channel";
    fn declared_calls() -> &'static [aodb_runtime::CallDecl] {
        // Ingest side effects: raised alerts, derived-channel pushes, and
        // the aggregate pyramid.
        const CALLS: &[aodb_runtime::CallDecl] = &[
            aodb_runtime::CallDecl::send("shm.alert-log"),
            aodb_runtime::CallDecl::send("shm.virtual-channel"),
            aodb_runtime::CallDecl::send("shm.aggregator"),
        ];
        CALLS
    }

    fn on_activate(&mut self, ctx: &mut ActorContext<'_>) {
        self.state.load_or_default();
        if let Some(series) = &self.series {
            // The series store is authoritative for data-plane fields on
            // the columnar path: overlay the committed sidecar (stats +
            // dedup watermarks) over whatever the KV blob held.
            let key = channel_series_key(Self::TYPE_NAME, &ctx.key().to_string());
            if let Ok(rec) = series.recover(&key) {
                // Empty meta means the series committed *nothing* — but
                // the KV blob may still hold data-plane fields from a
                // turn whose append never became durable (a WAL group
                // wiped by a crash), so the overlay must reset them or
                // the stale watermark would falsely reject the
                // retransmitted batch forever.
                let overlay = if rec.meta.is_empty() {
                    Some(ChannelSideCar::default())
                } else {
                    ChannelSideCar::decode(&rec.meta).ok()
                };
                if let Some(sidecar) = overlay {
                    sidecar.apply(self.state.get_mut_untracked());
                }
            }
        }
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.flush();
    }
}

impl Handler<ConfigureChannel> for PhysicalSensorChannel {
    fn handle(&mut self, msg: ConfigureChannel, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| {
            s.org = msg.org;
            s.sensor = msg.sensor;
            s.threshold = msg.threshold;
            s.subscribers = msg.subscribers;
            s.aggregates = msg.aggregates;
        });
    }
}

impl Handler<Ingest> for PhysicalSensorChannel {
    fn handle(&mut self, msg: Ingest, ctx: &mut ActorContext<'_>) -> u32 {
        if let Some((source, seq)) = msg.dedup {
            let stale = self
                .state
                .get()
                .ingest_watermarks
                .iter()
                .any(|(src, mark)| *src == source && seq <= *mark);
            if stale {
                // Duplicate redelivery: drop it before the state mutation
                // *and* before the downstream fan-out, so subscribers and
                // aggregators see each batch exactly once too.
                if self.deferred_acks {
                    // A duplicate-reject ack asserts "this batch is
                    // already durable" — under group commit the original
                    // append may still be in flight, so the reject must
                    // queue *behind* it and resolve only at the current
                    // durability horizon. A barrier failure (e.g. dead
                    // WAL) aborts instead: the safe direction is a
                    // retransmit, never a false duplicate ack.
                    if let (Some(reply), Some(series)) = (ctx.defer_reply::<u32>(), &self.series) {
                        series.barrier_async(Box::new(move |result| match result {
                            Ok(_) => reply.deliver(0),
                            Err(_) => reply.abort(aodb_runtime::PromiseError::Lost),
                        }));
                    }
                }
                return 0;
            }
        }
        if let Some(service) = self.service_time {
            // Simulated server CPU cost of one ingest request (see
            // `ShmEnv::ingest_service_time`).
            std::thread::sleep(service);
        }
        let channel_key = ctx.key().to_string();
        let capacity = self.window_capacity;
        let mut alerts = Vec::new();
        let accepted = if let Some(series) = &self.series {
            // Columnar path: stats and watermarks mutate in memory only;
            // the single durable write is the series append, whose tail
            // record commits the compressed points and the sidecar
            // (watermarks + stats) atomically.
            let s = self.state.get_mut_untracked();
            if let Some((source, seq)) = msg.dedup {
                s.admit_dedup(source, seq);
            }
            let accepted = Self::apply_points(s, &msg.points, 0, &mut alerts, &channel_key);
            let meta = ChannelSideCar::capture(s).encode();
            let points: Vec<(u64, f64)> = msg.points.iter().map(|p| (p.ts_ms, p.value)).collect();
            // A failed append mirrors `Persisted`'s failed-save stance:
            // absorbed, with the points held in the in-memory tail until
            // the next committed tail record carries them.
            let series_key = channel_series_key(Self::TYPE_NAME, &channel_key);
            if self.deferred_acks {
                // Group-commit path: hand the reply to the engine so the
                // ack resolves when the append's WAL group fsyncs —
                // acked ⇒ durable, without parking this worker on the
                // fsync. An append error drops the sink (caller sees
                // the turn abort, not a false ack).
                let ack = ctx.defer_reply::<u32>();
                series.append_batch_async(
                    &series_key,
                    &points,
                    &meta,
                    Box::new(move |result| {
                        if let Some(reply) = ack {
                            match result {
                                Ok(_) => reply.deliver(accepted),
                                Err(_) => reply.abort(aodb_runtime::PromiseError::Lost),
                            }
                        }
                    }),
                );
            } else {
                let _ = series.append_batch(&series_key, &points, &meta);
            }
            accepted
        } else {
            self.state.mutate(|s| {
                if let Some((source, seq)) = msg.dedup {
                    // Advance the watermark in the same mutation (and
                    // hence the same durable write) as the points it
                    // admits.
                    s.admit_dedup(source, seq);
                }
                Self::apply_points(s, &msg.points, capacity, &mut alerts, &channel_key)
            })
        };

        let s = self.state.get();
        if !alerts.is_empty() {
            let log = ctx.actor_ref::<AlertLog>(s.org.as_str());
            for alert in alerts {
                let _ = log.tell(PushAlert(alert));
            }
        }
        for subscriber in &s.subscribers {
            let _ = ctx
                .actor_ref::<VirtualSensorChannel>(subscriber.as_str())
                .tell(PushDerived {
                    source: channel_key.clone(),
                    points: msg.points.clone(),
                });
        }
        if s.aggregates {
            let agg =
                ctx.actor_ref::<Aggregator>(aggregator_key(&channel_key, AggregateLevel::Hour));
            let _ = agg.tell(RecordSamples { points: msg.points });
        }
        accepted
    }
}

impl Handler<GetLatest> for PhysicalSensorChannel {
    fn handle(&mut self, _msg: GetLatest, _ctx: &mut ActorContext<'_>) -> Option<DataPoint> {
        self.state.get().last
    }
}

impl Handler<QueryRange> for PhysicalSensorChannel {
    fn handle(&mut self, msg: QueryRange, ctx: &mut ActorContext<'_>) -> Vec<DataPoint> {
        if let Some(series) = &self.series {
            // Columnar path: scan compressed blocks, skipping any whose
            // sparse index misses the range, instead of replaying the
            // in-memory window.
            let key = channel_series_key(Self::TYPE_NAME, &ctx.key().to_string());
            return series
                .scan_range(&key, msg.from_ms, msg.to_ms, msg.limit)
                .map(|points| {
                    points
                        .into_iter()
                        .map(|(ts_ms, value)| DataPoint { ts_ms, value })
                        .collect()
                })
                .unwrap_or_default();
        }
        query_window(&self.state.get().window, msg)
    }
}

impl Handler<GetChannelStats> for PhysicalSensorChannel {
    fn handle(&mut self, _msg: GetChannelStats, _ctx: &mut ActorContext<'_>) -> ChannelStats {
        let s = self.state.get();
        ChannelStats {
            total_points: s.total_points,
            window_len: s.window.len(),
            accumulated_change: s.accumulated_change,
            net_change: match (s.first_value, s.last) {
                (Some(first), Some(last)) => last.value - first,
                _ => 0.0,
            },
            last: s.last,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dp(ts_ms: u64, value: f64) -> DataPoint {
        DataPoint { ts_ms, value }
    }

    #[test]
    fn apply_points_tracks_stats_and_window_bound() {
        let mut state = ChannelState::default();
        let mut alerts = Vec::new();
        let points: Vec<DataPoint> = (0..10).map(|i| dp(i, i as f64)).collect();
        let n = PhysicalSensorChannel::apply_points(&mut state, &points, 4, &mut alerts, "c");
        assert_eq!(n, 10);
        assert_eq!(state.total_points, 10);
        assert_eq!(state.window.len(), 4, "window must stay bounded");
        assert_eq!(state.accumulated_change, 9.0);
        assert_eq!(state.first_value, Some(0.0));
        assert!(alerts.is_empty());
    }

    #[test]
    fn high_threshold_alerts_once_per_breach_episode() {
        let mut state = ChannelState {
            threshold: Threshold {
                high: Some(10.0),
                ..Default::default()
            },
            ..Default::default()
        };
        let mut alerts = Vec::new();
        let points = [
            dp(0, 5.0),
            dp(1, 11.0),
            dp(2, 12.0),
            dp(3, 9.0),
            dp(4, 15.0),
        ];
        PhysicalSensorChannel::apply_points(&mut state, &points, 100, &mut alerts, "c");
        // Two episodes: 11→12 (one alert) and 15 (second alert).
        assert_eq!(alerts.len(), 2);
        assert!(alerts.iter().all(|a| a.kind == AlertKind::AboveHigh));
    }

    #[test]
    fn low_threshold_fires() {
        let mut state = ChannelState {
            threshold: Threshold {
                low: Some(-1.0),
                ..Default::default()
            },
            ..Default::default()
        };
        let mut alerts = Vec::new();
        PhysicalSensorChannel::apply_points(&mut state, &[dp(0, -2.0)], 100, &mut alerts, "c");
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::BelowLow);
    }

    #[test]
    fn accumulated_change_alert_fires_once() {
        let mut state = ChannelState {
            threshold: Threshold {
                max_accumulated_change: Some(5.0),
                ..Default::default()
            },
            ..Default::default()
        };
        let mut alerts = Vec::new();
        let points: Vec<DataPoint> = (0..10).map(|i| dp(i, (i % 2) as f64 * 3.0)).collect();
        PhysicalSensorChannel::apply_points(&mut state, &points, 100, &mut alerts, "c");
        let acc: Vec<_> = alerts
            .iter()
            .filter(|a| a.kind == AlertKind::AccumulatedChange)
            .collect();
        assert_eq!(
            acc.len(),
            1,
            "accumulated-change alert must fire exactly once"
        );
    }

    #[test]
    fn query_window_respects_range_and_limit() {
        let mut window = VecDeque::new();
        for i in 0..100u64 {
            window.push_back(dp(i * 10, i as f64));
        }
        let hits = query_window(
            &window,
            QueryRange {
                from_ms: 200,
                to_ms: 400,
                limit: 0,
            },
        );
        assert_eq!(hits.len(), 21);
        assert_eq!(hits.first().unwrap().ts_ms, 200);
        assert_eq!(hits.last().unwrap().ts_ms, 400);
        let hits = query_window(
            &window,
            QueryRange {
                from_ms: 200,
                to_ms: 400,
                limit: 5,
            },
        );
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn query_window_straddles_ring_buffer_wrap() {
        // Force the deque to wrap so as_slices() returns two pieces.
        let mut window: VecDeque<DataPoint> = VecDeque::with_capacity(8);
        for i in 0..6u64 {
            window.push_back(dp(i, 0.0));
        }
        for _ in 0..3 {
            window.pop_front();
        }
        for i in 6..10u64 {
            window.push_back(dp(i, 0.0));
        }
        let hits = query_window(
            &window,
            QueryRange {
                from_ms: 0,
                to_ms: 100,
                limit: 0,
            },
        );
        assert_eq!(hits.len(), window.len());
    }

    #[test]
    fn dedup_watermarks_admit_once_per_sequence() {
        let mut state = ChannelState::default();
        assert!(state.admit_dedup(7, 1));
        assert!(!state.admit_dedup(7, 1)); // exact duplicate
        assert!(state.admit_dedup(7, 2));
        assert!(!state.admit_dedup(7, 1)); // late replay below the mark
        assert!(state.admit_dedup(9, 1)); // independent source
        assert!(!state.admit_dedup(9, 1));
        // Watermarks survive a serde round trip (they are part of the
        // persisted state, so redelivery after reactivation is safe too).
        let json = serde_json::to_vec(&state).unwrap();
        let mut back: ChannelState = serde_json::from_slice(&json).unwrap();
        assert!(!back.admit_dedup(7, 2));
        assert!(back.admit_dedup(7, 3));
    }
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use crate::test_props::{assert_codec_roundtrip, data_point, key, threshold};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any channel state survives the persistence codec unchanged —
        /// including the ingest dedup watermarks, whose durability is what
        /// keeps post-crash retries exactly-once.
        #[test]
        fn channel_state_roundtrips(
            (org, sensor, threshold, subscribers, aggregates) in (
                key(),
                key(),
                threshold(),
                proptest::collection::vec(key(), 0..4),
                any::<bool>(),
            ),
            (window, total_points, accumulated_change, first_value, last) in (
                proptest::collection::vec(data_point(), 0..6),
                any::<u64>(),
                0.0f64..1e9,
                proptest::option::of(-1e9f64..1e9),
                proptest::option::of(data_point()),
            ),
            (breaching_high, breaching_low, accumulated_alerted, ingest_watermarks) in (
                any::<bool>(),
                any::<bool>(),
                any::<bool>(),
                proptest::collection::vec((any::<u64>(), any::<u64>()), 0..4),
            ),
        ) {
            assert_codec_roundtrip(&ChannelState {
                org,
                sensor,
                threshold,
                subscribers,
                aggregates,
                window: window.into(),
                total_points,
                accumulated_change,
                first_value,
                last,
                breaching_high,
                breaching_low,
                accumulated_alerted,
                ingest_watermarks,
            });
        }

        /// The side-car's compact binary codec round-trips every field
        /// (it carries the dedup watermarks, so a lossy encode would
        /// break exactly-once ingest after recovery).
        #[test]
        fn channel_sidecar_roundtrips(
            (total_points, accumulated_change, first_value, last) in (
                any::<u64>(),
                -1e12f64..1e12,
                proptest::option::of(-1e300f64..1e300),
                proptest::option::of(data_point()),
            ),
            (breaching_high, breaching_low, accumulated_alerted, ingest_watermarks) in (
                any::<bool>(),
                any::<bool>(),
                any::<bool>(),
                proptest::collection::vec((any::<u64>(), any::<u64>()), 0..4),
            ),
        ) {
            let sc = ChannelSideCar {
                total_points,
                accumulated_change,
                first_value,
                last,
                breaching_high,
                breaching_low,
                accumulated_alerted,
                ingest_watermarks,
            };
            let decoded = ChannelSideCar::decode(&sc.encode()).unwrap();
            prop_assert_eq!(decoded.total_points, sc.total_points);
            prop_assert_eq!(decoded.accumulated_change.to_bits(), sc.accumulated_change.to_bits());
            prop_assert_eq!(decoded.first_value.map(f64::to_bits), sc.first_value.map(f64::to_bits));
            prop_assert_eq!(decoded.last, sc.last);
            prop_assert_eq!(decoded.breaching_high, sc.breaching_high);
            prop_assert_eq!(decoded.breaching_low, sc.breaching_low);
            prop_assert_eq!(decoded.accumulated_alerted, sc.accumulated_alerted);
            prop_assert_eq!(decoded.ingest_watermarks, sc.ingest_watermarks);
        }
    }
}
