//! Platform facade: type registration, topology provisioning with the
//! paper's exact ratios, and a typed client for ingest and online queries.

use std::time::Duration;

use aodb_runtime::{ActorRef, Promise, ReplyTo, Runtime, RuntimeHandle, SendError, SiloId};

use crate::aggregator::{aggregator_key, Aggregator};
use crate::alerts::AlertLog;
use crate::env::ShmEnv;
use crate::messages::{
    AddProject, AddUser, AttachChannel, ChannelStats, ConfigureChannel, ConfigureVirtual,
    CountAlerts, GetChannelStats, GetLiveData, GetOrgInfo, GetSensorInfo, Ingest, InitOrg,
    InitSensor, LiveDataReport, OrgInfo, QueryAggregates, QueryRange, RecentAlerts,
    RegisterChannel, RegisterSensor, SensorInfo,
};
use crate::organization::Organization;
use crate::physical::PhysicalSensorChannel;
use crate::sensor::Sensor;
use crate::types::{
    Aggregate, AggregateLevel, Alert, DataPoint, Equation, Position, SensorKind, Threshold,
    UserRole,
};
use crate::virtual_channel::VirtualSensorChannel;

/// Registers every SHM actor type with a runtime.
pub fn register_all(rt: &Runtime, env: ShmEnv) {
    Organization::register(rt, env.clone());
    Sensor::register(rt, env.clone());
    PhysicalSensorChannel::register(rt, env.clone());
    VirtualSensorChannel::register(rt, env.clone());
    Aggregator::register(rt, env.clone());
    AlertLog::register(rt, env.clone());
    crate::auth::TenantGuard::register(rt, env);
    crate::gateway::IngestGateway::register(rt);
}

/// Layout parameters; defaults reproduce the paper's environment
/// configuration (Section 6.1).
#[derive(Clone, Copy, Debug)]
pub struct TopologySpec {
    /// Sensors per organization (paper: 100, each org also getting one
    /// user and one project).
    pub sensors_per_org: usize,
    /// Physical channels per sensor (paper: 2).
    pub channels_per_sensor: usize,
    /// Every n-th sensor carries a virtual channel summing its physical
    /// channels (paper: 10).
    pub virtual_every: usize,
    /// Whether channels feed the aggregator cascade.
    pub aggregates: bool,
    /// Threshold installed on every physical channel (default: none).
    pub threshold: Threshold,
}

impl Default for TopologySpec {
    fn default() -> Self {
        TopologySpec {
            sensors_per_org: 100,
            channels_per_sensor: 2,
            virtual_every: 10,
            aggregates: true,
            threshold: Threshold::default(),
        }
    }
}

/// One sensor's actor keys.
#[derive(Clone, Debug)]
pub struct SensorTopology {
    /// Sensor actor key.
    pub key: String,
    /// Physical channel actor keys.
    pub physical: Vec<String>,
    /// Virtual channel actor key, when this sensor carries one.
    pub virtual_channel: Option<String>,
}

/// One organization's actor keys.
#[derive(Clone, Debug)]
pub struct OrgTopology {
    /// Organization actor key.
    pub key: String,
    /// The organization's sensors.
    pub sensors: Vec<SensorTopology>,
}

/// The provisioned fleet layout.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Organizations, each with its sensors and channels.
    pub orgs: Vec<OrgTopology>,
    /// The spec that generated this layout.
    pub spec: TopologySpec,
}

impl Topology {
    /// Computes the layout for `n_sensors` sensors under `spec`, without
    /// touching any runtime. Keys embed the organization so placement and
    /// storage partitions align with tenancy.
    pub fn layout(n_sensors: usize, spec: TopologySpec) -> Topology {
        let mut orgs = Vec::new();
        let per_org = spec.sensors_per_org.max(1);
        for (i, sensor_global) in (0..n_sensors).enumerate() {
            let org_idx = sensor_global / per_org;
            if org_idx == orgs.len() {
                orgs.push(OrgTopology {
                    key: format!("org-{org_idx}"),
                    sensors: Vec::new(),
                });
            }
            let org = &mut orgs[org_idx];
            let local = i % per_org;
            let sensor_key = format!("org-{org_idx}/s-{local}");
            let physical = (0..spec.channels_per_sensor)
                .map(|c| format!("{sensor_key}/c-{c}"))
                .collect();
            let virtual_channel = (local.checked_rem(spec.virtual_every) == Some(0))
                .then(|| format!("{sensor_key}/v"));
            org.sensors.push(SensorTopology {
                key: sensor_key,
                physical,
                virtual_channel,
            });
        }
        Topology { orgs, spec }
    }

    /// Total sensors.
    pub fn sensor_count(&self) -> usize {
        self.orgs.iter().map(|o| o.sensors.len()).sum()
    }

    /// Total physical channels.
    pub fn physical_channel_count(&self) -> usize {
        self.orgs
            .iter()
            .flat_map(|o| &o.sensors)
            .map(|s| s.physical.len())
            .sum()
    }

    /// Total virtual channels.
    pub fn virtual_channel_count(&self) -> usize {
        self.orgs
            .iter()
            .flat_map(|o| &o.sensors)
            .filter(|s| s.virtual_channel.is_some())
            .count()
    }

    /// All physical channel keys (the ingest targets).
    pub fn physical_channels(&self) -> impl Iterator<Item = &str> {
        self.orgs
            .iter()
            .flat_map(|o| &o.sensors)
            .flat_map(|s| s.physical.iter())
            .map(String::as_str)
    }
}

/// Creates all actors of `topology`, wiring subscriptions, thresholds, and
/// aggregators. `silo_of_org` assigns each organization index a home silo
/// (`None` → plain client origin); with prefer-local placement this pins
/// all of an organization's actors to its silo, the paper's deployment.
///
/// Provisioning is pipelined (`tell`) and then fenced with a quiesce.
pub fn provision(
    rt: &Runtime,
    topology: &Topology,
    silo_of_org: impl Fn(usize) -> Option<SiloId>,
) -> Result<(), SendError> {
    for (org_idx, org) in topology.orgs.iter().enumerate() {
        let handle = match silo_of_org(org_idx) {
            Some(silo) => rt.handle_on(silo),
            None => rt.handle(),
        };
        let org_ref = handle.try_actor_ref::<Organization>(org.key.as_str())?;
        org_ref.tell(InitOrg {
            name: format!("Organization {org_idx}"),
        })?;
        org_ref.tell(AddUser {
            name: format!("user-{org_idx}"),
            role: UserRole::Engineer,
        })?;
        org_ref.tell(AddProject {
            name: format!("project-{org_idx}"),
            structure: "bridge".into(),
        })?;

        for sensor in &org.sensors {
            let sensor_ref = handle.try_actor_ref::<Sensor>(sensor.key.as_str())?;
            sensor_ref.tell(InitSensor {
                org: org.key.clone(),
                kind: SensorKind::Extension,
                position: Position::default(),
            })?;
            org_ref.tell(RegisterSensor {
                sensor: sensor.key.clone(),
            })?;

            let subscribers: Vec<String> = sensor.virtual_channel.iter().cloned().collect();
            for channel in &sensor.physical {
                sensor_ref.tell(AttachChannel {
                    channel: channel.clone(),
                })?;
                handle
                    .try_actor_ref::<PhysicalSensorChannel>(channel.as_str())?
                    .tell(ConfigureChannel {
                        org: org.key.clone(),
                        sensor: sensor.key.clone(),
                        threshold: topology.spec.threshold,
                        subscribers: subscribers.clone(),
                        aggregates: topology.spec.aggregates,
                    })?;
                org_ref.tell(RegisterChannel {
                    channel: channel.clone(),
                    virtual_channel: false,
                })?;
            }
            if let Some(vkey) = &sensor.virtual_channel {
                sensor_ref.tell(AttachChannel {
                    channel: vkey.clone(),
                })?;
                handle
                    .try_actor_ref::<VirtualSensorChannel>(vkey.as_str())?
                    .tell(ConfigureVirtual {
                        org: org.key.clone(),
                        inputs: sensor.physical.clone(),
                        equation: Equation::Sum,
                        aggregates: topology.spec.aggregates,
                    })?;
                org_ref.tell(RegisterChannel {
                    channel: vkey.clone(),
                    virtual_channel: true,
                })?;
            }
        }
    }
    rt.quiesce(Duration::from_secs(60));
    Ok(())
}

/// Typed client facade over the platform's online API.
#[derive(Clone)]
pub struct ShmClient {
    handle: RuntimeHandle,
}

impl ShmClient {
    /// Client using `handle`'s origin (plain or silo-affine).
    pub fn new(handle: RuntimeHandle) -> Self {
        ShmClient { handle }
    }

    /// Hot-path ingest target for a physical channel; cache this across
    /// requests in load generators.
    pub fn channel(&self, key: &str) -> ActorRef<PhysicalSensorChannel> {
        self.handle.actor_ref(key)
    }

    /// Inserts a batch of points; the promise carries the accepted count.
    pub fn ingest(&self, channel: &str, points: Vec<DataPoint>) -> Result<Promise<u32>, SendError> {
        self.handle
            .try_actor_ref::<PhysicalSensorChannel>(channel)?
            .ask(Ingest::new(points))
    }

    /// The paper's "live data request": latest point of every channel of
    /// an organization.
    pub fn live_data(&self, org: &str) -> Result<Promise<LiveDataReport>, SendError> {
        let (reply, promise) = ReplyTo::promise();
        self.handle
            .try_actor_ref::<Organization>(org)?
            .tell(GetLiveData { reply })?;
        Ok(promise)
    }

    /// The paper's "raw data request": a time range from one channel's
    /// window.
    pub fn raw_range(
        &self,
        channel: &str,
        from_ms: u64,
        to_ms: u64,
        limit: usize,
    ) -> Result<Promise<Vec<DataPoint>>, SendError> {
        self.handle
            .try_actor_ref::<PhysicalSensorChannel>(channel)?
            .ask(QueryRange {
                from_ms,
                to_ms,
                limit,
            })
    }

    /// Raw range over a virtual channel.
    pub fn raw_range_virtual(
        &self,
        channel: &str,
        from_ms: u64,
        to_ms: u64,
        limit: usize,
    ) -> Result<Promise<Vec<DataPoint>>, SendError> {
        self.handle
            .try_actor_ref::<VirtualSensorChannel>(channel)?
            .ask(QueryRange {
                from_ms,
                to_ms,
                limit,
            })
    }

    /// Statistical buckets of a channel at a level (plot feed).
    pub fn aggregates(
        &self,
        channel: &str,
        level: AggregateLevel,
        from_ms: u64,
        to_ms: u64,
    ) -> Result<Promise<Vec<(u64, Aggregate)>>, SendError> {
        self.handle
            .try_actor_ref::<Aggregator>(aggregator_key(channel, level))?
            .ask(QueryAggregates { from_ms, to_ms })
    }

    /// Channel statistics (accumulated change etc.).
    pub fn channel_stats(&self, channel: &str) -> Result<Promise<ChannelStats>, SendError> {
        self.handle
            .try_actor_ref::<PhysicalSensorChannel>(channel)?
            .ask(GetChannelStats)
    }

    /// Stats of a virtual channel.
    pub fn virtual_channel_stats(&self, channel: &str) -> Result<Promise<ChannelStats>, SendError> {
        self.handle
            .try_actor_ref::<VirtualSensorChannel>(channel)?
            .ask(GetChannelStats)
    }

    /// Organization structure snapshot.
    pub fn org_info(&self, org: &str) -> Result<Promise<OrgInfo>, SendError> {
        self.handle
            .try_actor_ref::<Organization>(org)?
            .ask(GetOrgInfo)
    }

    /// Sensor metadata snapshot.
    pub fn sensor_info(&self, sensor: &str) -> Result<Promise<SensorInfo>, SendError> {
        self.handle
            .try_actor_ref::<Sensor>(sensor)?
            .ask(GetSensorInfo)
    }

    /// Recent alerts of an organization, newest first.
    pub fn recent_alerts(&self, org: &str, limit: usize) -> Result<Promise<Vec<Alert>>, SendError> {
        self.handle
            .try_actor_ref::<AlertLog>(org)?
            .ask(RecentAlerts { limit })
    }

    /// Total alerts an organization has ever received.
    pub fn alert_count(&self, org: &str) -> Result<Promise<u64>, SendError> {
        self.handle.try_actor_ref::<AlertLog>(org)?.ask(CountAlerts)
    }

    /// The underlying handle (for advanced composition).
    pub fn handle(&self) -> &RuntimeHandle {
        &self.handle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_ratios() {
        // 100 sensors → 1 org, 200 physical + 10 virtual = 210 channels,
        // exactly the paper's numbers.
        let t = Topology::layout(100, TopologySpec::default());
        assert_eq!(t.orgs.len(), 1);
        assert_eq!(t.sensor_count(), 100);
        assert_eq!(t.physical_channel_count(), 200);
        assert_eq!(t.virtual_channel_count(), 10);
    }

    #[test]
    fn layout_scales_organizations() {
        let t = Topology::layout(500, TopologySpec::default());
        assert_eq!(t.orgs.len(), 5);
        assert_eq!(t.physical_channel_count(), 1000);
        assert_eq!(t.virtual_channel_count(), 50);
    }

    #[test]
    fn partial_org_layout() {
        let t = Topology::layout(150, TopologySpec::default());
        assert_eq!(t.orgs.len(), 2);
        assert_eq!(t.orgs[0].sensors.len(), 100);
        assert_eq!(t.orgs[1].sensors.len(), 50);
    }

    #[test]
    fn keys_embed_org_for_partitioning() {
        let t = Topology::layout(150, TopologySpec::default());
        for sensor in &t.orgs[1].sensors {
            assert!(sensor.key.starts_with("org-1/"));
            for c in &sensor.physical {
                assert!(c.starts_with("org-1/"));
            }
        }
    }
}
