//! The `Sensor` actor: metadata and channel membership of one physical
//! sensor.
//!
//! Sensors are modeled as actors (not as objects inside the organization)
//! because they are *active* entities: they get relocated and they own
//! multiple independent channels (Section 4.2). Data does not flow through
//! the sensor actor — streams are disaggregated by channel at the ingest
//! proxy, so sensor↔channel messaging stays minimal, exactly as the paper
//! argues.

use aodb_runtime::{Actor, ActorContext, Handler};
use serde::{Deserialize, Serialize};

use crate::env::ShmEnv;
use crate::messages::{AttachChannel, GetSensorInfo, InitSensor, SensorInfo, UpdatePosition};
use crate::types::{Position, SensorKind};
use aodb_core::Persisted;

#[derive(Serialize, Deserialize)]
struct SensorState {
    org: String,
    kind: SensorKind,
    position: Position,
    channels: Vec<String>,
}

impl Default for SensorState {
    fn default() -> Self {
        SensorState {
            org: String::new(),
            kind: SensorKind::Extension,
            position: Position::default(),
            channels: Vec::new(),
        }
    }
}

/// The sensor actor.
pub struct Sensor {
    state: Persisted<SensorState>,
}

impl Sensor {
    /// Registers the actor type.
    pub fn register(rt: &aodb_runtime::Runtime, env: ShmEnv) {
        rt.register(move |id| Sensor {
            state: env.persisted_structural(Self::TYPE_NAME, &id.key),
        });
    }
}

impl Actor for Sensor {
    const TYPE_NAME: &'static str = "shm.sensor";

    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.load_or_default();
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.flush();
    }
}

impl Handler<InitSensor> for Sensor {
    fn handle(&mut self, msg: InitSensor, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| {
            s.org = msg.org;
            s.kind = msg.kind;
            s.position = msg.position;
        });
    }
}

impl Handler<AttachChannel> for Sensor {
    fn handle(&mut self, msg: AttachChannel, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| {
            if !s.channels.contains(&msg.channel) {
                s.channels.push(msg.channel);
            }
        });
    }
}

impl Handler<UpdatePosition> for Sensor {
    fn handle(&mut self, msg: UpdatePosition, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| s.position = msg.0);
    }
}

impl Handler<GetSensorInfo> for Sensor {
    fn handle(&mut self, _msg: GetSensorInfo, _ctx: &mut ActorContext<'_>) -> SensorInfo {
        let s = self.state.get();
        SensorInfo {
            org: s.org.clone(),
            kind: s.kind,
            position: s.position,
            channels: s.channels.clone(),
        }
    }
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use crate::test_props::{assert_codec_roundtrip, key, position, sensor_kind};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any sensor state survives the persistence codec unchanged.
        #[test]
        fn sensor_state_roundtrips(
            org in key(),
            kind in sensor_kind(),
            position in position(),
            channels in proptest::collection::vec(key(), 0..5),
        ) {
            assert_codec_roundtrip(&SensorState { org, kind, position, channels });
        }
    }
}
