//! Compact binary codec for the channel side-cars.
//!
//! Side-cars ride *every* columnar append as series metadata (see
//! `ChannelSideCar`), which puts their encoding on the ingest hot path —
//! at WAL group-commit rates the JSON state codec's ~2 µs per encode is
//! a measurable slice of the turn. This fixed-layout little-endian codec
//! encodes the same fields in ~100 ns and a third of the bytes.
//!
//! Layout: one format byte (`FORMAT`), then the struct's fields in
//! declaration order — integers and floats as little-endian, `bool` as
//! one byte, `Option<T>` as a presence byte + payload, `Vec<T>` as a
//! `u32` length + elements. Decoders reject unknown format bytes and
//! short buffers; callers treat that as "no side-car" (fresh state),
//! the same stance as a missing meta blob.

use crate::types::DataPoint;

/// Format byte of the current side-car layout. Bump on any field
/// change; old blobs then read as absent rather than misparsed.
pub(crate) const FORMAT: u8 = 1;

/// Decode failure: wrong format byte or truncated buffer.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct SideCarDecodeError;

pub(crate) struct Writer(Vec<u8>);

impl Writer {
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(96);
        buf.push(FORMAT);
        Writer(buf)
    }

    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    pub fn bool(&mut self, v: bool) {
        self.0.push(v as u8);
    }

    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.0.push(1);
                self.f64(x);
            }
            None => self.0.push(0),
        }
    }

    pub fn opt_point(&mut self, v: Option<DataPoint>) {
        match v {
            Some(p) => {
                self.0.push(1);
                self.u64(p.ts_ms);
                self.f64(p.value);
            }
            None => self.0.push(0),
        }
    }

    pub fn pairs(&mut self, v: &[(u64, u64)]) {
        self.u64(v.len() as u64);
        for &(a, b) in v {
            self.u64(a);
            self.u64(b);
        }
    }

    pub fn opt_f64_list(&mut self, v: &[Option<f64>]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.opt_f64(x);
        }
    }

    pub fn finish(self) -> Vec<u8> {
        self.0
    }
}

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Checks the format byte and positions the reader after it.
    pub fn new(buf: &'a [u8]) -> Result<Self, SideCarDecodeError> {
        if buf.first() != Some(&FORMAT) {
            return Err(SideCarDecodeError);
        }
        Ok(Reader { buf, pos: 1 })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SideCarDecodeError> {
        let end = self.pos.checked_add(n).ok_or(SideCarDecodeError)?;
        let slice = self.buf.get(self.pos..end).ok_or(SideCarDecodeError)?;
        self.pos = end;
        Ok(slice)
    }

    pub fn u64(&mut self) -> Result<u64, SideCarDecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, SideCarDecodeError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn bool(&mut self) -> Result<bool, SideCarDecodeError> {
        Ok(self.take(1)?[0] != 0)
    }

    pub fn opt_f64(&mut self) -> Result<Option<f64>, SideCarDecodeError> {
        if self.bool()? {
            Ok(Some(self.f64()?))
        } else {
            Ok(None)
        }
    }

    pub fn opt_point(&mut self) -> Result<Option<DataPoint>, SideCarDecodeError> {
        if self.bool()? {
            Ok(Some(DataPoint {
                ts_ms: self.u64()?,
                value: self.f64()?,
            }))
        } else {
            Ok(None)
        }
    }

    pub fn pairs(&mut self) -> Result<Vec<(u64, u64)>, SideCarDecodeError> {
        let n = self.len_prefix()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push((self.u64()?, self.u64()?));
        }
        Ok(out)
    }

    pub fn opt_f64_list(&mut self) -> Result<Vec<Option<f64>>, SideCarDecodeError> {
        let n = self.len_prefix()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.opt_f64()?);
        }
        Ok(out)
    }

    /// Length prefix, sanity-capped by the bytes actually remaining so a
    /// corrupt length cannot trigger a huge allocation.
    fn len_prefix(&mut self) -> Result<usize, SideCarDecodeError> {
        let n = self.u64()? as usize;
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(SideCarDecodeError);
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = Writer::new();
        w.u64(42);
        w.f64(-1.5);
        w.bool(true);
        w.opt_f64(None);
        w.opt_f64(Some(7.25));
        w.opt_point(Some(DataPoint {
            ts_ms: 99,
            value: 3.0,
        }));
        w.pairs(&[(1, 2), (3, 4)]);
        w.opt_f64_list(&[None, Some(0.5)]);
        let bytes = w.finish();

        let mut r = Reader::new(&bytes).unwrap();
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.f64().unwrap(), -1.5);
        assert!(r.bool().unwrap());
        assert_eq!(r.opt_f64().unwrap(), None);
        assert_eq!(r.opt_f64().unwrap(), Some(7.25));
        assert_eq!(
            r.opt_point().unwrap(),
            Some(DataPoint {
                ts_ms: 99,
                value: 3.0
            })
        );
        assert_eq!(r.pairs().unwrap(), vec![(1, 2), (3, 4)]);
        assert_eq!(r.opt_f64_list().unwrap(), vec![None, Some(0.5)]);
    }

    #[test]
    fn wrong_format_and_truncation_reject() {
        assert!(Reader::new(&[]).is_err());
        assert!(Reader::new(&[0xFF, 0, 0]).is_err());
        let mut w = Writer::new();
        w.u64(1);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes[..bytes.len() - 1]).unwrap();
        assert!(r.u64().is_err());
    }

    #[test]
    fn corrupt_length_prefix_rejects_without_allocating() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // absurd pair-count
        let bytes = w.finish();
        let mut r = Reader::new(&bytes).unwrap();
        assert!(r.pairs().is_err());
    }
}
