//! Shared proptest strategies and the codec round-trip assertion for the
//! persisted-state tests (the `codec_tests` modules next to each state
//! type).
//!
//! Every `Persisted<T>` blob goes through `aodb_store::codec`, so
//! "decode (encode s) == s" over arbitrary states is exactly the
//! crash-recovery property: any state a crash can leave in the store
//! must reactivate unchanged.

use proptest::prelude::*;

use crate::types::{
    Aggregate, Alert, AlertKind, AlertSeverity, DataPoint, Equation, Position, Project, SensorKind,
    Threshold, User, UserRole,
};

/// Encodes with the store codec, decodes, and compares canonically
/// (`serde_json::Value` is `BTreeMap`-backed, so the comparison is
/// field-order-insensitive but misses nothing — including every float
/// bit pattern the strategies produce).
pub(crate) fn assert_codec_roundtrip<T>(state: &T)
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let bytes = aodb_store::codec::encode_state(state).expect("state must encode");
    let back: T = aodb_store::codec::decode_state(&bytes).expect("state must decode");
    assert_eq!(
        serde_json::to_value(state).expect("canonical form"),
        serde_json::to_value(&back).expect("canonical form"),
        "state drifted across the persistence codec"
    );
}

/// Actor-key-shaped strings, including the empty string.
pub(crate) fn key() -> impl Strategy<Value = String> {
    "[a-z0-9/_-]{0,12}"
}

/// Arbitrary sample with a finite value.
pub(crate) fn data_point() -> impl Strategy<Value = DataPoint> {
    (any::<u64>(), -1e9f64..1e9).prop_map(|(ts_ms, value)| DataPoint { ts_ms, value })
}

/// Any combination of threshold rules.
pub(crate) fn threshold() -> impl Strategy<Value = Threshold> {
    (
        proptest::option::of(-1e6f64..1e6),
        proptest::option::of(-1e6f64..1e6),
        proptest::option::of(0.0f64..1e6),
    )
        .prop_map(|(high, low, max_accumulated_change)| Threshold {
            high,
            low,
            max_accumulated_change,
        })
}

/// A mounting position anywhere on the structure.
pub(crate) fn position() -> impl Strategy<Value = Position> {
    (-1e4f64..1e4, -1e4f64..1e4, -1e4f64..1e4).prop_map(|(x, y, z)| Position { x, y, z })
}

/// Every sensor kind.
pub(crate) fn sensor_kind() -> impl Strategy<Value = SensorKind> {
    prop_oneof![
        Just(SensorKind::Extension),
        Just(SensorKind::Inclination),
        Just(SensorKind::Temperature),
        Just(SensorKind::WindSpeed),
        Just(SensorKind::WindDirection),
    ]
}

/// A platform user with any role.
pub(crate) fn user() -> impl Strategy<Value = User> {
    (
        any::<u32>(),
        key(),
        prop_oneof![
            Just(UserRole::Engineer),
            Just(UserRole::Analyst),
            Just(UserRole::Maintenance),
        ],
    )
        .prop_map(|(id, name, role)| User { id, name, role })
}

/// A monitoring project.
pub(crate) fn project() -> impl Strategy<Value = Project> {
    (any::<u32>(), key(), key()).prop_map(|(id, name, structure)| Project {
        id,
        name,
        structure,
    })
}

/// An alert of any kind and severity.
pub(crate) fn alert() -> impl Strategy<Value = Alert> {
    (
        key(),
        any::<u64>(),
        -1e9f64..1e9,
        prop_oneof![
            Just(AlertKind::AboveHigh),
            Just(AlertKind::BelowLow),
            Just(AlertKind::AccumulatedChange),
        ],
        prop_oneof![Just(AlertSeverity::Warning), Just(AlertSeverity::Critical)],
    )
        .prop_map(|(channel, ts_ms, value, kind, severity)| Alert {
            channel,
            ts_ms,
            value,
            kind,
            severity,
        })
}

/// Every equation variant, including weighted sums of any arity.
pub(crate) fn equation() -> impl Strategy<Value = Equation> {
    prop_oneof![
        Just(Equation::Sum),
        Just(Equation::Mean),
        Just(Equation::Difference),
        proptest::collection::vec(-10.0f64..10.0, 0..4).prop_map(Equation::WeightedSum),
    ]
}

/// A populated (finite-statistics) aggregate bucket.
pub(crate) fn aggregate() -> impl Strategy<Value = Aggregate> {
    (
        any::<u64>(),
        -1e9f64..1e9,
        -1e9f64..1e9,
        -1e9f64..1e9,
        0.0f64..1e12,
    )
        .prop_map(|(count, sum, min, max, sum_sq)| Aggregate {
            count,
            sum,
            min,
            max,
            sum_sq,
        })
}
