//! Domain types of the Structural Health Monitoring platform.
//!
//! These mirror the paper's Figure 4: actors (`Organization`, `Sensor`,
//! `PhysicalSensorChannel`, `VirtualSensorChannel`, `Aggregator`) and the
//! *non-actor objects* they encapsulate (`Project`, `User`, `DataPoint`,
//! alerts) — the paper's second modeling principle in action: projects and
//! users are passive, so they live inside `Organization` state rather than
//! as actors.

use serde::{Deserialize, Serialize};

/// One sensor reading: timestamp (ms since epoch or experiment start) and
/// value (the unit depends on the channel: strain, inclination, °C, m/s…).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DataPoint {
    /// Sample timestamp in milliseconds.
    pub ts_ms: u64,
    /// Measured value.
    pub value: f64,
}

/// A shared, immutable batch of data points.
///
/// Ingest batches fan out along the hot path — channel → subscribed
/// virtual channels → aggregator — and each hop used to deep-copy the
/// `Vec`. A `PointBatch` is an `Arc`'d slice: cloning is a refcount
/// bump, so one allocation made at the gateway serves every hop (and the
/// chaos layer's replay copies). Dereferences to `[DataPoint]`;
/// serializes exactly like a plain sequence of points, so the persisted
/// format is unchanged.
#[derive(Clone, Debug)]
pub struct PointBatch(std::sync::Arc<[DataPoint]>);

impl PointBatch {
    /// Wraps a vector of points (single allocation move, no copy).
    pub fn new(points: Vec<DataPoint>) -> Self {
        PointBatch(points.into())
    }

    /// The points as a slice.
    pub fn as_slice(&self) -> &[DataPoint] {
        &self.0
    }
}

impl Default for PointBatch {
    fn default() -> Self {
        PointBatch(std::sync::Arc::from(&[] as &[DataPoint]))
    }
}

impl std::ops::Deref for PointBatch {
    type Target = [DataPoint];
    fn deref(&self) -> &[DataPoint] {
        &self.0
    }
}

impl PartialEq for PointBatch {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<DataPoint>> for PointBatch {
    fn from(points: Vec<DataPoint>) -> Self {
        PointBatch::new(points)
    }
}

impl From<&[DataPoint]> for PointBatch {
    fn from(points: &[DataPoint]) -> Self {
        PointBatch(std::sync::Arc::from(points))
    }
}

impl FromIterator<DataPoint> for PointBatch {
    fn from_iter<I: IntoIterator<Item = DataPoint>>(iter: I) -> Self {
        PointBatch(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a PointBatch {
    type Item = &'a DataPoint;
    type IntoIter = std::slice::Iter<'a, DataPoint>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl Serialize for PointBatch {
    fn json_value(&self) -> serde::Value {
        serde::Value::Array(self.iter().map(|p| p.json_value()).collect())
    }
}

impl Deserialize for PointBatch {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Vec::<DataPoint>::from_json_value(v).map(PointBatch::new)
    }
}

/// A passive construction-monitoring project owned by an organization
/// (non-actor object).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Project {
    /// Project id unique within the organization.
    pub id: u32,
    /// Display name, e.g. `"Great Belt Bridge"`.
    pub name: String,
    /// The monitored structure.
    pub structure: String,
}

/// A platform user belonging to an organization (non-actor object).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct User {
    /// User id unique within the organization.
    pub id: u32,
    /// Display name.
    pub name: String,
    /// Role for access control (engineer, analyst, maintenance).
    pub role: UserRole,
}

/// Stakeholder roles from the paper's context diagram (Figure 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum UserRole {
    /// Engineering expert monitoring the structure.
    Engineer,
    /// Data analyst exploring time series.
    Analyst,
    /// Maintenance personnel managing monitoring projects.
    Maintenance,
}

/// Threshold rule attached to a sensor channel (functional requirement 5:
/// customized alerts when thresholds are met).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize, Default)]
pub struct Threshold {
    /// Alert when a value rises above this.
    pub high: Option<f64>,
    /// Alert when a value falls below this.
    pub low: Option<f64>,
    /// Alert when the accumulated absolute change exceeds this
    /// (extension sensors: "how far elements have moved").
    pub max_accumulated_change: Option<f64>,
}

/// Severity of an alert.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertSeverity {
    /// Attention-worthy event.
    Warning,
    /// Threshold breach requiring action.
    Critical,
}

/// An alert raised by a channel (non-actor object stored in the
/// organization's alert log).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// The channel that raised the alert.
    pub channel: String,
    /// When the offending sample was taken.
    pub ts_ms: u64,
    /// The offending value.
    pub value: f64,
    /// Which rule fired.
    pub kind: AlertKind,
    /// Severity.
    pub severity: AlertSeverity,
}

/// Which threshold rule fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertKind {
    /// Value above the high threshold.
    AboveHigh,
    /// Value below the low threshold.
    BelowLow,
    /// Accumulated change beyond its limit.
    AccumulatedChange,
}

/// What physical quantity a sensor measures (the paper's bridge examples).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SensorKind {
    /// Joint extension / displacement.
    Extension,
    /// Inclination.
    Inclination,
    /// Temperature.
    Temperature,
    /// Wind speed.
    WindSpeed,
    /// Wind direction.
    WindDirection,
}

/// Physical placement of a sensor on the structure; sensors may be
/// relocated (hence `Sensor` is an actor, per Section 4.2).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize, Default)]
pub struct Position {
    /// Structure-local coordinates in meters.
    pub x: f64,
    /// See `x`.
    pub y: f64,
    /// See `x`.
    pub z: f64,
}

/// The computation a virtual sensor channel applies over its input
/// channels (paper: "an equation merging the data from accelerometer and
/// microphone sensor channels"; the experiments use summation).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Equation {
    /// Sum of the latest values of all inputs (the paper's benchmark
    /// configuration).
    Sum,
    /// Arithmetic mean of the latest values.
    Mean,
    /// First input minus second input (differential sensors).
    Difference,
    /// Weighted sum; weights align with the input order.
    WeightedSum(Vec<f64>),
}

impl Equation {
    /// Applies the equation to the latest value of each input (inputs with
    /// no data yet are skipped; `None` when no input has data).
    pub fn apply(&self, latest: &[Option<f64>]) -> Option<f64> {
        let present: Vec<f64> = latest.iter().copied().flatten().collect();
        if present.is_empty() {
            return None;
        }
        match self {
            Equation::Sum => Some(present.iter().sum()),
            Equation::Mean => Some(present.iter().sum::<f64>() / present.len() as f64),
            Equation::Difference => match (
                latest.first().copied().flatten(),
                latest.get(1).copied().flatten(),
            ) {
                (Some(a), Some(b)) => Some(a - b),
                (Some(a), None) => Some(a),
                _ => None,
            },
            Equation::WeightedSum(weights) => Some(
                latest
                    .iter()
                    .zip(weights.iter().chain(std::iter::repeat(&1.0)))
                    .filter_map(|(v, w)| v.map(|v| v * w))
                    .sum(),
            ),
        }
    }
}

/// Aggregation granularity for statistical plots (functional
/// requirement 6: "per hour, day, or month").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggregateLevel {
    /// Hourly buckets; fed directly by channels.
    Hour,
    /// Daily buckets; fed by closed hourly buckets.
    Day,
    /// 30-day buckets (a fixed-width "month" keeps bucket math exact);
    /// fed by closed daily buckets.
    Month,
}

impl AggregateLevel {
    /// Bucket width in milliseconds.
    pub fn bucket_ms(self) -> u64 {
        match self {
            AggregateLevel::Hour => 3_600_000,
            AggregateLevel::Day => 86_400_000,
            AggregateLevel::Month => 30 * 86_400_000,
        }
    }

    /// The next-coarser level, if any.
    pub fn parent(self) -> Option<AggregateLevel> {
        match self {
            AggregateLevel::Hour => Some(AggregateLevel::Day),
            AggregateLevel::Day => Some(AggregateLevel::Month),
            AggregateLevel::Month => None,
        }
    }

    /// Start of the bucket containing `ts_ms`.
    pub fn bucket_start(self, ts_ms: u64) -> u64 {
        ts_ms - ts_ms % self.bucket_ms()
    }

    /// Key suffix used in aggregator actor keys.
    pub fn suffix(self) -> &'static str {
        match self {
            AggregateLevel::Hour => "hour",
            AggregateLevel::Day => "day",
            AggregateLevel::Month => "month",
        }
    }

    /// Parses a key suffix.
    pub fn from_suffix(s: &str) -> Option<AggregateLevel> {
        match s {
            "hour" => Some(AggregateLevel::Hour),
            "day" => Some(AggregateLevel::Day),
            "month" => Some(AggregateLevel::Month),
            _ => None,
        }
    }
}

/// Mergeable statistical summary of a set of samples.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    /// Number of samples.
    pub count: u64,
    /// Sum of values.
    pub sum: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Sum of squared values (for variance).
    pub sum_sq: f64,
}

impl Default for Aggregate {
    fn default() -> Self {
        Aggregate {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum_sq: 0.0,
        }
    }
}

impl Aggregate {
    /// Summary of a single sample.
    pub fn of(value: f64) -> Aggregate {
        Aggregate {
            count: 1,
            sum: value,
            min: value,
            max: value,
            sum_sq: value * value,
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum_sq += value * value;
    }

    /// Merges another summary (e.g. an hourly bucket into a daily one).
    pub fn merge(&mut self, other: &Aggregate) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum_sq += other.sum_sq;
    }

    /// Mean value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Population variance, `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        self.mean()
            .map(|m| (self.sum_sq / self.count as f64 - m * m).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_record_and_stats() {
        let mut a = Aggregate::default();
        for v in [1.0, 2.0, 3.0, 4.0] {
            a.record(v);
        }
        assert_eq!(a.count, 4);
        assert_eq!(a.mean(), Some(2.5));
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 4.0);
        assert!((a.variance().unwrap() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn aggregate_merge_equals_combined_record() {
        let mut left = Aggregate::default();
        let mut right = Aggregate::default();
        let mut combined = Aggregate::default();
        for v in [1.0, 5.0, -3.0] {
            left.record(v);
            combined.record(v);
        }
        for v in [2.0, 8.0] {
            right.record(v);
            combined.record(v);
        }
        left.merge(&right);
        assert_eq!(left, combined);
    }

    #[test]
    fn empty_aggregate_has_no_mean() {
        assert_eq!(Aggregate::default().mean(), None);
        assert_eq!(Aggregate::default().variance(), None);
    }

    #[test]
    fn bucket_math() {
        let lvl = AggregateLevel::Hour;
        assert_eq!(lvl.bucket_start(3_599_999), 0);
        assert_eq!(lvl.bucket_start(3_600_000), 3_600_000);
        assert_eq!(AggregateLevel::Day.bucket_start(90_000_000), 86_400_000);
    }

    #[test]
    fn level_cascade() {
        assert_eq!(AggregateLevel::Hour.parent(), Some(AggregateLevel::Day));
        assert_eq!(AggregateLevel::Day.parent(), Some(AggregateLevel::Month));
        assert_eq!(AggregateLevel::Month.parent(), None);
        for lvl in [
            AggregateLevel::Hour,
            AggregateLevel::Day,
            AggregateLevel::Month,
        ] {
            assert_eq!(AggregateLevel::from_suffix(lvl.suffix()), Some(lvl));
        }
    }

    #[test]
    fn equation_sum_and_mean() {
        let latest = [Some(1.0), Some(2.0), None];
        assert_eq!(Equation::Sum.apply(&latest), Some(3.0));
        assert_eq!(Equation::Mean.apply(&latest), Some(1.5));
        assert_eq!(Equation::Sum.apply(&[None, None]), None);
    }

    #[test]
    fn equation_difference() {
        assert_eq!(
            Equation::Difference.apply(&[Some(5.0), Some(2.0)]),
            Some(3.0)
        );
        assert_eq!(Equation::Difference.apply(&[Some(5.0), None]), Some(5.0));
        assert_eq!(Equation::Difference.apply(&[None, Some(2.0)]), None);
    }

    #[test]
    fn equation_weighted_sum() {
        let eq = Equation::WeightedSum(vec![2.0, 0.5]);
        assert_eq!(eq.apply(&[Some(3.0), Some(4.0)]), Some(8.0));
    }
}
