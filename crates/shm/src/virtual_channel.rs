//! The `VirtualSensorChannel` actor: a continuously derived stream.
//!
//! Figure 4 specializes `Sensor Channel` into physical and *virtual*
//! channels, the latter computing an equation over potentially multiple
//! physical channels. In the paper's benchmark every tenth sensor carries
//! a virtual channel summing its two physical channels; physical channels
//! push their fresh points here, and each incoming point yields one
//! derived point computed from the latest value of every input.

use std::collections::VecDeque;

use aodb_runtime::{Actor, ActorContext, Handler};
use serde::{Deserialize, Serialize};

use crate::aggregator::{aggregator_key, Aggregator};
use crate::env::ShmEnv;
use crate::messages::{
    ChannelStats, ConfigureVirtual, GetChannelStats, GetLatest, PushDerived, QueryRange,
    RecordSamples,
};
use crate::physical::query_window;
use crate::types::{AggregateLevel, DataPoint, Equation};
use aodb_core::Persisted;

#[derive(Serialize, Deserialize)]
pub(crate) struct VirtualState {
    org: String,
    inputs: Vec<String>,
    equation: Equation,
    aggregates: bool,
    /// Latest value seen per input (equation operands).
    latest_inputs: Vec<Option<f64>>,
    window: VecDeque<DataPoint>,
    total_points: u64,
    accumulated_change: f64,
    first_value: Option<f64>,
    last: Option<DataPoint>,
}

impl Default for VirtualState {
    fn default() -> Self {
        VirtualState {
            org: String::new(),
            inputs: Vec::new(),
            equation: Equation::Sum,
            aggregates: false,
            latest_inputs: Vec::new(),
            window: VecDeque::new(),
            total_points: 0,
            accumulated_change: 0.0,
            first_value: None,
            last: None,
        }
    }
}

/// The virtual sensor channel actor.
pub struct VirtualSensorChannel {
    state: Persisted<VirtualState>,
    window_capacity: usize,
}

impl VirtualSensorChannel {
    /// Registers the actor type.
    pub fn register(rt: &aodb_runtime::Runtime, env: ShmEnv) {
        rt.register(move |id| VirtualSensorChannel {
            state: env.persisted_data(Self::TYPE_NAME, &id.key),
            window_capacity: env.window_capacity,
        });
    }
}

impl Actor for VirtualSensorChannel {
    const TYPE_NAME: &'static str = "shm.virtual-channel";
    fn declared_calls() -> &'static [aodb_runtime::CallDecl] {
        // Derived points cascade into this channel's aggregate pyramid.
        const CALLS: &[aodb_runtime::CallDecl] = &[aodb_runtime::CallDecl::send("shm.aggregator")];
        CALLS
    }

    fn on_activate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.load_or_default();
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.flush();
    }
}

impl Handler<ConfigureVirtual> for VirtualSensorChannel {
    fn handle(&mut self, msg: ConfigureVirtual, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| {
            s.org = msg.org;
            s.latest_inputs = vec![None; msg.inputs.len()];
            s.inputs = msg.inputs;
            s.equation = msg.equation;
            s.aggregates = msg.aggregates;
        });
    }
}

impl Handler<PushDerived> for VirtualSensorChannel {
    fn handle(&mut self, msg: PushDerived, ctx: &mut ActorContext<'_>) {
        let capacity = self.window_capacity;
        let derived: Vec<DataPoint> = self.state.mutate(|s| {
            let Some(idx) = s.inputs.iter().position(|i| i == &msg.source) else {
                return Vec::new(); // unknown source: configuration race; drop
            };
            let mut derived = Vec::with_capacity(msg.points.len());
            for p in &msg.points {
                s.latest_inputs[idx] = Some(p.value);
                let Some(value) = s.equation.apply(&s.latest_inputs) else {
                    continue;
                };
                let dp = DataPoint {
                    ts_ms: p.ts_ms,
                    value,
                };
                if let Some(last) = s.last {
                    s.accumulated_change += (value - last.value).abs();
                } else {
                    s.first_value = Some(value);
                }
                s.last = Some(dp);
                s.window.push_back(dp);
                if s.window.len() > capacity {
                    s.window.pop_front();
                }
                s.total_points += 1;
                derived.push(dp);
            }
            derived
        });
        if !derived.is_empty() && self.state.get().aggregates {
            let key = aggregator_key(&ctx.key().to_string(), AggregateLevel::Hour);
            let _ = ctx
                .actor_ref::<Aggregator>(key)
                .tell(RecordSamples { points: derived });
        }
    }
}

impl Handler<GetLatest> for VirtualSensorChannel {
    fn handle(&mut self, _msg: GetLatest, _ctx: &mut ActorContext<'_>) -> Option<DataPoint> {
        self.state.get().last
    }
}

impl Handler<QueryRange> for VirtualSensorChannel {
    fn handle(&mut self, msg: QueryRange, _ctx: &mut ActorContext<'_>) -> Vec<DataPoint> {
        query_window(&self.state.get().window, msg)
    }
}

impl Handler<GetChannelStats> for VirtualSensorChannel {
    fn handle(&mut self, _msg: GetChannelStats, _ctx: &mut ActorContext<'_>) -> ChannelStats {
        let s = self.state.get();
        ChannelStats {
            total_points: s.total_points,
            window_len: s.window.len(),
            accumulated_change: s.accumulated_change,
            net_change: match (s.first_value, s.last) {
                (Some(first), Some(last)) => last.value - first,
                _ => 0.0,
            },
            last: s.last,
        }
    }
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use crate::test_props::{assert_codec_roundtrip, data_point, equation, key};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any virtual-channel state survives the persistence codec
        /// unchanged.
        #[test]
        fn virtual_state_roundtrips(
            (org, inputs, equation, aggregates, latest_inputs) in (
                key(),
                proptest::collection::vec(key(), 0..4),
                equation(),
                any::<bool>(),
                proptest::collection::vec(proptest::option::of(-1e9f64..1e9), 0..4),
            ),
            (window, total_points, accumulated_change, first_value, last) in (
                proptest::collection::vec(data_point(), 0..6),
                any::<u64>(),
                0.0f64..1e9,
                proptest::option::of(-1e9f64..1e9),
                proptest::option::of(data_point()),
            ),
        ) {
            assert_codec_roundtrip(&VirtualState {
                org,
                inputs,
                equation,
                aggregates,
                latest_inputs,
                window: window.into(),
                total_points,
                accumulated_change,
                first_value,
                last,
            });
        }
    }
}
