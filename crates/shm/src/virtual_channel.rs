//! The `VirtualSensorChannel` actor: a continuously derived stream.
//!
//! Figure 4 specializes `Sensor Channel` into physical and *virtual*
//! channels, the latter computing an equation over potentially multiple
//! physical channels. In the paper's benchmark every tenth sensor carries
//! a virtual channel summing its two physical channels; physical channels
//! push their fresh points here, and each incoming point yields one
//! derived point computed from the latest value of every input.

use std::collections::VecDeque;
use std::sync::Arc;

use aodb_runtime::{Actor, ActorContext, Handler};
use aodb_store::tseries::SeriesStore;
use serde::{Deserialize, Serialize};

use crate::aggregator::{aggregator_key, Aggregator};
use crate::env::ShmEnv;
use crate::messages::{
    ChannelStats, ConfigureVirtual, GetChannelStats, GetLatest, PushDerived, QueryRange,
    RecordSamples,
};
use crate::physical::{channel_series_key, query_window};
use crate::sidecar;
use crate::types::{AggregateLevel, DataPoint, Equation};
use aodb_core::Persisted;

#[derive(Serialize, Deserialize)]
pub(crate) struct VirtualState {
    org: String,
    inputs: Vec<String>,
    equation: Equation,
    aggregates: bool,
    /// Latest value seen per input (equation operands).
    latest_inputs: Vec<Option<f64>>,
    window: VecDeque<DataPoint>,
    total_points: u64,
    accumulated_change: f64,
    first_value: Option<f64>,
    last: Option<DataPoint>,
}

impl Default for VirtualState {
    fn default() -> Self {
        VirtualState {
            org: String::new(),
            inputs: Vec::new(),
            equation: Equation::Sum,
            aggregates: false,
            latest_inputs: Vec::new(),
            window: VecDeque::new(),
            total_points: 0,
            accumulated_change: 0.0,
            first_value: None,
            last: None,
        }
    }
}

/// The virtual channel's data-plane fields, shipped as series metadata
/// on the columnar path (see `ChannelSideCar` in `physical.rs`).
/// `latest_inputs` rides along so the equation operands survive a
/// restart with the derived points they produced.
#[derive(Default, Serialize, Deserialize)]
pub(crate) struct VirtualSideCar {
    total_points: u64,
    accumulated_change: f64,
    first_value: Option<f64>,
    last: Option<DataPoint>,
    latest_inputs: Vec<Option<f64>>,
}

impl VirtualSideCar {
    /// Compact fixed-layout encoding — same hot-path rationale as
    /// `ChannelSideCar::encode` (see `sidecar.rs`).
    fn encode(&self) -> Vec<u8> {
        let mut w = sidecar::Writer::new();
        w.u64(self.total_points);
        w.f64(self.accumulated_change);
        w.opt_f64(self.first_value);
        w.opt_point(self.last);
        w.opt_f64_list(&self.latest_inputs);
        w.finish()
    }

    fn decode(bytes: &[u8]) -> Result<Self, sidecar::SideCarDecodeError> {
        let mut r = sidecar::Reader::new(bytes)?;
        Ok(VirtualSideCar {
            total_points: r.u64()?,
            accumulated_change: r.f64()?,
            first_value: r.opt_f64()?,
            last: r.opt_point()?,
            latest_inputs: r.opt_f64_list()?,
        })
    }

    fn capture(s: &VirtualState) -> Self {
        VirtualSideCar {
            total_points: s.total_points,
            accumulated_change: s.accumulated_change,
            first_value: s.first_value,
            last: s.last,
            latest_inputs: s.latest_inputs.clone(),
        }
    }

    fn apply(self, s: &mut VirtualState) {
        s.total_points = self.total_points;
        s.accumulated_change = self.accumulated_change;
        s.first_value = self.first_value;
        s.last = self.last;
        // Only overlay operands when the shape matches the configured
        // inputs (a reconfiguration may have changed the arity).
        if self.latest_inputs.len() == s.latest_inputs.len() {
            s.latest_inputs = self.latest_inputs;
        }
    }
}

/// Applies one pushed batch: updates the matching operand and derives
/// one point per input point. `window_capacity` 0 = keep no window.
fn derive_points(
    s: &mut VirtualState,
    msg: &PushDerived,
    window_capacity: usize,
) -> Vec<DataPoint> {
    let Some(idx) = s.inputs.iter().position(|i| i == &msg.source) else {
        return Vec::new(); // unknown source: configuration race; drop
    };
    let mut derived = Vec::with_capacity(msg.points.len());
    for p in &msg.points {
        s.latest_inputs[idx] = Some(p.value);
        let Some(value) = s.equation.apply(&s.latest_inputs) else {
            continue;
        };
        let dp = DataPoint {
            ts_ms: p.ts_ms,
            value,
        };
        if let Some(last) = s.last {
            s.accumulated_change += (value - last.value).abs();
        } else {
            s.first_value = Some(value);
        }
        s.last = Some(dp);
        if window_capacity > 0 {
            s.window.push_back(dp);
            if s.window.len() > window_capacity {
                s.window.pop_front();
            }
        }
        s.total_points += 1;
        derived.push(dp);
    }
    derived
}

/// The virtual sensor channel actor.
pub struct VirtualSensorChannel {
    state: Persisted<VirtualState>,
    window_capacity: usize,
    /// Columnar point-stream engine; `None` = KV-blob mode.
    series: Option<Arc<dyn SeriesStore>>,
}

impl VirtualSensorChannel {
    /// Registers the actor type.
    pub fn register(rt: &aodb_runtime::Runtime, env: ShmEnv) {
        rt.register(move |id| VirtualSensorChannel {
            state: env.persisted_data(Self::TYPE_NAME, &id.key),
            window_capacity: env.window_capacity,
            series: env.series.clone(),
        });
    }
}

impl Actor for VirtualSensorChannel {
    const TYPE_NAME: &'static str = "shm.virtual-channel";
    fn declared_calls() -> &'static [aodb_runtime::CallDecl] {
        // Derived points cascade into this channel's aggregate pyramid.
        const CALLS: &[aodb_runtime::CallDecl] = &[aodb_runtime::CallDecl::send("shm.aggregator")];
        CALLS
    }

    fn on_activate(&mut self, ctx: &mut ActorContext<'_>) {
        self.state.load_or_default();
        if let Some(series) = &self.series {
            let key = channel_series_key(Self::TYPE_NAME, &ctx.key().to_string());
            if let Ok(rec) = series.recover(&key) {
                // Empty meta: the series committed nothing, so reset
                // the KV blob's data-plane fields, which may be ahead
                // of the store after a crash wiped an in-flight append
                // (see the physical channel's on_activate).
                let overlay = if rec.meta.is_empty() {
                    Some(VirtualSideCar::default())
                } else {
                    VirtualSideCar::decode(&rec.meta).ok()
                };
                if let Some(sidecar) = overlay {
                    sidecar.apply(self.state.get_mut_untracked());
                }
            }
        }
    }

    fn on_deactivate(&mut self, _ctx: &mut ActorContext<'_>) {
        self.state.flush();
    }
}

impl Handler<ConfigureVirtual> for VirtualSensorChannel {
    fn handle(&mut self, msg: ConfigureVirtual, _ctx: &mut ActorContext<'_>) {
        self.state.mutate(|s| {
            s.org = msg.org;
            s.latest_inputs = vec![None; msg.inputs.len()];
            s.inputs = msg.inputs;
            s.equation = msg.equation;
            s.aggregates = msg.aggregates;
        });
    }
}

impl Handler<PushDerived> for VirtualSensorChannel {
    fn handle(&mut self, msg: PushDerived, ctx: &mut ActorContext<'_>) {
        let capacity = self.window_capacity;
        let derived: Vec<DataPoint> = if let Some(series) = &self.series {
            // Columnar path: derive in memory, then commit the derived
            // points and the sidecar (stats + operands) in one append.
            let s = self.state.get_mut_untracked();
            let derived = derive_points(s, &msg, 0);
            let meta = VirtualSideCar::capture(s).encode();
            let points: Vec<(u64, f64)> = derived.iter().map(|p| (p.ts_ms, p.value)).collect();
            let _ = series.append_batch(
                &channel_series_key(Self::TYPE_NAME, &ctx.key().to_string()),
                &points,
                &meta,
            );
            derived
        } else {
            self.state.mutate(|s| derive_points(s, &msg, capacity))
        };
        if !derived.is_empty() && self.state.get().aggregates {
            let key = aggregator_key(&ctx.key().to_string(), AggregateLevel::Hour);
            let _ = ctx.actor_ref::<Aggregator>(key).tell(RecordSamples {
                points: derived.into(),
            });
        }
    }
}

impl Handler<GetLatest> for VirtualSensorChannel {
    fn handle(&mut self, _msg: GetLatest, _ctx: &mut ActorContext<'_>) -> Option<DataPoint> {
        self.state.get().last
    }
}

impl Handler<QueryRange> for VirtualSensorChannel {
    fn handle(&mut self, msg: QueryRange, ctx: &mut ActorContext<'_>) -> Vec<DataPoint> {
        if let Some(series) = &self.series {
            let key = channel_series_key(Self::TYPE_NAME, &ctx.key().to_string());
            return series
                .scan_range(&key, msg.from_ms, msg.to_ms, msg.limit)
                .map(|points| {
                    points
                        .into_iter()
                        .map(|(ts_ms, value)| DataPoint { ts_ms, value })
                        .collect()
                })
                .unwrap_or_default();
        }
        query_window(&self.state.get().window, msg)
    }
}

impl Handler<GetChannelStats> for VirtualSensorChannel {
    fn handle(&mut self, _msg: GetChannelStats, _ctx: &mut ActorContext<'_>) -> ChannelStats {
        let s = self.state.get();
        ChannelStats {
            total_points: s.total_points,
            window_len: s.window.len(),
            accumulated_change: s.accumulated_change,
            net_change: match (s.first_value, s.last) {
                (Some(first), Some(last)) => last.value - first,
                _ => 0.0,
            },
            last: s.last,
        }
    }
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use crate::test_props::{assert_codec_roundtrip, data_point, equation, key};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any virtual-channel state survives the persistence codec
        /// unchanged.
        #[test]
        fn virtual_state_roundtrips(
            (org, inputs, equation, aggregates, latest_inputs) in (
                key(),
                proptest::collection::vec(key(), 0..4),
                equation(),
                any::<bool>(),
                proptest::collection::vec(proptest::option::of(-1e9f64..1e9), 0..4),
            ),
            (window, total_points, accumulated_change, first_value, last) in (
                proptest::collection::vec(data_point(), 0..6),
                any::<u64>(),
                0.0f64..1e9,
                proptest::option::of(-1e9f64..1e9),
                proptest::option::of(data_point()),
            ),
        ) {
            assert_codec_roundtrip(&VirtualState {
                org,
                inputs,
                equation,
                aggregates,
                latest_inputs,
                window: window.into(),
                total_points,
                accumulated_change,
                first_value,
                last,
            });
        }
    }
}
