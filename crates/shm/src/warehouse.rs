//! Historical analytics export: the third component of the paper's data
//! platform architecture (Section 5) — "data recorded in the storage
//! system can be exported into a classic star schema implemented in the
//! analytical database".
//!
//! The star schema lives in the same [`aodb_store::StateStore`] under the
//! `warehouse` namespace:
//!
//! * **Fact table** `fact:{org}` — one row per (channel, time bucket) with
//!   the additive measures (count, sum, min, max, sum of squares), keyed
//!   so a partition scan yields an organization's complete history.
//! * **Dimension tables** `dim-channel` and `dim-org` — descriptive
//!   attributes joined by key.
//!
//! [`WarehouseExporter`] pulls hourly aggregates out of the online
//! aggregator actors and writes them down; [`WarehouseReader`] serves the
//! warehouse-style queries (slice by time, roll up by channel or bucket)
//! that the paper routes *away* from the online actor tier.

use std::sync::Arc;

use aodb_store::{codec, Key, StateStore, StoreError, StoreResult};
use serde::{Deserialize, Serialize};

use crate::platform::{ShmClient, Topology};
use crate::types::{Aggregate, AggregateLevel};

/// One fact row: a channel × time-bucket cell of measures.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FactRow {
    /// Organization key (degenerate dimension; also the partition).
    pub org: String,
    /// Channel key (dimension foreign key).
    pub channel: String,
    /// Bucket start (ms) at the export granularity.
    pub bucket_start_ms: u64,
    /// The additive measures.
    pub measures: Aggregate,
}

/// Channel dimension row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChannelDim {
    /// Channel key.
    pub channel: String,
    /// Owning sensor key.
    pub sensor: String,
    /// Owning organization key.
    pub org: String,
    /// Whether the channel is virtual (derived).
    pub is_virtual: bool,
}

/// Organization dimension row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OrgDim {
    /// Organization key.
    pub org: String,
    /// Number of sensors at export time.
    pub sensors: usize,
    /// Number of channels at export time.
    pub channels: usize,
}

/// Outcome of one export pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExportSummary {
    /// Fact rows written.
    pub facts: u64,
    /// Dimension rows written.
    pub dims: u64,
    /// Channels that had no data to export.
    pub empty_channels: u64,
}

fn fact_key(org: &str, channel: &str, bucket_start_ms: u64) -> Key {
    // Zero-padded bucket keeps sort order = time order within a channel.
    Key::with_sort(
        "warehouse",
        &format!("fact:{org}"),
        &format!("{channel}|{bucket_start_ms:020}"),
    )
}

/// Extract–load job from the online aggregator actors into the warehouse.
pub struct WarehouseExporter {
    store: Arc<dyn StateStore>,
}

impl WarehouseExporter {
    /// Exporter writing to `store`.
    pub fn new(store: Arc<dyn StateStore>) -> Self {
        WarehouseExporter { store }
    }

    /// Exports every channel of `topology` at `level` granularity over
    /// `[from_ms, to_ms]`. Re-exporting the same range is idempotent
    /// (facts are upserts keyed by channel × bucket).
    pub fn export(
        &self,
        client: &ShmClient,
        topology: &Topology,
        level: AggregateLevel,
        from_ms: u64,
        to_ms: u64,
    ) -> StoreResult<ExportSummary> {
        let mut summary = ExportSummary::default();
        for org in &topology.orgs {
            let mut channel_count = 0usize;
            for sensor in &org.sensors {
                let channels = sensor
                    .physical
                    .iter()
                    .map(|c| (c.clone(), false))
                    .chain(sensor.virtual_channel.iter().map(|c| (c.clone(), true)));
                for (channel, is_virtual) in channels {
                    channel_count += 1;
                    let buckets = client
                        .aggregates(&channel, level, from_ms, to_ms)
                        .map_err(|e| StoreError::Io(e.to_string()))?
                        .wait_for(std::time::Duration::from_secs(30))
                        .map_err(|e| StoreError::Io(e.to_string()))?;
                    if buckets.is_empty() {
                        summary.empty_channels += 1;
                    }
                    for (bucket_start_ms, measures) in buckets {
                        let row = FactRow {
                            org: org.key.clone(),
                            channel: channel.clone(),
                            bucket_start_ms,
                            measures,
                        };
                        self.store.put(
                            &fact_key(&org.key, &channel, bucket_start_ms),
                            codec::encode_state(&row)?,
                        )?;
                        summary.facts += 1;
                    }
                    let dim = ChannelDim {
                        channel: channel.clone(),
                        sensor: sensor.key.clone(),
                        org: org.key.clone(),
                        is_virtual,
                    };
                    self.store.put(
                        &Key::with_sort("warehouse", "dim-channel", &channel),
                        codec::encode_state(&dim)?,
                    )?;
                    summary.dims += 1;
                }
            }
            let dim = OrgDim {
                org: org.key.clone(),
                sensors: org.sensors.len(),
                channels: channel_count,
            };
            self.store.put(
                &Key::with_sort("warehouse", "dim-org", &org.key),
                codec::encode_state(&dim)?,
            )?;
            summary.dims += 1;
        }
        Ok(summary)
    }
}

/// Read side of the warehouse: the historical queries the paper keeps off
/// the online actor tier.
pub struct WarehouseReader {
    store: Arc<dyn StateStore>,
}

impl WarehouseReader {
    /// Reader over `store`.
    pub fn new(store: Arc<dyn StateStore>) -> Self {
        WarehouseReader { store }
    }

    /// All fact rows of an organization in `[from_ms, to_ms]`, in
    /// (channel, time) order.
    pub fn facts(&self, org: &str, from_ms: u64, to_ms: u64) -> StoreResult<Vec<FactRow>> {
        let prefix = Key::partition_prefix("warehouse", &format!("fact:{org}"));
        let mut rows = Vec::new();
        for (_, bytes) in self.store.scan_prefix(&prefix)? {
            let row: FactRow = codec::decode_state(&bytes)?;
            if row.bucket_start_ms >= from_ms && row.bucket_start_ms <= to_ms {
                rows.push(row);
            }
        }
        Ok(rows)
    }

    /// Rolls an organization's facts up per channel (the "which channel
    /// moved most" analyst query).
    pub fn rollup_by_channel(
        &self,
        org: &str,
        from_ms: u64,
        to_ms: u64,
    ) -> StoreResult<Vec<(String, Aggregate)>> {
        let mut by_channel: std::collections::BTreeMap<String, Aggregate> = Default::default();
        for row in self.facts(org, from_ms, to_ms)? {
            by_channel
                .entry(row.channel)
                .or_default()
                .merge(&row.measures);
        }
        Ok(by_channel.into_iter().collect())
    }

    /// Rolls an organization's facts up per time bucket (the trend-plot
    /// query).
    pub fn rollup_by_bucket(
        &self,
        org: &str,
        from_ms: u64,
        to_ms: u64,
    ) -> StoreResult<Vec<(u64, Aggregate)>> {
        let mut by_bucket: std::collections::BTreeMap<u64, Aggregate> = Default::default();
        for row in self.facts(org, from_ms, to_ms)? {
            by_bucket
                .entry(row.bucket_start_ms)
                .or_default()
                .merge(&row.measures);
        }
        Ok(by_bucket.into_iter().collect())
    }

    /// Channel dimension lookup.
    pub fn channel_dim(&self, channel: &str) -> StoreResult<Option<ChannelDim>> {
        match self
            .store
            .get(&Key::with_sort("warehouse", "dim-channel", channel))?
        {
            Some(bytes) => Ok(Some(codec::decode_state(&bytes)?)),
            None => Ok(None),
        }
    }

    /// Organization dimension lookup.
    pub fn org_dim(&self, org: &str) -> StoreResult<Option<OrgDim>> {
        match self
            .store
            .get(&Key::with_sort("warehouse", "dim-org", org))?
        {
            Some(bytes) => Ok(Some(codec::decode_state(&bytes)?)),
            None => Ok(None),
        }
    }
}
