//! Access control and multi-tenant isolation tests (non-functional
//! requirement 7): authentication, role enforcement, tenant scoping of
//! tokens and channels, revocation, and session persistence.

use std::sync::Arc;

use aodb_runtime::Runtime;
use aodb_shm::auth::{AccessError, AccessLevel, Authenticate, GrantAccess, SecureShmClient};
use aodb_shm::types::DataPoint;
use aodb_shm::{provision, register_all, ShmClient, ShmEnv, TenantGuard, Topology, TopologySpec};
use aodb_store::{MemStore, StateStore};

fn setup() -> (Runtime, Topology, Arc<dyn StateStore>) {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = Runtime::single(2);
    register_all(&rt, ShmEnv::paper_default(Arc::clone(&store)));
    // Two tenants of 10 sensors each.
    let topology = Topology::layout(
        20,
        TopologySpec {
            sensors_per_org: 10,
            ..Default::default()
        },
    );
    provision(&rt, &topology, |_| None).unwrap();
    (rt, topology, store)
}

fn grant(rt: &Runtime, org: &str, user: &str, secret: &str, level: AccessLevel) {
    rt.actor_ref::<TenantGuard>(org)
        .call(GrantAccess {
            user: user.into(),
            secret: secret.into(),
            level,
        })
        .unwrap();
}

#[test]
fn login_requires_correct_credentials() {
    let (rt, _topology, _store) = setup();
    grant(&rt, "org-0", "inge", "hunter2", AccessLevel::Operator);

    let client = ShmClient::new(rt.handle());
    assert!(SecureShmClient::login(client.clone(), "org-0", "inge", "hunter2").is_ok());
    assert!(matches!(
        SecureShmClient::login(client.clone(), "org-0", "inge", "wrong"),
        Err(AccessError::InvalidToken)
    ));
    assert!(matches!(
        SecureShmClient::login(client, "org-0", "nobody", "hunter2"),
        Err(AccessError::InvalidToken)
    ));
    rt.shutdown();
}

#[test]
fn roles_gate_operations() {
    let (rt, topology, _store) = setup();
    grant(&rt, "org-0", "viewer", "v", AccessLevel::Viewer);
    grant(&rt, "org-0", "op", "o", AccessLevel::Operator);
    let client = ShmClient::new(rt.handle());
    let channel = topology.orgs[0].sensors[0].physical[0].clone();
    client
        .ingest(
            &channel,
            vec![DataPoint {
                ts_ms: 0,
                value: 1.0,
            }],
        )
        .unwrap()
        .wait()
        .unwrap();

    let viewer = SecureShmClient::login(client.clone(), "org-0", "viewer", "v").unwrap();
    // Viewer can see live data…
    assert!(viewer.live_data().is_ok());
    // …but not raw data.
    match viewer.raw_range(&channel, 0, 1000) {
        Err(AccessError::Forbidden { required, held }) => {
            assert_eq!(required, AccessLevel::Operator);
            assert_eq!(held, AccessLevel::Viewer);
        }
        other => panic!("expected Forbidden, got {other:?}"),
    }

    let op = SecureShmClient::login(client, "org-0", "op", "o").unwrap();
    assert_eq!(op.raw_range(&channel, 0, 1000).unwrap().len(), 1);
    assert!(op.recent_alerts(10).is_ok());
    rt.shutdown();
}

#[test]
fn tokens_do_not_cross_tenants() {
    let (rt, topology, _store) = setup();
    grant(&rt, "org-0", "alice", "a", AccessLevel::Admin);
    let client = ShmClient::new(rt.handle());
    let alice = SecureShmClient::login(client.clone(), "org-0", "alice", "a").unwrap();

    // Alice's (org-0) token presented to org-1's guard is rejected even
    // at the raw message level.
    let org1_guard = rt.actor_ref::<TenantGuard>("org-1");
    assert_eq!(
        org1_guard
            .call(aodb_shm::auth::Validate(alice.token()))
            .unwrap(),
        None
    );

    // And Alice cannot query org-1's channels through her org-0 session:
    // the channel does not belong to her tenant.
    let foreign_channel = topology.orgs[1].sensors[0].physical[0].clone();
    assert!(alice.raw_range(&foreign_channel, 0, 1000).is_err());
    rt.shutdown();
}

#[test]
fn revocation_ends_the_session() {
    let (rt, _topology, _store) = setup();
    grant(&rt, "org-0", "bob", "b", AccessLevel::Operator);
    let client = ShmClient::new(rt.handle());
    let bob = SecureShmClient::login(client.clone(), "org-0", "bob", "b").unwrap();
    assert!(bob.live_data().is_ok());

    // A second session for the logout, so we can keep probing with the
    // first token after revocation.
    let bob2 = SecureShmClient::login(client.clone(), "org-0", "bob", "b").unwrap();
    let token1 = bob.token();
    assert!(bob.logout().unwrap());

    // Token 1 is dead; token 2 still works.
    let guard = rt.actor_ref::<TenantGuard>("org-0");
    assert_eq!(guard.call(aodb_shm::auth::Validate(token1)).unwrap(), None);
    assert!(bob2.live_data().is_ok());
    rt.shutdown();
}

#[test]
fn sessions_survive_guard_deactivation() {
    let (rt, _topology, store) = setup();
    grant(&rt, "org-0", "carol", "c", AccessLevel::Viewer);
    let client = ShmClient::new(rt.handle());
    let carol = SecureShmClient::login(client, "org-0", "carol", "c").unwrap();
    rt.shutdown(); // guard state (users + sessions) flushed to the store

    let rt = Runtime::single(2);
    register_all(&rt, ShmEnv::paper_default(Arc::clone(&store)));
    let guard = rt.actor_ref::<TenantGuard>("org-0");
    // The old session token validates against the re-activated guard.
    let validated = guard.call(aodb_shm::auth::Validate(carol.token())).unwrap();
    assert_eq!(validated, Some(("carol".to_string(), AccessLevel::Viewer)));
    // And credentials still authenticate.
    assert!(guard
        .call(Authenticate {
            user: "carol".into(),
            secret: "c".into()
        })
        .unwrap()
        .is_some());
    rt.shutdown();
}
