//! Ingest-gateway tests: batching, backpressure, flush (explicit, timer,
//! and drain-on-shutdown), and end-to-end delivery into channels.

use std::sync::Arc;
use std::time::Duration;

use aodb_runtime::Runtime;
use aodb_shm::gateway::{
    ConfigureGateway, FlushGateway, GatewayAck, GatewayConfig, GatewayIngest, GatewayStats,
};
use aodb_shm::types::DataPoint;
use aodb_shm::{provision, register_all, IngestGateway, ShmClient, ShmEnv, Topology, TopologySpec};
use aodb_store::{MemStore, StateStore};

const T: Duration = Duration::from_secs(10);

fn dp(ts_ms: u64) -> DataPoint {
    DataPoint { ts_ms, value: 1.0 }
}

fn setup() -> (Runtime, Topology, ShmClient) {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = Runtime::single(2);
    register_all(&rt, ShmEnv::paper_default(store));
    let topology = Topology::layout(2, TopologySpec::default());
    provision(&rt, &topology, |_| None).unwrap();
    let client = ShmClient::new(rt.handle());
    (rt, topology, client)
}

#[test]
fn gateway_coalesces_small_packets_into_batches() {
    let (rt, topology, client) = setup();
    let gw = rt.actor_ref::<IngestGateway>("gw-0");
    gw.call(ConfigureGateway(GatewayConfig {
        flush_batch: 10,
        capacity_points: 1000,
    }))
    .unwrap();
    let channel = topology.physical_channels().next().unwrap().to_string();

    // 10 packets of 2 points: the gateway should forward exactly 2
    // batches of 10 instead of 10 tiny ingests.
    for i in 0..10u64 {
        let ack = gw
            .call(GatewayIngest {
                channel: channel.clone(),
                points: vec![dp(i * 2), dp(i * 2 + 1)],
            })
            .unwrap();
        assert_eq!(ack, GatewayAck::Accepted);
    }
    assert!(rt.quiesce(T));
    let stats = gw.call(GatewayStats).unwrap();
    assert_eq!(stats.forwarded_batches, 2);
    assert_eq!(stats.buffered_points, 0);
    let channel_stats = client.channel_stats(&channel).unwrap().wait_for(T).unwrap();
    assert_eq!(channel_stats.total_points, 20);
    rt.shutdown();
}

#[test]
fn explicit_flush_drains_partial_batches() {
    let (rt, topology, client) = setup();
    let gw = rt.actor_ref::<IngestGateway>("gw-1");
    gw.call(ConfigureGateway(GatewayConfig {
        flush_batch: 100,
        capacity_points: 1000,
    }))
    .unwrap();
    let channel = topology.physical_channels().next().unwrap().to_string();

    gw.call(GatewayIngest {
        channel: channel.clone(),
        points: vec![dp(1), dp(2), dp(3)],
    })
    .unwrap();
    // Below flush_batch: nothing forwarded yet.
    assert_eq!(
        client
            .channel_stats(&channel)
            .unwrap()
            .wait_for(T)
            .unwrap()
            .total_points,
        0
    );
    assert_eq!(gw.call(FlushGateway).unwrap(), 3);
    assert!(rt.quiesce(T));
    assert_eq!(
        client
            .channel_stats(&channel)
            .unwrap()
            .wait_for(T)
            .unwrap()
            .total_points,
        3
    );
    rt.shutdown();
}

#[test]
fn periodic_flush_timer_works() {
    let (rt, topology, client) = setup();
    let gw = rt.actor_ref::<IngestGateway>("gw-2");
    gw.call(ConfigureGateway(GatewayConfig {
        flush_batch: 1000,
        capacity_points: 10_000,
    }))
    .unwrap();
    let channel = topology.physical_channels().next().unwrap().to_string();
    let _timer = rt.schedule_interval(&gw, FlushGateway, Duration::from_millis(20));

    gw.call(GatewayIngest {
        channel: channel.clone(),
        points: vec![dp(1), dp(2)],
    })
    .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let n = client
            .channel_stats(&channel)
            .unwrap()
            .wait_for(T)
            .unwrap()
            .total_points;
        if n == 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "timer flush never delivered"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    rt.shutdown();
}

#[test]
fn full_buffer_rejects_with_backpressure() {
    let (rt, topology, _client) = setup();
    let gw = rt.actor_ref::<IngestGateway>("gw-3");
    gw.call(ConfigureGateway(GatewayConfig {
        flush_batch: 1000,
        capacity_points: 10,
    }))
    .unwrap();
    let channel = topology.physical_channels().next().unwrap().to_string();

    assert_eq!(
        gw.call(GatewayIngest {
            channel: channel.clone(),
            points: (0..10).map(dp).collect()
        })
        .unwrap(),
        GatewayAck::Accepted
    );
    assert_eq!(
        gw.call(GatewayIngest {
            channel: channel.clone(),
            points: vec![dp(99)]
        })
        .unwrap(),
        GatewayAck::Rejected
    );
    let stats = gw.call(GatewayStats).unwrap();
    assert_eq!(stats.rejected, 1);
    // Draining restores acceptance.
    gw.call(FlushGateway).unwrap();
    assert_eq!(
        gw.call(GatewayIngest {
            channel,
            points: vec![dp(100)]
        })
        .unwrap(),
        GatewayAck::Accepted
    );
    rt.shutdown();
}

#[test]
fn shutdown_drains_buffered_points() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let channel;
    {
        let rt = Runtime::single(2);
        register_all(&rt, ShmEnv::paper_default(Arc::clone(&store)));
        let topology = Topology::layout(2, TopologySpec::default());
        provision(&rt, &topology, |_| None).unwrap();
        channel = topology.physical_channels().next().unwrap().to_string();
        let gw = rt.actor_ref::<IngestGateway>("gw-4");
        gw.call(ConfigureGateway(GatewayConfig {
            flush_batch: 1000,
            capacity_points: 1000,
        }))
        .unwrap();
        gw.call(GatewayIngest {
            channel: channel.clone(),
            points: vec![dp(1), dp(2)],
        })
        .unwrap();
        // No flush: the points only exist in the gateway buffer. Orderly
        // shutdown must push them into the channel, whose deactivation
        // then persists them.
        rt.shutdown();
    }
    let rt = Runtime::single(2);
    register_all(&rt, ShmEnv::paper_default(store));
    let client = ShmClient::new(rt.handle());
    assert_eq!(
        client
            .channel_stats(&channel)
            .unwrap()
            .wait_for(T)
            .unwrap()
            .total_points,
        2
    );
    rt.shutdown();
}
