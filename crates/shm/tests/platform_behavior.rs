//! End-to-end tests of the SHM platform: ingest, derived streams, alerts,
//! aggregation cascade, online queries, persistence, and multi-silo
//! deployment.

use std::sync::Arc;
use std::time::Duration;

use aodb_runtime::{NetConfig, PreferLocalPlacement, Runtime, SiloId};
use aodb_shm::messages::{GetSensorInfo, UpdatePosition};
use aodb_shm::types::{AggregateLevel, AlertKind, DataPoint, Position, Threshold};
use aodb_shm::{provision, register_all, Sensor, ShmClient, ShmEnv, Topology, TopologySpec};
use aodb_store::{MemStore, StateStore};

fn dp(ts_ms: u64, value: f64) -> DataPoint {
    DataPoint { ts_ms, value }
}

fn small_platform(
    store: &Arc<dyn StateStore>,
    sensors: usize,
    spec: TopologySpec,
) -> (Runtime, Topology) {
    let rt = Runtime::single(4);
    register_all(&rt, ShmEnv::paper_default(Arc::clone(store)));
    let topology = Topology::layout(sensors, spec);
    provision(&rt, &topology, |_| None).unwrap();
    (rt, topology)
}

#[test]
fn ingest_updates_window_and_accumulated_change() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let (rt, topology) = small_platform(&store, 1, TopologySpec::default());
    let client = ShmClient::new(rt.handle());
    let channel = topology.physical_channels().next().unwrap();

    let accepted = client
        .ingest(channel, vec![dp(0, 1.0), dp(100, 3.0), dp(200, 2.0)])
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    assert_eq!(accepted, 3);

    let stats = client
        .channel_stats(channel)
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    assert_eq!(stats.total_points, 3);
    assert_eq!(stats.window_len, 3);
    assert_eq!(stats.accumulated_change, 3.0); // |3-1| + |2-3|
    assert_eq!(stats.net_change, 1.0); // 2 - 1
    assert_eq!(stats.last, Some(dp(200, 2.0)));
    rt.shutdown();
}

#[test]
fn raw_range_query_returns_requested_window() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let (rt, topology) = small_platform(&store, 1, TopologySpec::default());
    let client = ShmClient::new(rt.handle());
    let channel = topology.physical_channels().next().unwrap();

    let points: Vec<DataPoint> = (0..100).map(|i| dp(i * 100, i as f64)).collect();
    client.ingest(channel, points).unwrap().wait().unwrap();

    let hits = client
        .raw_range(channel, 2_000, 4_000, 0)
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    assert_eq!(hits.len(), 21);
    assert_eq!(hits.first().unwrap().ts_ms, 2_000);
    assert_eq!(hits.last().unwrap().ts_ms, 4_000);
    rt.shutdown();
}

#[test]
fn virtual_channel_derives_sum_of_inputs() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let (rt, topology) = small_platform(&store, 1, TopologySpec::default());
    let client = ShmClient::new(rt.handle());
    let sensor = &topology.orgs[0].sensors[0];
    let vkey = sensor
        .virtual_channel
        .as_ref()
        .expect("sensor 0 has a virtual channel");

    client
        .ingest(&sensor.physical[0], vec![dp(0, 10.0)])
        .unwrap()
        .wait()
        .unwrap();
    client
        .ingest(&sensor.physical[1], vec![dp(5, 32.0)])
        .unwrap()
        .wait()
        .unwrap();
    assert!(rt.quiesce(Duration::from_secs(5)));

    let stats = client
        .virtual_channel_stats(vkey)
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    // Two derived points: 10 (only input 0 known) then 42 (both known).
    assert_eq!(stats.total_points, 2);
    assert_eq!(stats.last.unwrap().value, 42.0);
    rt.shutdown();
}

#[test]
fn threshold_breach_raises_alert_in_org_log() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let spec = TopologySpec {
        threshold: Threshold {
            high: Some(100.0),
            ..Default::default()
        },
        ..Default::default()
    };
    let (rt, topology) = small_platform(&store, 1, spec);
    let client = ShmClient::new(rt.handle());
    let channel = topology.physical_channels().next().unwrap();
    let org = topology.orgs[0].key.as_str();

    client
        .ingest(
            channel,
            vec![dp(0, 50.0), dp(1, 150.0), dp(2, 160.0), dp(3, 40.0)],
        )
        .unwrap()
        .wait()
        .unwrap();
    assert!(rt.quiesce(Duration::from_secs(5)));

    let alerts = client
        .recent_alerts(org, 10)
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    assert_eq!(alerts.len(), 1, "hysteresis: one alert per breach episode");
    assert_eq!(alerts[0].kind, AlertKind::AboveHigh);
    assert_eq!(alerts[0].value, 150.0);
    assert_eq!(&alerts[0].channel, channel);
    assert_eq!(client.alert_count(org).unwrap().wait().unwrap(), 1);
    rt.shutdown();
}

#[test]
fn live_data_gathers_every_channel_of_the_org() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let (rt, topology) = small_platform(&store, 10, TopologySpec::default());
    let client = ShmClient::new(rt.handle());
    let org = topology.orgs[0].key.as_str();

    // 10 sensors → 20 physical + 1 virtual = 21 channels.
    for (i, channel) in topology.physical_channels().enumerate() {
        client
            .ingest(channel, vec![dp(0, i as f64)])
            .unwrap()
            .wait()
            .unwrap();
    }
    assert!(rt.quiesce(Duration::from_secs(5)));

    let report = client
        .live_data(org)
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    assert_eq!(report.channels.len(), 21);
    let with_data = report.channels.iter().filter(|(_, p)| p.is_some()).count();
    assert_eq!(
        with_data, 21,
        "every channel (incl. virtual) must report a point"
    );
    rt.shutdown();
}

#[test]
fn live_data_on_empty_platform_completes() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let (rt, topology) = small_platform(&store, 2, TopologySpec::default());
    let client = ShmClient::new(rt.handle());
    let report = client
        .live_data(&topology.orgs[0].key)
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    assert!(report.channels.iter().all(|(_, p)| p.is_none()));
    rt.shutdown();
}

#[test]
fn aggregation_cascade_rolls_hours_into_days() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let (rt, topology) = small_platform(&store, 1, TopologySpec::default());
    let client = ShmClient::new(rt.handle());
    let channel = topology.physical_channels().next().unwrap();

    const HOUR: u64 = 3_600_000;
    // 3 points in hour 0, 2 in hour 1, 1 in hour 25 (day 1) — the arrival
    // in hour 1 closes hour 0; the arrival in hour 25 closes hour 1 and
    // day 0.
    for (ts, v) in [
        (0, 1.0),
        (HOUR / 2, 2.0),
        (HOUR - 1, 3.0),
        (HOUR, 10.0),
        (HOUR + 5, 20.0),
        (25 * HOUR, 100.0),
    ] {
        client
            .ingest(channel, vec![dp(ts, v)])
            .unwrap()
            .wait()
            .unwrap();
    }
    assert!(rt.quiesce(Duration::from_secs(5)));

    let hours = client
        .aggregates(channel, AggregateLevel::Hour, 0, 26 * HOUR)
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(hours.len(), 3);
    let hour0 = hours.iter().find(|(b, _)| *b == 0).unwrap().1;
    assert_eq!(hour0.count, 3);
    assert_eq!(hour0.sum, 6.0);
    assert_eq!(hour0.max, 3.0);

    let days = client
        .aggregates(channel, AggregateLevel::Day, 0, 26 * HOUR)
        .unwrap()
        .wait()
        .unwrap();
    // Day 0 contains the two closed hours (0 and 1): 5 points.
    let day0 = days
        .iter()
        .find(|(b, _)| *b == 0)
        .expect("day 0 rolled up")
        .1;
    assert_eq!(day0.count, 5);
    assert_eq!(day0.sum, 36.0);
    rt.shutdown();
}

#[test]
fn sensor_relocation_persists() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let (rt, topology) = small_platform(&store, 1, TopologySpec::default());
    let sensor_key = topology.orgs[0].sensors[0].key.as_str();
    let sensor = rt.actor_ref::<Sensor>(sensor_key);
    sensor
        .call(UpdatePosition(Position {
            x: 1.0,
            y: 2.0,
            z: 3.0,
        }))
        .unwrap();
    rt.shutdown();

    // Fresh runtime over the same store: position must survive.
    let rt = Runtime::single(2);
    register_all(&rt, ShmEnv::paper_default(Arc::clone(&store)));
    let info = rt
        .actor_ref::<Sensor>(sensor_key)
        .call(GetSensorInfo)
        .unwrap();
    assert_eq!(
        info.position,
        Position {
            x: 1.0,
            y: 2.0,
            z: 3.0
        }
    );
    assert_eq!(info.channels.len(), 3); // 2 physical + 1 virtual
    rt.shutdown();
}

#[test]
fn channel_data_survives_restart_via_deactivation_flush() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let channel_key;
    {
        let (rt, topology) = small_platform(&store, 1, TopologySpec::default());
        channel_key = topology.physical_channels().next().unwrap().to_string();
        let client = ShmClient::new(rt.handle());
        client
            .ingest(&channel_key, (0..50).map(|i| dp(i, i as f64)).collect())
            .unwrap()
            .wait()
            .unwrap();
        rt.shutdown(); // write-on-deactivate flushes the window
    }
    let rt = Runtime::single(2);
    register_all(&rt, ShmEnv::paper_default(Arc::clone(&store)));
    let client = ShmClient::new(rt.handle());
    let stats = client.channel_stats(&channel_key).unwrap().wait().unwrap();
    assert_eq!(stats.total_points, 50);
    assert_eq!(stats.window_len, 50);
    rt.shutdown();
}

#[test]
fn org_info_reflects_paper_provisioning_ratio() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let (rt, topology) = small_platform(&store, 100, TopologySpec::default());
    let client = ShmClient::new(rt.handle());
    let info = client
        .org_info(&topology.orgs[0].key)
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    assert_eq!(info.users.len(), 1);
    assert_eq!(info.projects.len(), 1);
    assert_eq!(info.sensors.len(), 100);
    assert_eq!(info.channels.len(), 210, "200 physical + 10 virtual");
    rt.shutdown();
}

#[test]
fn multi_silo_prefer_local_keeps_org_traffic_local() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = Runtime::builder()
        .silos(2, 2)
        .placement(PreferLocalPlacement)
        .network(NetConfig::lan())
        .build();
    register_all(&rt, ShmEnv::paper_default(Arc::clone(&store)));
    // Two orgs, one per silo.
    let topology = Topology::layout(
        20,
        TopologySpec {
            sensors_per_org: 10,
            ..Default::default()
        },
    );
    assert_eq!(topology.orgs.len(), 2);
    provision(&rt, &topology, |org_idx| Some(SiloId(org_idx as u32))).unwrap();

    let before = rt.metrics();
    // Ingest through each org's local gateway: all hops silo-local.
    for (org_idx, org) in topology.orgs.iter().enumerate() {
        let client = ShmClient::new(rt.handle_on(SiloId(org_idx as u32)));
        for sensor in &org.sensors {
            for channel in &sensor.physical {
                client
                    .ingest(channel, vec![dp(0, 1.0)])
                    .unwrap()
                    .wait()
                    .unwrap();
            }
        }
    }
    assert!(rt.quiesce(Duration::from_secs(5)));
    let after = rt.metrics();
    assert_eq!(
        after.remote_messages, before.remote_messages,
        "prefer-local + affine gateways must produce zero cross-silo hops"
    );
    rt.shutdown();
}
