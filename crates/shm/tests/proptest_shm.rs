//! Property-based tests of the SHM platform's pure logic: aggregate
//! algebra, bucket math, equations, and topology layout invariants.

use aodb_shm::types::{Aggregate, AggregateLevel, Equation};
use aodb_shm::{Topology, TopologySpec};
use proptest::prelude::*;

proptest! {
    /// Aggregate merge is associative and order-insensitive: any
    /// partitioning of a sample set merges to the same summary.
    #[test]
    fn aggregate_merge_is_partition_invariant(
        values in proptest::collection::vec(-1e6f64..1e6, 1..100),
        split in 0usize..100,
    ) {
        let split = split % values.len();
        let mut whole = Aggregate::default();
        for &v in &values {
            whole.record(v);
        }
        let mut left = Aggregate::default();
        let mut right = Aggregate::default();
        for &v in &values[..split] {
            left.record(v);
        }
        for &v in &values[split..] {
            right.record(v);
        }
        left.merge(&right);
        prop_assert_eq!(left.count, whole.count);
        prop_assert!((left.sum - whole.sum).abs() < 1e-6 * (1.0 + whole.sum.abs()));
        prop_assert_eq!(left.min, whole.min);
        prop_assert_eq!(left.max, whole.max);
    }

    /// Aggregate statistics match naive computations.
    #[test]
    fn aggregate_stats_match_naive(values in proptest::collection::vec(-1e3f64..1e3, 1..200)) {
        let mut agg = Aggregate::default();
        for &v in &values {
            agg.record(v);
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
        prop_assert!((agg.mean().unwrap() - mean).abs() < 1e-6);
        prop_assert!((agg.variance().unwrap() - var).abs() < 1e-3);
    }

    /// Bucket starts tile the timeline: every timestamp belongs to exactly
    /// the bucket `[start, start + width)`, and hour buckets nest in day
    /// buckets which nest in (30-day) month buckets.
    #[test]
    fn bucket_math_tiles_and_nests(ts in 0u64..10_000_000_000_000) {
        for level in [AggregateLevel::Hour, AggregateLevel::Day, AggregateLevel::Month] {
            let start = level.bucket_start(ts);
            prop_assert!(start <= ts);
            prop_assert!(ts < start + level.bucket_ms());
            prop_assert_eq!(start % level.bucket_ms(), 0);
        }
        let hour = AggregateLevel::Hour.bucket_start(ts);
        let day = AggregateLevel::Day.bucket_start(ts);
        prop_assert_eq!(AggregateLevel::Day.bucket_start(hour), day);
        let month = AggregateLevel::Month.bucket_start(ts);
        prop_assert_eq!(AggregateLevel::Month.bucket_start(day), month);
    }

    /// Sum and Mean relate as expected over any input pattern, and every
    /// equation yields None only when no input has data.
    #[test]
    fn equation_consistency(latest in proptest::collection::vec(proptest::option::of(-1e3f64..1e3), 0..6)) {
        let present: Vec<f64> = latest.iter().copied().flatten().collect();
        let sum = Equation::Sum.apply(&latest);
        let mean = Equation::Mean.apply(&latest);
        if present.is_empty() {
            prop_assert_eq!(sum, None);
            prop_assert_eq!(mean, None);
        } else {
            let s = sum.unwrap();
            prop_assert!((s - present.iter().sum::<f64>()).abs() < 1e-9);
            prop_assert!((mean.unwrap() - s / present.len() as f64).abs() < 1e-9);
        }
    }

    /// Topology layout invariants for arbitrary sensor counts and ratios:
    /// counts add up, keys are unique, org sizes are bounded by the spec.
    #[test]
    fn topology_layout_invariants(
        sensors in 0usize..400,
        per_org in 1usize..120,
        channels in 1usize..4,
        virtual_every in 0usize..12,
    ) {
        let spec = TopologySpec {
            sensors_per_org: per_org,
            channels_per_sensor: channels,
            virtual_every,
            ..Default::default()
        };
        let t = Topology::layout(sensors, spec);
        prop_assert_eq!(t.sensor_count(), sensors);
        prop_assert_eq!(t.physical_channel_count(), sensors * channels);
        let expected_orgs = sensors.div_ceil(per_org);
        prop_assert_eq!(t.orgs.len(), expected_orgs);
        for org in &t.orgs {
            prop_assert!(org.sensors.len() <= per_org);
        }
        // Every channel key is globally unique.
        let mut keys: Vec<&str> = t.physical_channels().collect();
        let before = keys.len();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), before);
        // Virtual channel ratio.
        if virtual_every > 0 {
            let expected_virtual: usize = t
                .orgs
                .iter()
                .map(|o| o.sensors.len().div_ceil(virtual_every))
                .sum();
            prop_assert_eq!(t.virtual_channel_count(), expected_virtual);
        } else {
            prop_assert_eq!(t.virtual_channel_count(), 0);
        }
    }
}
