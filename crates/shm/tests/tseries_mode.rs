//! End-to-end behavior of the SHM platform in columnar (tseries) mode:
//! the same actor API as KV mode, but `Ingest` appends compressed points
//! through the `SeriesStore` seam and range queries scan sealed blocks.

use std::sync::Arc;
use std::time::Duration;

use aodb_runtime::Runtime;
use aodb_shm::messages::Ingest;
use aodb_shm::types::{DataPoint, Threshold};
use aodb_shm::{provision, register_all, ShmClient, ShmEnv, Topology, TopologySpec};
use aodb_store::tseries::{SeriesStore, TsConfig, TsStore};
use aodb_store::{MemStore, StateStore};

fn dp(ts_ms: u64, value: f64) -> DataPoint {
    DataPoint { ts_ms, value }
}

/// Platform over `store` with a small-block tseries engine (seals every
/// 32 points so block boundaries get exercised quickly).
fn tseries_platform(
    store: &Arc<dyn StateStore>,
    sensors: usize,
    spec: TopologySpec,
) -> (Runtime, Topology, Arc<TsStore>) {
    let engine = Arc::new(TsStore::new(Arc::clone(store), TsConfig::sealing_every(32)));
    let rt = Runtime::single(4);
    register_all(
        &rt,
        ShmEnv::paper_default(Arc::clone(store))
            .with_series_store(Arc::clone(&engine) as Arc<dyn SeriesStore>),
    );
    let topology = Topology::layout(sensors, spec);
    provision(&rt, &topology, |_| None).unwrap();
    (rt, topology, engine)
}

#[test]
fn ingest_compresses_points_and_serves_range_queries() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let (rt, topology, engine) = tseries_platform(&store, 1, TopologySpec::default());
    let client = ShmClient::new(rt.handle());
    let channel = topology.physical_channels().next().unwrap();

    let points: Vec<DataPoint> = (0..100).map(|i| dp(i * 100, i as f64)).collect();
    let accepted = client
        .ingest(channel, points)
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    assert_eq!(accepted, 100);

    // Range query runs off the compressed blocks, same semantics as the
    // KV window query.
    let hits = client
        .raw_range(channel, 2_000, 4_000, 0)
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    assert_eq!(hits.len(), 21);
    assert_eq!(hits.first().unwrap().ts_ms, 2_000);
    assert_eq!(hits.last().unwrap().ts_ms, 4_000);
    let capped = client
        .raw_range(channel, 2_000, 4_000, 5)
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    assert_eq!(capped.len(), 5);

    // Stats stay exact, and 100 points sealed into 32-point blocks.
    let stats = client
        .channel_stats(channel)
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    assert_eq!(stats.total_points, 100);
    assert_eq!(stats.last, Some(dp(9_900, 99.0)));
    let series = engine.stats(&format!("shm.channel/{channel}"));
    assert!(series.sealed_blocks >= 3);
    assert_eq!(series.sealed_points + series.tail_points, 100);
    rt.shutdown();
}

#[test]
fn restart_recovers_stats_watermarks_and_points_from_series_store() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let spec = TopologySpec::default();
    let channel;
    {
        let (rt, topology, _) = tseries_platform(&store, 1, spec);
        channel = topology.physical_channels().next().unwrap().to_string();
        let client = ShmClient::new(rt.handle());
        let points: Vec<DataPoint> = (0..50).map(|i| dp(i * 10, i as f64)).collect();
        let r = client
            .channel(&channel)
            .ask(Ingest::deduped(points, 7, 3))
            .unwrap()
            .wait_for(Duration::from_secs(5))
            .unwrap();
        assert_eq!(r, 50);
        // Kill without graceful deactivation: durability must come from
        // the per-append tail records, not the on-deactivate blob flush.
        drop(rt);
    }

    let (rt, _, _) = tseries_platform(&store, 1, spec);
    let client = ShmClient::new(rt.handle());
    let stats = client
        .channel_stats(&channel)
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    assert_eq!(stats.total_points, 50, "stats recovered from sidecar");
    assert_eq!(stats.last, Some(dp(490, 49.0)));

    // The dedup watermark recovered too: a replayed batch is rejected...
    let replay: Vec<DataPoint> = (0..50).map(|i| dp(i * 10, i as f64)).collect();
    let r = client
        .channel(&channel)
        .ask(Ingest::deduped(replay, 7, 3))
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    assert_eq!(r, 0, "watermark must survive restart (exactly-once)");
    // ...and the points themselves scan back intact.
    let hits = client
        .raw_range(&channel, 0, u64::MAX, 0)
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    assert_eq!(hits.len(), 50);
    rt.shutdown();
}

#[test]
fn virtual_channels_derive_and_persist_through_series_store() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let (rt, topology, _) = tseries_platform(&store, 1, TopologySpec::default());
    let client = ShmClient::new(rt.handle());
    let sensor = &topology.orgs[0].sensors[0];
    let vkey = sensor.virtual_channel.as_ref().unwrap().to_string();

    client
        .ingest(&sensor.physical[0], vec![dp(0, 10.0)])
        .unwrap()
        .wait()
        .unwrap();
    client
        .ingest(&sensor.physical[1], vec![dp(5, 32.0)])
        .unwrap()
        .wait()
        .unwrap();
    assert!(rt.quiesce(Duration::from_secs(5)));

    let stats = client
        .virtual_channel_stats(&vkey)
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    assert_eq!(stats.total_points, 2);
    assert_eq!(stats.last.unwrap().value, 42.0);

    // Derived points are range-queryable from the virtual series.
    let hits = client
        .raw_range_virtual(&vkey, 0, u64::MAX, 0)
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    assert_eq!(hits.len(), 2);
    assert_eq!(hits[1].value, 42.0);
    rt.shutdown();
}

#[test]
fn threshold_alerts_fire_in_columnar_mode() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let spec = TopologySpec {
        threshold: Threshold {
            high: Some(100.0),
            ..Default::default()
        },
        ..Default::default()
    };
    let (rt, topology, _) = tseries_platform(&store, 1, spec);
    let client = ShmClient::new(rt.handle());
    let channel = topology.physical_channels().next().unwrap();
    let org = &topology.orgs[0].key;

    client
        .ingest(channel, vec![dp(0, 50.0), dp(1, 150.0)])
        .unwrap()
        .wait()
        .unwrap();
    assert!(rt.quiesce(Duration::from_secs(5)));
    let alerts = client
        .recent_alerts(org, 10)
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    assert_eq!(alerts.len(), 1);
    rt.shutdown();
}
