//! End-to-end behavior of the SHM platform with the tseries engine in
//! group-commit WAL mode: ingest acks defer onto the WAL committer
//! (acked ⇒ durable), survive an ungraceful restart, and the runtime's
//! WAL metrics mirror the engine's group counters.

use std::sync::Arc;
use std::time::Duration;

use aodb_runtime::Runtime;
use aodb_shm::messages::Ingest;
use aodb_shm::types::DataPoint;
use aodb_shm::{provision, register_all, ShmClient, ShmEnv, Topology, TopologySpec};
use aodb_store::tseries::TsStore;
use aodb_store::{MemStore, StateStore, WalConfig, WalCounters};

fn dp(ts_ms: u64, value: f64) -> DataPoint {
    DataPoint { ts_ms, value }
}

fn temp_wal(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("aodb-shm-wal-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("shm.wal")
}

/// Platform over `store` with the engine in WAL mode; mirrors the WAL
/// counters into the runtime metrics the way the platform glue does.
fn wal_platform(
    store: &Arc<dyn StateStore>,
    wal_path: &std::path::Path,
    sensors: usize,
) -> (Runtime, Topology, Arc<TsStore>) {
    let (env, engine) =
        ShmEnv::tseries_wal_default(Arc::clone(store), wal_path, WalConfig::default()).unwrap();
    let rt = Runtime::single(4);
    let (groups, frames, fsyncs) = rt.wal_metric_cells();
    engine.mirror_wal_counters(WalCounters {
        groups,
        frames,
        fsyncs,
    });
    register_all(&rt, env);
    let topology = Topology::layout(sensors, TopologySpec::default());
    provision(&rt, &topology, |_| None).unwrap();
    (rt, topology, engine)
}

#[test]
fn acked_ingest_survives_ungraceful_restart() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let wal = temp_wal("restart");
    let channel;
    {
        let (rt, topology, _) = wal_platform(&store, &wal, 1);
        channel = topology.physical_channels().next().unwrap().to_string();
        let client = ShmClient::new(rt.handle());
        let points: Vec<DataPoint> = (0..50).map(|i| dp(i * 10, i as f64)).collect();
        let r = client
            .channel(&channel)
            .ask(Ingest::deduped(points, 7, 3))
            .unwrap()
            .wait_for(Duration::from_secs(5))
            .unwrap();
        assert_eq!(r, 50);
        // Kill without graceful deactivation: the ack above must mean
        // the WAL group carrying these points already fsynced.
        drop(rt);
    }

    let (rt, _, _) = wal_platform(&store, &wal, 1);
    let client = ShmClient::new(rt.handle());
    let stats = client
        .channel_stats(&channel)
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    assert_eq!(stats.total_points, 50, "acked points recovered from WAL");
    assert_eq!(stats.last, Some(dp(490, 49.0)));

    // The dedup watermark rode the same WAL delta as the points, so a
    // replayed batch is still rejected after the crash (exactly-once).
    let replay: Vec<DataPoint> = (0..50).map(|i| dp(i * 10, i as f64)).collect();
    let r = client
        .channel(&channel)
        .ask(Ingest::deduped(replay, 7, 3))
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    assert_eq!(r, 0, "dedup watermark must survive the crash");
    let hits = client
        .raw_range(&channel, 0, u64::MAX, 0)
        .unwrap()
        .wait_for(Duration::from_secs(5))
        .unwrap();
    assert_eq!(hits.len(), 50);
    rt.shutdown();
    let _ = std::fs::remove_dir_all(wal.parent().unwrap());
}

#[test]
fn wal_metrics_mirror_group_commit_counters() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let wal = temp_wal("metrics");
    let (rt, topology, engine) = wal_platform(&store, &wal, 4);
    let client = ShmClient::new(rt.handle());
    let channels: Vec<String> = topology
        .physical_channels()
        .map(|c| c.to_string())
        .collect();

    // Several concurrent ingests per channel so the committer sees
    // frames from distinct series in flight together.
    let mut pending = Vec::new();
    for round in 0..10u64 {
        for ch in &channels {
            let points: Vec<DataPoint> = (0..8).map(|i| dp(round * 100 + i, i as f64)).collect();
            pending.push(client.ingest(ch, points).unwrap());
        }
    }
    for p in pending {
        p.wait_for(Duration::from_secs(10)).unwrap();
    }

    let snap = rt.metrics();
    assert!(snap.wal_groups > 0, "groups committed: {}", snap.wal_groups);
    assert!(
        snap.wal_grouped_frames >= snap.wal_groups,
        "every group carries at least one frame"
    );
    assert!(snap.wal_fsyncs > 0, "PerGroup policy fsyncs each group");
    assert!(snap.wal_group_size() >= 1.0);

    // The runtime cells are the *same* counters the engine bumps, not a
    // copy: the engine's own view agrees.
    let stats = engine.wal_stats();
    assert_eq!(stats.groups, snap.wal_groups);
    assert_eq!(stats.frames, snap.wal_grouped_frames);
    rt.shutdown();
    let _ = std::fs::remove_dir_all(wal.parent().unwrap());
}
