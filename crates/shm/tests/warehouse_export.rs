//! Tests of the analytical warehouse export: star-schema load from the
//! online aggregators, roll-up queries, idempotent re-export, and the
//! online/offline separation the paper's architecture prescribes.

use std::sync::Arc;
use std::time::Duration;

use aodb_runtime::Runtime;
use aodb_shm::types::{AggregateLevel, DataPoint};
use aodb_shm::warehouse::{WarehouseExporter, WarehouseReader};
use aodb_shm::{provision, register_all, ShmClient, ShmEnv, Topology, TopologySpec};
use aodb_store::{MemStore, StateStore};

const HOUR: u64 = 3_600_000;

fn setup_with_data() -> (Runtime, Topology, ShmClient, Arc<dyn StateStore>) {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = Runtime::single(2);
    register_all(&rt, ShmEnv::paper_default(Arc::clone(&store)));
    let topology = Topology::layout(2, TopologySpec::default());
    provision(&rt, &topology, |_| None).unwrap();
    let client = ShmClient::new(rt.handle());

    // Three hours of data on every physical channel; values differ per
    // channel so roll-ups are distinguishable.
    for (c_idx, channel) in topology.physical_channels().enumerate() {
        for hour in 0..3u64 {
            let points: Vec<DataPoint> = (0..6)
                .map(|i| DataPoint {
                    ts_ms: hour * HOUR + i * 60_000,
                    value: (c_idx + 1) as f64 * 10.0 + i as f64,
                })
                .collect();
            client.ingest(channel, points).unwrap().wait().unwrap();
        }
    }
    assert!(rt.quiesce(Duration::from_secs(10)));
    (rt, topology, client, store)
}

#[test]
fn export_writes_facts_and_dimensions() {
    let (rt, topology, client, store) = setup_with_data();
    let exporter = WarehouseExporter::new(Arc::clone(&store));
    let summary = exporter
        .export(&client, &topology, AggregateLevel::Hour, 0, 4 * HOUR)
        .unwrap();

    // 4 physical channels × 3 hourly buckets; the virtual channel also
    // produced derived buckets.
    assert!(summary.facts >= 12, "facts = {}", summary.facts);
    // 5 channel dims (4 physical + 1 virtual) + 1 org dim.
    assert_eq!(summary.dims, 6);

    let reader = WarehouseReader::new(store);
    let facts = reader.facts("org-0", 0, 4 * HOUR).unwrap();
    assert_eq!(facts.len() as u64, summary.facts);
    // Dimensions join.
    let dim = reader.channel_dim(&facts[0].channel).unwrap().unwrap();
    assert_eq!(dim.org, "org-0");
    let org = reader.org_dim("org-0").unwrap().unwrap();
    assert_eq!(org.sensors, 2);
    assert_eq!(org.channels, 5);
    rt.shutdown();
}

#[test]
fn rollups_aggregate_correctly() {
    let (rt, topology, client, store) = setup_with_data();
    WarehouseExporter::new(Arc::clone(&store))
        .export(&client, &topology, AggregateLevel::Hour, 0, 4 * HOUR)
        .unwrap();
    let reader = WarehouseReader::new(store);

    // Per channel: each physical channel recorded 18 points total.
    let by_channel = reader.rollup_by_channel("org-0", 0, 4 * HOUR).unwrap();
    let phys: Vec<_> = by_channel
        .iter()
        .filter(|(c, _)| c.contains("/c-"))
        .collect();
    assert_eq!(phys.len(), 4);
    for (channel, agg) in &phys {
        assert_eq!(agg.count, 18, "channel {channel}");
    }

    // Per bucket: each hour holds 6 points × 4 physical channels (+
    // virtual derived points).
    let by_bucket = reader.rollup_by_bucket("org-0", 0, 4 * HOUR).unwrap();
    assert_eq!(by_bucket.len(), 3);
    for (bucket, agg) in &by_bucket {
        assert!(agg.count >= 24, "bucket {bucket} count {}", agg.count);
        assert_eq!(bucket % HOUR, 0);
    }
    rt.shutdown();
}

#[test]
fn re_export_is_idempotent() {
    let (rt, topology, client, store) = setup_with_data();
    let exporter = WarehouseExporter::new(Arc::clone(&store));
    let first = exporter
        .export(&client, &topology, AggregateLevel::Hour, 0, 4 * HOUR)
        .unwrap();
    let second = exporter
        .export(&client, &topology, AggregateLevel::Hour, 0, 4 * HOUR)
        .unwrap();
    assert_eq!(first.facts, second.facts);

    let reader = WarehouseReader::new(store);
    // Upsert semantics: measures are not doubled by the second pass.
    let by_channel = reader.rollup_by_channel("org-0", 0, 4 * HOUR).unwrap();
    for (channel, agg) in by_channel.iter().filter(|(c, _)| c.contains("/c-")) {
        assert_eq!(agg.count, 18, "channel {channel} double-counted");
    }
    rt.shutdown();
}

#[test]
fn time_slicing_filters_buckets() {
    let (rt, topology, client, store) = setup_with_data();
    WarehouseExporter::new(Arc::clone(&store))
        .export(&client, &topology, AggregateLevel::Hour, 0, 4 * HOUR)
        .unwrap();
    let reader = WarehouseReader::new(store);
    let hour1_only = reader
        .rollup_by_bucket("org-0", HOUR, 2 * HOUR - 1)
        .unwrap();
    assert_eq!(hour1_only.len(), 1);
    assert_eq!(hour1_only[0].0, HOUR);
    rt.shutdown();
}

#[test]
fn warehouse_is_separate_from_online_state() {
    // The paper's separation: warehouse lives in its own namespace; the
    // online actor-state namespace is untouched by analytics and vice
    // versa.
    let (rt, topology, client, store) = setup_with_data();
    let online_before = store
        .scan_prefix(&aodb_store::Key::namespace_prefix("actor-state"))
        .unwrap()
        .len();
    WarehouseExporter::new(Arc::clone(&store))
        .export(&client, &topology, AggregateLevel::Hour, 0, 4 * HOUR)
        .unwrap();
    let online_after = store
        .scan_prefix(&aodb_store::Key::namespace_prefix("actor-state"))
        .unwrap()
        .len();
    assert_eq!(online_before, online_after);
    let warehouse = store
        .scan_prefix(&aodb_store::Key::namespace_prefix("warehouse"))
        .unwrap();
    assert!(!warehouse.is_empty());
    rt.shutdown();
}
