//! The storage API: keys, errors, and the [`StateStore`] trait.
//!
//! The paper's deployment stores grain state in Amazon DynamoDB. This trait
//! abstracts that role: a durable key-value store used by persistent actors
//! to load state on activation and write it back per their write policy.

use std::fmt;

use bytes::Bytes;

/// Composite storage key: `namespace / partition / sort`.
///
/// Mirrors DynamoDB's table + partition key + sort key layout. Keys encode
/// to a single byte string with `0x00` separators (and `0x00` escaped as
/// `0x00 0xFF` inside components) so that lexicographic order on the
/// encoding equals order on the components and prefix scans over
/// `(namespace, partition)` are well-defined.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Key(Vec<u8>);

const SEP: u8 = 0x00;
const ESC: u8 = 0xFF;

fn push_escaped(out: &mut Vec<u8>, component: &[u8]) {
    for &b in component {
        if b == SEP {
            out.push(SEP);
            out.push(ESC);
        } else {
            out.push(b);
        }
    }
}

impl Key {
    /// Key with namespace and partition only.
    pub fn new(namespace: &str, partition: &str) -> Key {
        let mut buf = Vec::with_capacity(namespace.len() + partition.len() + 2);
        push_escaped(&mut buf, namespace.as_bytes());
        buf.push(SEP);
        buf.push(SEP);
        push_escaped(&mut buf, partition.as_bytes());
        Key(buf)
    }

    /// Key with namespace, partition, and sort component.
    pub fn with_sort(namespace: &str, partition: &str, sort: &str) -> Key {
        let mut key = Key::new(namespace, partition);
        key.0.push(SEP);
        key.0.push(SEP);
        push_escaped(&mut key.0, sort.as_bytes());
        key
    }

    /// Prefix matching every sort key under `(namespace, partition)`.
    pub fn partition_prefix(namespace: &str, partition: &str) -> Vec<u8> {
        let mut key = Key::new(namespace, partition);
        key.0.push(SEP);
        key.0.push(SEP);
        key.0
    }

    /// Prefix matching every key in `namespace`.
    pub fn namespace_prefix(namespace: &str) -> Vec<u8> {
        let mut buf = Vec::with_capacity(namespace.len() + 2);
        push_escaped(&mut buf, namespace.as_bytes());
        buf.push(SEP);
        buf.push(SEP);
        buf
    }

    /// The encoded byte form.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Takes ownership of the encoded byte form.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }

    /// Rebuilds a key from its encoded form (e.g. a scan result).
    pub fn from_encoded(bytes: &[u8]) -> Key {
        Key(bytes.to_vec())
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", String::from_utf8_lossy(&self.0).replace('\0', "/"))
    }
}

/// Storage failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The provisioned-throughput model rejected the request
    /// (DynamoDB's `ProvisionedThroughputExceededException`). Callers may
    /// retry with backoff.
    Throttled,
    /// Underlying I/O failure (message carries the `std::io::Error` text).
    Io(String),
    /// A persisted record failed its integrity check during recovery or
    /// read.
    Corrupt(String),
    /// Value (de)serialization failed.
    Codec(String),
    /// A persisted record carries a format version this build does not
    /// understand. Distinct from [`StoreError::Corrupt`]: the bytes are
    /// intact, the software is too old (or too new) — the operator
    /// remedy is a version migration, not a restore from backup.
    UnsupportedVersion(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Throttled => write!(f, "provisioned throughput exceeded"),
            StoreError::Io(e) => write!(f, "storage I/O error: {e}"),
            StoreError::Corrupt(e) => write!(f, "corrupt record: {e}"),
            StoreError::Codec(e) => write!(f, "codec error: {e}"),
            StoreError::UnsupportedVersion(e) => write!(f, "unsupported format version: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

/// Result alias for storage operations.
pub type StoreResult<T> = Result<T, StoreError>;

/// A durable key-value state store (the DynamoDB role).
///
/// Implementations must be safe for concurrent use from many worker
/// threads; persistent actors call into the store from inside their turns.
pub trait StateStore: Send + Sync + 'static {
    /// Reads the value at `key`.
    fn get(&self, key: &Key) -> StoreResult<Option<Bytes>>;

    /// Writes `value` at `key`, replacing any previous value.
    fn put(&self, key: &Key, value: Bytes) -> StoreResult<()>;

    /// Writes `value` at `key` without waiting for durability: the write
    /// is immediately visible to reads, but may sit in a buffer until the
    /// next [`StateStore::sync`] (or an implementation-chosen flush
    /// point). Errors on the durability path surface at `sync`. Default:
    /// plain [`StateStore::put`].
    ///
    /// This is the coalescing seam for deactivation-time state flushes:
    /// a silo sweeping a batch of idle activations issues one
    /// `put_deferred` per actor and a single `sync` for the whole batch,
    /// so the batch shares one fsync instead of paying one each.
    fn put_deferred(&self, key: &Key, value: Bytes) -> StoreResult<()> {
        self.put(key, value)
    }

    /// Deletes `key`. Deleting an absent key is not an error.
    fn delete(&self, key: &Key) -> StoreResult<()>;

    /// Returns all `(key, value)` pairs whose encoded key starts with
    /// `prefix`, in key order.
    fn scan_prefix(&self, prefix: &[u8]) -> StoreResult<Vec<(Key, Bytes)>>;

    /// Flushes buffered writes to durable media. Default: no-op.
    fn sync(&self) -> StoreResult<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_ordering_matches_components() {
        let a = Key::with_sort("t", "p1", "a");
        let b = Key::with_sort("t", "p1", "b");
        let c = Key::with_sort("t", "p2", "a");
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn partition_prefix_matches_only_its_partition() {
        let k1 = Key::with_sort("t", "p1", "x");
        let k2 = Key::with_sort("t", "p10", "x");
        let prefix = Key::partition_prefix("t", "p1");
        assert!(k1.as_bytes().starts_with(&prefix));
        assert!(
            !k2.as_bytes().starts_with(&prefix),
            "p10 must not match the p1 partition prefix"
        );
    }

    #[test]
    fn namespace_prefix_isolation() {
        let k1 = Key::new("tenant-a", "x");
        let k2 = Key::new("tenant-ab", "x");
        let prefix = Key::namespace_prefix("tenant-a");
        assert!(k1.as_bytes().starts_with(&prefix));
        assert!(!k2.as_bytes().starts_with(&prefix));
    }

    #[test]
    fn components_containing_separator_stay_distinct() {
        let k1 = Key::new("a\0b", "c");
        let k2 = Key::new("a", "b\0c");
        assert_ne!(k1, k2);
    }

    #[test]
    fn display_is_readable() {
        let k = Key::with_sort("shm", "org-1", "sensor-2");
        let shown = k.to_string();
        assert!(shown.contains("shm"));
        assert!(shown.contains("org-1"));
    }
}
