//! Seeded fault-injecting store decorator.
//!
//! [`ChaosStore`] wraps any [`StateStore`] and injects failures the way the
//! paper's DynamoDB tier really fails: transient I/O errors, throttling
//! windows (provisioned capacity exhausted), and slow requests. It serves
//! two audiences:
//!
//! * **Manual mode** ([`ChaosStore::manual`]) — explicit toggles
//!   ([`ChaosStore::fail_writes`] / [`ChaosStore::fail_reads`]) for tests
//!   that need a store to break *now* and heal on cue. This replaces the
//!   hand-rolled `FaultyStore` fixtures that used to live in test files.
//! * **Seeded mode** ([`ChaosStore::seeded`]) — a [`ChaosStoreConfig`]
//!   derives error bursts, throttle windows, and latency from a single
//!   `u64` seed keyed on the operation counter, so a chaos run's storage
//!   faults replay exactly from the seed.
//!
//! All operations are counted (reads and writes separately) *before* fault
//! evaluation, so "how many attempts did the caller make" stays observable
//! even when every attempt fails — the retry-amplification tests depend on
//! this.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use bytes::Bytes;

use crate::api::{Key, StateStore, StoreError, StoreResult};

/// SplitMix64 finalizer (same derivation the runtime's chaos layer uses,
/// duplicated here so the store crate stays dependency-free).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A periodically recurring window of operations, in operation counts:
/// operations `n` with `n % period < len` fall inside the window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BurstWindow {
    /// Window recurrence period, in operations. Zero disables the window.
    pub period: u64,
    /// How many consecutive operations each window covers.
    pub len: u64,
}

impl BurstWindow {
    /// A disabled window (never fires).
    pub const OFF: BurstWindow = BurstWindow { period: 0, len: 0 };

    fn contains(&self, op: u64) -> bool {
        self.period > 0 && op % self.period < self.len
    }
}

/// Seed-driven fault schedule for [`ChaosStore::seeded`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosStoreConfig {
    /// Every decision derives from this seed and the operation counter.
    pub seed: u64,
    /// Recurring windows in which every operation fails with
    /// [`StoreError::Io`] (a storage-tier outage burst).
    pub error_burst: BurstWindow,
    /// Recurring windows in which every operation fails with
    /// [`StoreError::Throttled`] (provisioned capacity exhausted).
    pub throttle_window: BurstWindow,
    /// Per-mille probability of a random [`StoreError::Io`] failure
    /// outside bursts.
    pub error_per_mille: u16,
    /// Sleep added to every read, modelling storage read latency.
    pub read_latency: Duration,
    /// Sleep added to every write.
    pub write_latency: Duration,
}

impl ChaosStoreConfig {
    /// A schedule derived entirely from `seed`: moderate burst and
    /// throttle windows plus a small random error rate, no latency (tests
    /// opt into latency explicitly — it dominates wall-clock budgets).
    pub fn from_seed(seed: u64) -> Self {
        ChaosStoreConfig {
            seed,
            error_burst: BurstWindow {
                period: 40 + mix64(seed ^ 0xB0) % 60,
                len: 1 + mix64(seed ^ 0xB1) % 4,
            },
            throttle_window: BurstWindow {
                period: 60 + mix64(seed ^ 0xB2) % 80,
                len: 1 + mix64(seed ^ 0xB3) % 3,
            },
            error_per_mille: (mix64(seed ^ 0xB4) % 30) as u16,
            read_latency: Duration::ZERO,
            write_latency: Duration::ZERO,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    None,
    Io,
    Throttle,
}

/// Fault-injecting [`StateStore`] decorator; see the module docs.
pub struct ChaosStore<S> {
    inner: S,
    cfg: Option<ChaosStoreConfig>,
    fail_writes: AtomicBool,
    fail_reads: AtomicBool,
    write_attempts: AtomicU64,
    read_attempts: AtomicU64,
    injected_errors: AtomicU64,
    injected_throttles: AtomicU64,
}

impl<S: StateStore> ChaosStore<S> {
    /// Manual mode: no seeded schedule, faults fire only while the
    /// [`ChaosStore::fail_writes`] / [`ChaosStore::fail_reads`] toggles
    /// are on.
    pub fn manual(inner: S) -> Self {
        ChaosStore {
            inner,
            cfg: None,
            fail_writes: AtomicBool::new(false),
            fail_reads: AtomicBool::new(false),
            write_attempts: AtomicU64::new(0),
            read_attempts: AtomicU64::new(0),
            injected_errors: AtomicU64::new(0),
            injected_throttles: AtomicU64::new(0),
        }
    }

    /// Seeded mode: faults follow `cfg`'s schedule. The manual toggles
    /// still work on top.
    pub fn seeded(inner: S, cfg: ChaosStoreConfig) -> Self {
        let mut store = Self::manual(inner);
        store.cfg = Some(cfg);
        store
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// While `true`, every write fails with `Io("injected write failure")`.
    pub fn fail_writes(&self, on: bool) {
        self.fail_writes.store(on, Ordering::SeqCst);
    }

    /// While `true`, every read fails with `Io("injected read failure")`.
    pub fn fail_reads(&self, on: bool) {
        self.fail_reads.store(on, Ordering::SeqCst);
    }

    /// Write operations attempted (counted before fault evaluation).
    pub fn write_attempts(&self) -> u64 {
        self.write_attempts.load(Ordering::SeqCst)
    }

    /// Read operations attempted (counted before fault evaluation).
    pub fn read_attempts(&self) -> u64 {
        self.read_attempts.load(Ordering::SeqCst)
    }

    /// Seeded-schedule `Io` faults injected so far.
    pub fn injected_errors(&self) -> u64 {
        self.injected_errors.load(Ordering::SeqCst)
    }

    /// Seeded-schedule throttles injected so far.
    pub fn injected_throttles(&self) -> u64 {
        self.injected_throttles.load(Ordering::SeqCst)
    }

    /// Rolls the seeded schedule for operation number `op`.
    fn scheduled_fault(&self, op: u64) -> Fault {
        let Some(cfg) = &self.cfg else {
            return Fault::None;
        };
        if cfg.error_burst.contains(op) {
            return Fault::Io;
        }
        if cfg.throttle_window.contains(op) {
            return Fault::Throttle;
        }
        if cfg.error_per_mille > 0 {
            let roll = mix64(cfg.seed ^ op.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % 1000;
            if (roll as u16) < cfg.error_per_mille {
                return Fault::Io;
            }
        }
        Fault::None
    }

    fn check_write(&self) -> StoreResult<()> {
        let op = self.write_attempts.fetch_add(1, Ordering::SeqCst);
        if self.fail_writes.load(Ordering::SeqCst) {
            return Err(StoreError::Io("injected write failure".into()));
        }
        match self.scheduled_fault(op) {
            Fault::Io => {
                self.injected_errors.fetch_add(1, Ordering::SeqCst);
                Err(StoreError::Io("chaos: injected write failure".into()))
            }
            Fault::Throttle => {
                self.injected_throttles.fetch_add(1, Ordering::SeqCst);
                Err(StoreError::Throttled)
            }
            Fault::None => {
                // Latency is injected *before* delegating to the inner
                // store, so a slow write never pins the inner store's
                // write guard — concurrent readers proceed at full speed
                // (pinned by `tests/chaos_latency.rs`).
                if let Some(cfg) = &self.cfg {
                    if !cfg.write_latency.is_zero() {
                        std::thread::sleep(cfg.write_latency);
                    }
                }
                Ok(())
            }
        }
    }

    fn check_read(&self) -> StoreResult<()> {
        let op = self.read_attempts.fetch_add(1, Ordering::SeqCst);
        if self.fail_reads.load(Ordering::SeqCst) {
            return Err(StoreError::Io("injected read failure".into()));
        }
        match self.scheduled_fault(op) {
            Fault::Io => {
                self.injected_errors.fetch_add(1, Ordering::SeqCst);
                Err(StoreError::Io("chaos: injected read failure".into()))
            }
            Fault::Throttle => {
                self.injected_throttles.fetch_add(1, Ordering::SeqCst);
                Err(StoreError::Throttled)
            }
            Fault::None => {
                if let Some(cfg) = &self.cfg {
                    if !cfg.read_latency.is_zero() {
                        std::thread::sleep(cfg.read_latency);
                    }
                }
                Ok(())
            }
        }
    }
}

impl<S: StateStore> StateStore for ChaosStore<S> {
    fn get(&self, key: &Key) -> StoreResult<Option<Bytes>> {
        self.check_read()?;
        self.inner.get(key)
    }

    fn put(&self, key: &Key, value: Bytes) -> StoreResult<()> {
        self.check_write()?;
        self.inner.put(key, value)
    }

    fn delete(&self, key: &Key) -> StoreResult<()> {
        self.check_write()?;
        self.inner.delete(key)
    }

    fn scan_prefix(&self, prefix: &[u8]) -> StoreResult<Vec<(Key, Bytes)>> {
        self.check_read()?;
        self.inner.scan_prefix(prefix)
    }

    fn sync(&self) -> StoreResult<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemStore;

    #[test]
    fn manual_toggles_fail_and_heal() {
        let store = ChaosStore::manual(MemStore::new());
        let k = Key::new("t", "a");
        store.put(&k, Bytes::from_static(b"v")).unwrap();

        store.fail_writes(true);
        assert!(matches!(
            store.put(&k, Bytes::from_static(b"w")),
            Err(StoreError::Io(msg)) if msg == "injected write failure"
        ));
        // The failed write must not have reached the inner store.
        assert_eq!(store.get(&k).unwrap(), Some(Bytes::from_static(b"v")));

        store.fail_reads(true);
        assert!(matches!(
            store.get(&k),
            Err(StoreError::Io(msg)) if msg == "injected read failure"
        ));

        store.fail_writes(false);
        store.fail_reads(false);
        store.put(&k, Bytes::from_static(b"w")).unwrap();
        assert_eq!(store.get(&k).unwrap(), Some(Bytes::from_static(b"w")));
    }

    #[test]
    fn attempts_count_failures_too() {
        let store = ChaosStore::manual(MemStore::new());
        let k = Key::new("t", "a");
        store.fail_writes(true);
        for _ in 0..5 {
            let _ = store.put(&k, Bytes::from_static(b"x"));
        }
        assert_eq!(store.write_attempts(), 5);
        assert_eq!(store.read_attempts(), 0);
        let _ = store.get(&k);
        assert_eq!(store.read_attempts(), 1);
    }

    #[test]
    fn seeded_schedule_is_reproducible() {
        let run = |seed: u64| {
            let store = ChaosStore::seeded(MemStore::new(), ChaosStoreConfig::from_seed(seed));
            let k = Key::new("t", "a");
            (0..500)
                .map(|_| match store.put(&k, Bytes::from_static(b"x")) {
                    Ok(()) => 'o',
                    Err(StoreError::Io(_)) => 'e',
                    Err(StoreError::Throttled) => 't',
                    Err(e) => panic!("unexpected: {e}"),
                })
                .collect::<String>()
        };
        let a = run(1234);
        let b = run(1234);
        assert_eq!(a, b, "same seed must give the identical fault sequence");
        assert!(a.contains('e') && a.contains('t') && a.contains('o'));
        let c = run(4321);
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn seeded_bursts_hit_reads_and_writes_independently() {
        let store = ChaosStore::seeded(MemStore::new(), ChaosStoreConfig::from_seed(77));
        let k = Key::new("t", "a");
        let mut write_faults = 0;
        let mut read_faults = 0;
        for _ in 0..300 {
            if store.put(&k, Bytes::from_static(b"x")).is_err() {
                write_faults += 1;
            }
            if store.get(&k).is_err() {
                read_faults += 1;
            }
        }
        assert!(write_faults > 0, "write schedule never fired");
        assert!(read_faults > 0, "read schedule never fired");
        assert_eq!(
            store.injected_errors() + store.injected_throttles(),
            write_faults + read_faults
        );
    }

    #[test]
    fn scan_and_delete_pass_through_when_calm() {
        let store = ChaosStore::manual(MemStore::new());
        for s in ["a", "b", "c"] {
            store
                .put(&Key::with_sort("t", "p", s), Bytes::from_static(b"x"))
                .unwrap();
        }
        assert_eq!(
            store
                .scan_prefix(&Key::partition_prefix("t", "p"))
                .unwrap()
                .len(),
            3
        );
        store.delete(&Key::with_sort("t", "p", "b")).unwrap();
        assert_eq!(store.inner().len(), 2);
    }
}
