//! Value codec and record framing.
//!
//! * State blobs are serialized with `serde_json` (human-inspectable, no
//!   extra dependency beyond the allowed serde ecosystem).
//! * Log records are framed as `len | crc32 | payload` with a table-driven
//!   CRC-32 (IEEE 802.3 polynomial) implemented here, so torn or corrupted
//!   tail records are detected during recovery.

use bytes::Bytes;
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::api::{StoreError, StoreResult};

/// Serializes a state value to bytes.
pub fn encode_state<T: Serialize>(value: &T) -> StoreResult<Bytes> {
    serde_json::to_vec(value)
        .map(Bytes::from)
        .map_err(|e| StoreError::Codec(e.to_string()))
}

/// Deserializes a state value from bytes.
pub fn decode_state<T: DeserializeOwned>(bytes: &[u8]) -> StoreResult<T> {
    serde_json::from_slice(bytes).map_err(|e| StoreError::Codec(e.to_string()))
}

const CRC_POLY: u32 = 0xEDB8_8320;

fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ CRC_POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Incremental CRC-32 over multiple slices.
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds more data.
    pub fn update(&mut self, data: &[u8]) {
        let table = crc_table();
        for &b in data {
            self.state = (self.state >> 8) ^ table[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Final checksum.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// Frames `payload` as `len(4) | crc(4) | payload` into `out`.
pub fn frame_record(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Parses one framed record from the front of `buf`.
///
/// Returns `Ok(Some((payload, consumed)))` on success, `Ok(None)` when the
/// buffer ends mid-record (a torn tail write — the recovery point), and
/// `Err` on a checksum mismatch.
pub fn parse_record(buf: &[u8]) -> StoreResult<Option<(&[u8], usize)>> {
    if buf.len() < 8 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4-byte slice")) as usize;
    let crc = u32::from_le_bytes(buf[4..8].try_into().expect("4-byte slice"));
    if buf.len() < 8 + len {
        return Ok(None);
    }
    let payload = &buf[8..8 + len];
    if crc32(payload) != crc {
        return Err(StoreError::Corrupt(format!(
            "crc mismatch on {len}-byte record"
        )));
    }
    Ok(Some((payload, 8 + len)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn incremental_crc_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut inc = Crc32::new();
        inc.update(&data[..10]);
        inc.update(&data[10..]);
        assert_eq!(inc.finish(), crc32(data));
    }

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        frame_record(b"hello", &mut buf);
        frame_record(b"world!", &mut buf);
        let (p1, n1) = parse_record(&buf).unwrap().unwrap();
        assert_eq!(p1, b"hello");
        let (p2, n2) = parse_record(&buf[n1..]).unwrap().unwrap();
        assert_eq!(p2, b"world!");
        assert_eq!(n1 + n2, buf.len());
    }

    #[test]
    fn torn_tail_is_not_an_error() {
        let mut buf = Vec::new();
        frame_record(b"complete", &mut buf);
        let full = buf.len();
        frame_record(b"torn-record", &mut buf);
        // Simulate a crash mid-write of the second record.
        buf.truncate(full + 5);
        let (p, n) = parse_record(&buf).unwrap().unwrap();
        assert_eq!(p, b"complete");
        assert_eq!(parse_record(&buf[n..]).unwrap(), None);
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = Vec::new();
        frame_record(b"precious data", &mut buf);
        buf[10] ^= 0x01;
        assert!(matches!(parse_record(&buf), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn state_codec_roundtrip() {
        #[derive(Serialize, Deserialize, PartialEq, Debug)]
        struct S {
            name: String,
            values: Vec<f64>,
        }
        let s = S {
            name: "bridge".into(),
            values: vec![1.5, -2.25],
        };
        let bytes = encode_state(&s).unwrap();
        let back: S = decode_state(&bytes).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn decode_garbage_is_codec_error() {
        let r: StoreResult<Vec<u64>> = decode_state(b"not json at all {");
        assert!(matches!(r, Err(StoreError::Codec(_))));
    }
}
