//! # aodb-store — durable state storage for actor-oriented databases
//!
//! The storage substrate of the EDBT 2019 IoT-AODB reproduction, standing
//! in for Amazon DynamoDB in the paper's architecture:
//!
//! * [`StateStore`] — the store abstraction persistent actors write
//!   through (get / put / delete / prefix scan over composite
//!   [`Key`]s with DynamoDB-like partition + sort structure).
//! * [`MemStore`] — in-memory baseline.
//! * [`LogStore`] — durable log-structured store: CRC-framed write-ahead
//!   log, in-memory index, snapshot compaction, crash recovery with
//!   torn-tail truncation.
//! * [`ProvisionedStore`] — a decorator reproducing DynamoDB's provisioned
//!   read/write capacity units, burst credit, throttling, and request
//!   latency (the paper provisions 200 RCU / 200 WCU).
//! * [`ChaosStore`] — a seeded fault-injecting decorator (error bursts,
//!   throttle windows, latency) for crash/recovery testing.
//! * [`GroupWal`] — group-commit write-ahead log: a single committer
//!   thread coalesces frames from concurrent turns into one write + one
//!   fsync per group and resolves acks post-durability, with injectable
//!   [`CrashPoint`]s at every write/fsync/ack boundary.
//! * [`codec`] — value serialization and record framing helpers.
//! * [`tseries`] — columnar time-series engine for the ingest hot path:
//!   delta-of-delta + Gorilla-XOR compressed sealed blocks behind the
//!   [`SeriesStore`] seam, durable through any [`StateStore`] backing.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod api;
mod chaos;
pub mod codec;
mod log;
mod mem;
mod provisioned;
pub mod tseries;
pub mod wal;

pub use api::{Key, StateStore, StoreError, StoreResult};
pub use chaos::{BurstWindow, ChaosStore, ChaosStoreConfig};
pub use log::{LogStore, LogStoreConfig, SyncPolicy};
pub use mem::MemStore;
pub use tseries::{AppendOutcome, SeriesRecovery, SeriesStats, SeriesStore, TsConfig, TsStore};
pub use wal::{
    CrashPlan, CrashPoint, FsyncPolicy, GroupWal, MemMedia, WalConfig, WalCounters, WalMedia,
    WalStatsSnapshot, WalTicket,
};

pub use provisioned::{
    ExhaustionBehavior, ProvisionedConfig, ProvisionedStats, ProvisionedStore, READ_UNIT_BYTES,
    WRITE_UNIT_BYTES,
};

pub use bytes::Bytes;
