//! Log-structured durable store: write-ahead log + in-memory index +
//! snapshot compaction.
//!
//! Layout on disk (inside the store directory):
//!
//! * `snapshot.db` — a checkpoint: one framed `Put` record per live key.
//! * `wal.log`     — framed mutation records appended since the snapshot.
//!
//! Recovery loads the snapshot and replays the WAL; a torn final record
//! (crash mid-append) is truncated silently, a checksum mismatch anywhere
//! else surfaces as [`StoreError::Corrupt`]. When the WAL outgrows
//! `compact_threshold`, the store writes a fresh snapshot and truncates the
//! WAL.
//!
//! All values are also kept in the in-memory index, so reads never touch
//! disk — matching the paper's architecture where the actor tier is an
//! in-memory cache and storage exists for durability.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use crate::api::{Key, StateStore, StoreError, StoreResult};
use crate::codec::{crc32, parse_record};
use crate::wal::{GroupWal, WalConfig, WalCounters, WalStatsSnapshot};

const OP_PUT: u8 = 1;
const OP_DELETE: u8 = 2;

/// Durability of individual appends.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SyncPolicy {
    /// `fsync` after every append (slow, strongest).
    Always,
    /// Let the OS page cache decide; `sync()` forces it. This is the
    /// default and mirrors DynamoDB's behaviour as seen by a client (the
    /// service acks before our process could observe a local fsync anyway).
    #[default]
    OnDemand,
}

/// Configuration for [`LogStore`].
#[derive(Clone, Debug)]
pub struct LogStoreConfig {
    /// Directory holding `snapshot.db` and `wal.log` (created if missing).
    pub dir: PathBuf,
    /// WAL size that triggers snapshot compaction.
    pub compact_threshold: u64,
    /// Append durability (plain mode only; group-commit mode takes its
    /// fsync policy from the [`WalConfig`]).
    pub sync: SyncPolicy,
    /// When set, appends go through a [`GroupWal`]: a committer thread
    /// coalesces mutations from concurrent writers into one write + one
    /// fsync per group, and `put` returns only after the mutation's
    /// group commits. The on-disk `wal.log` format is identical to
    /// plain mode, so a store can switch modes between opens.
    pub group_commit: Option<WalConfig>,
}

impl LogStoreConfig {
    /// Defaults: 16 MiB compaction threshold, on-demand sync, no group
    /// commit.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        LogStoreConfig {
            dir: dir.into(),
            compact_threshold: 16 * 1024 * 1024,
            sync: SyncPolicy::OnDemand,
            group_commit: None,
        }
    }

    /// Enables group-commit mode (see [`LogStoreConfig::group_commit`]).
    pub fn with_group_commit(mut self, wal: WalConfig) -> Self {
        self.group_commit = Some(wal);
        self
    }
}

struct Writer {
    wal: File,
    wal_len: u64,
}

enum Backend {
    /// Synchronous appends under the writer lock.
    Plain(Mutex<Writer>),
    /// Appends queued to the group-commit committer thread.
    Group {
        wal: GroupWal,
        /// Serializes "apply to index" with "take a WAL queue slot" so
        /// replay order always matches index state: without it two
        /// racing writers to one key could apply in one order and
        /// enqueue in the other, and recovery would resurrect the
        /// loser.
        order: Mutex<()>,
        /// Appends hold this for read; compaction holds it for write so
        /// the snapshot + WAL reset happen with no append in flight
        /// between its index-apply and its queue slot.
        rotation: RwLock<()>,
    },
}

/// The log-structured store.
pub struct LogStore {
    index: RwLock<BTreeMap<Vec<u8>, Bytes>>,
    backend: Backend,
    config: LogStoreConfig,
}

/// Encodes one mutation as a framed record (`len | crc | payload`)
/// directly into `out`: the payload bytes are written once, in place,
/// with the CRC computed over the written slice and patched into its
/// placeholder afterwards — no intermediate payload `Vec` copied a
/// second time through `frame_record`.
fn encode_mutation(op: u8, key: &[u8], value: &[u8], out: &mut Vec<u8>) {
    let payload_len = 9 + key.len() + value.len();
    out.reserve(8 + payload_len);
    let frame_start = out.len();
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // CRC placeholder, patched below
    out.push(op);
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(value);
    let crc = crc32(&out[frame_start + 8..]);
    out[frame_start + 4..frame_start + 8].copy_from_slice(&crc.to_le_bytes());
}

fn decode_mutation(payload: &[u8]) -> StoreResult<(u8, &[u8], &[u8])> {
    let fail = || StoreError::Corrupt("truncated mutation payload".into());
    if payload.len() < 9 {
        return Err(fail());
    }
    let op = payload[0];
    let klen = u32::from_le_bytes(payload[1..5].try_into().expect("4 bytes")) as usize;
    let rest = &payload[5..];
    if rest.len() < klen + 4 {
        return Err(fail());
    }
    let key = &rest[..klen];
    let vlen = u32::from_le_bytes(rest[klen..klen + 4].try_into().expect("4 bytes")) as usize;
    let value = &rest[klen + 4..];
    if value.len() != vlen {
        return Err(fail());
    }
    Ok((op, key, value))
}

/// Replays framed mutation records from `path` into `index`, returning
/// the byte offset of the last cleanly-parsed record's end (so a torn
/// tail can be physically truncated by the caller).
fn load_records(
    path: &Path,
    index: &mut BTreeMap<Vec<u8>, Bytes>,
    allow_torn_tail: bool,
) -> StoreResult<u64> {
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut buf)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e.into()),
    }
    let mut offset = 0;
    while offset < buf.len() {
        match parse_record(&buf[offset..]) {
            Ok(Some((payload, consumed))) => {
                apply_mutation(index, payload)?;
                offset += consumed;
            }
            Ok(None) if allow_torn_tail => break, // crash mid-append: discard tail
            Ok(None) => return Err(StoreError::Corrupt("truncated snapshot record".into())),
            Err(e) => return Err(e),
        }
    }
    Ok(offset as u64)
}

fn apply_mutation(index: &mut BTreeMap<Vec<u8>, Bytes>, payload: &[u8]) -> StoreResult<()> {
    let (op, key, value) = decode_mutation(payload)?;
    match op {
        OP_PUT => {
            index.insert(key.to_vec(), Bytes::copy_from_slice(value));
        }
        OP_DELETE => {
            index.remove(key);
        }
        other => return Err(StoreError::Corrupt(format!("unknown op byte {other}"))),
    }
    Ok(())
}

/// Encodes the unframed mutation payload (`op | klen | key | vlen |
/// value`) for group-commit mode, where the [`GroupWal`] adds the frame.
fn mutation_payload(op: u8, key: &[u8], value: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(9 + key.len() + value.len());
    out.push(op);
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(value);
    Bytes::from(out)
}

impl LogStore {
    /// Opens (or creates) the store, performing crash recovery.
    pub fn open(config: LogStoreConfig) -> StoreResult<Self> {
        std::fs::create_dir_all(&config.dir)?;
        let mut index = BTreeMap::new();
        load_records(&config.dir.join("snapshot.db"), &mut index, false)?;
        let wal_path = config.dir.join("wal.log");
        let backend = if let Some(wal_config) = config.group_commit {
            // GroupWal::open replays the same frame format and truncates
            // any torn tail itself.
            let (wal, frames) = GroupWal::open(&wal_path, wal_config)?;
            for frame in frames {
                apply_mutation(&mut index, &frame)?;
            }
            Backend::Group {
                wal,
                order: Mutex::new(()),
                rotation: RwLock::new(()),
            }
        } else {
            let valid = load_records(&wal_path, &mut index, true)?;
            // Physically drop a torn tail: without this, appends land
            // after the garbage bytes and the *next* recovery reports
            // mid-log corruption.
            let on_disk = std::fs::metadata(&wal_path).map(|m| m.len()).unwrap_or(0);
            if valid < on_disk {
                OpenOptions::new()
                    .write(true)
                    .open(&wal_path)?
                    .set_len(valid)?;
            }
            let wal = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&wal_path)?;
            let wal_len = wal.metadata()?.len();
            Backend::Plain(Mutex::new(Writer { wal, wal_len }))
        };
        Ok(LogStore {
            index: RwLock::new(index),
            backend,
            config,
        })
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.index.read().len()
    }

    /// True when no live keys exist.
    pub fn is_empty(&self) -> bool {
        self.index.read().is_empty()
    }

    /// Current WAL size in bytes (observability / compaction tests).
    pub fn wal_len(&self) -> u64 {
        match &self.backend {
            Backend::Plain(writer) => writer.lock().wal_len,
            Backend::Group { wal, .. } => wal.len(),
        }
    }

    /// Group-commit counters (zero in plain mode).
    pub fn wal_stats(&self) -> WalStatsSnapshot {
        match &self.backend {
            Backend::Plain(_) => WalStatsSnapshot::default(),
            Backend::Group { wal, .. } => wal.stats(),
        }
    }

    /// Mirrors group-commit counters into `counters` (no-op in plain
    /// mode). See [`GroupWal::mirror_counters`].
    pub fn mirror_wal_counters(&self, counters: WalCounters) {
        if let Backend::Group { wal, .. } = &self.backend {
            wal.mirror_counters(counters);
        }
    }

    /// Appends one mutation and applies it to the index, atomically with
    /// respect to compaction: the writer lock is held across the WAL write
    /// *and* the index update, and compaction runs *before* the append, so
    /// a snapshot can never be cut from an index that lags the WAL (which
    /// would lose the lagging records when the WAL is truncated).
    /// `durable` selects the configured [`SyncPolicy`]; deferred writes
    /// skip the per-append fsync and rely on [`StateStore::sync`].
    fn append_and_apply(
        &self,
        writer: &Mutex<Writer>,
        framed: Vec<u8>,
        durable: bool,
        apply: impl FnOnce(&mut BTreeMap<Vec<u8>, Bytes>),
    ) -> StoreResult<()> {
        let mut w = writer.lock();
        if w.wal_len + framed.len() as u64 >= self.config.compact_threshold {
            self.compact_plain_locked(&mut w)?;
        }
        w.wal.write_all(&framed)?;
        if durable && self.config.sync == SyncPolicy::Always {
            w.wal.sync_data()?;
        }
        w.wal_len += framed.len() as u64;
        apply(&mut self.index.write());
        Ok(())
    }

    /// Group-commit append: the mutation is applied to the index eagerly
    /// (so the index is always ≥ the WAL — a snapshot cut from it can
    /// only be *ahead* of the log, never behind) and queued to the
    /// committer; with `wait` the call blocks until the mutation's group
    /// commits, without it durability is deferred to the next `sync()`.
    fn append_group(
        &self,
        payload: Bytes,
        wait: bool,
        apply: impl FnOnce(&mut BTreeMap<Vec<u8>, Bytes>),
    ) -> StoreResult<()> {
        let Backend::Group {
            wal,
            order,
            rotation,
        } = &self.backend
        else {
            unreachable!("append_group on plain backend");
        };
        let ticket = {
            let _rotation = rotation.read();
            let _order = order.lock();
            apply(&mut self.index.write());
            if wait {
                Some(wal.submit(payload))
            } else {
                wal.submit_with(payload, |_| {});
                None
            }
        };
        if let Some(ticket) = ticket {
            ticket.wait()?;
        }
        if wal.len() >= self.config.compact_threshold {
            self.try_compact_group()?;
        }
        Ok(())
    }

    /// Rewrites the snapshot from the in-memory index and truncates the
    /// WAL. Called with the writer lock held so no appends interleave.
    fn compact_plain_locked(&self, w: &mut Writer) -> StoreResult<()> {
        let buf = {
            // Serialize under the index read guard, but do the file I/O
            // with the guard dropped: the writer lock (held by every
            // caller) is what freezes the index against mutation, so the
            // snapshot stays consistent while readers proceed unblocked
            // during the writes.
            let index = self.index.read();
            let mut buf = Vec::new();
            for (key, value) in index.iter() {
                encode_mutation(OP_PUT, key, value, &mut buf);
            }
            buf
        };
        self.write_snapshot(&buf)?;
        // Truncate the WAL now that the snapshot covers everything.
        w.wal = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(self.config.dir.join("wal.log"))?;
        w.wal_len = 0;
        Ok(())
    }

    /// Group-mode compaction. The rotation write lock excludes appenders;
    /// frames already queued to the committer are covered by the snapshot
    /// (the index is always ≥ the WAL), and the reset is itself a queued
    /// op, so it lands *after* them in WAL order.
    fn compact_group_locked(&self, wal: &GroupWal) -> StoreResult<()> {
        let buf = {
            let index = self.index.read();
            let mut buf = Vec::new();
            for (key, value) in index.iter() {
                encode_mutation(OP_PUT, key, value, &mut buf);
            }
            buf
        };
        self.write_snapshot(&buf)?;
        wal.reset()
    }

    /// Opportunistic group-mode compaction: skips (rather than queues
    /// behind) a compaction already in flight.
    fn try_compact_group(&self) -> StoreResult<()> {
        let Backend::Group { wal, rotation, .. } = &self.backend else {
            return Ok(());
        };
        let Some(_guard) = rotation.try_write() else {
            return Ok(());
        };
        if wal.len() < self.config.compact_threshold {
            return Ok(()); // raced: someone else already compacted
        }
        self.compact_group_locked(wal)
    }

    fn write_snapshot(&self, buf: &[u8]) -> StoreResult<()> {
        let tmp_path = self.config.dir.join("snapshot.tmp");
        let final_path = self.config.dir.join("snapshot.db");
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(buf)?;
        tmp.sync_data()?;
        std::fs::rename(&tmp_path, &final_path)?;
        Ok(())
    }

    /// Forces a compaction regardless of WAL size.
    pub fn compact(&self) -> StoreResult<()> {
        match &self.backend {
            Backend::Plain(writer) => {
                let mut w = writer.lock();
                self.compact_plain_locked(&mut w)
            }
            Backend::Group { wal, rotation, .. } => {
                let _guard = rotation.write();
                self.compact_group_locked(wal)
            }
        }
    }
}

impl StateStore for LogStore {
    fn get(&self, key: &Key) -> StoreResult<Option<Bytes>> {
        Ok(self.index.read().get(key.as_bytes()).cloned())
    }

    fn put(&self, key: &Key, value: Bytes) -> StoreResult<()> {
        match &self.backend {
            Backend::Plain(writer) => {
                // Encode first (borrowing `value`), then move the same
                // handle into the index — no refcount churn, no byte
                // copies beyond the frame.
                let mut framed = Vec::new();
                encode_mutation(OP_PUT, key.as_bytes(), &value, &mut framed);
                self.append_and_apply(writer, framed, true, move |index| {
                    index.insert(key.as_bytes().to_vec(), value);
                })
            }
            Backend::Group { .. } => {
                let payload = mutation_payload(OP_PUT, key.as_bytes(), &value);
                self.append_group(payload, true, move |index| {
                    index.insert(key.as_bytes().to_vec(), value);
                })
            }
        }
    }

    fn put_deferred(&self, key: &Key, value: Bytes) -> StoreResult<()> {
        match &self.backend {
            Backend::Plain(writer) => {
                let mut framed = Vec::new();
                encode_mutation(OP_PUT, key.as_bytes(), &value, &mut framed);
                self.append_and_apply(writer, framed, false, move |index| {
                    index.insert(key.as_bytes().to_vec(), value);
                })
            }
            Backend::Group { .. } => {
                let payload = mutation_payload(OP_PUT, key.as_bytes(), &value);
                self.append_group(payload, false, move |index| {
                    index.insert(key.as_bytes().to_vec(), value);
                })
            }
        }
    }

    fn delete(&self, key: &Key) -> StoreResult<()> {
        match &self.backend {
            Backend::Plain(writer) => {
                let mut framed = Vec::new();
                encode_mutation(OP_DELETE, key.as_bytes(), &[], &mut framed);
                self.append_and_apply(writer, framed, true, |index| {
                    index.remove(key.as_bytes());
                })
            }
            Backend::Group { .. } => {
                let payload = mutation_payload(OP_DELETE, key.as_bytes(), &[]);
                self.append_group(payload, true, |index| {
                    index.remove(key.as_bytes());
                })
            }
        }
    }

    fn scan_prefix(&self, prefix: &[u8]) -> StoreResult<Vec<(Key, Bytes)>> {
        let index = self.index.read();
        Ok(index
            .range(prefix.to_vec()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (Key::from_encoded(k), v.clone()))
            .collect())
    }

    fn sync(&self) -> StoreResult<()> {
        match &self.backend {
            Backend::Plain(writer) => {
                writer.lock().wal.sync_data()?;
                Ok(())
            }
            Backend::Group { wal, .. } => wal.sync(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "aodb-logstore-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn k(p: &str) -> Key {
        Key::new("t", p)
    }

    #[test]
    fn basic_roundtrip() {
        let dir = temp_dir("basic");
        let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        store.put(&k("a"), Bytes::from_static(b"1")).unwrap();
        store.put(&k("b"), Bytes::from_static(b"2")).unwrap();
        store.delete(&k("a")).unwrap();
        assert_eq!(store.get(&k("a")).unwrap(), None);
        assert_eq!(store.get(&k("b")).unwrap(), Some(Bytes::from_static(b"2")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn survives_reopen() {
        let dir = temp_dir("reopen");
        {
            let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
            for i in 0..100 {
                store
                    .put(&k(&format!("{i:03}")), Bytes::from(format!("v{i}")))
                    .unwrap();
            }
            store.delete(&k("050")).unwrap();
        }
        let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        assert_eq!(store.len(), 99);
        assert_eq!(store.get(&k("050")).unwrap(), None);
        assert_eq!(
            store.get(&k("042")).unwrap(),
            Some(Bytes::from_static(b"v42"))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_write_is_discarded() {
        let dir = temp_dir("torn");
        {
            let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
            store
                .put(&k("safe"), Bytes::from_static(b"committed"))
                .unwrap();
            store
                .put(&k("torn"), Bytes::from_static(b"in-flight"))
                .unwrap();
        }
        // Chop bytes off the WAL tail to simulate a crash mid-append.
        let wal_path = dir.join("wal.log");
        let data = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &data[..data.len() - 7]).unwrap();

        let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        assert_eq!(
            store.get(&k("safe")).unwrap(),
            Some(Bytes::from_static(b"committed"))
        );
        assert_eq!(store.get(&k("torn")).unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_corruption_is_reported() {
        let dir = temp_dir("corrupt");
        {
            let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
            store.put(&k("one"), Bytes::from_static(b"1111")).unwrap();
            store.put(&k("two"), Bytes::from_static(b"2222")).unwrap();
        }
        let wal_path = dir.join("wal.log");
        let mut data = std::fs::read(&wal_path).unwrap();
        data[12] ^= 0xA5; // flip a byte inside the first record's payload
        std::fs::write(&wal_path, &data).unwrap();
        assert!(matches!(
            LogStore::open(LogStoreConfig::new(&dir)),
            Err(StoreError::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_shrinks_wal_and_preserves_data() {
        let dir = temp_dir("compact");
        let mut config = LogStoreConfig::new(&dir);
        config.compact_threshold = 4 * 1024;
        let store = LogStore::open(config).unwrap();
        // Overwrite a small key set many times: log >> live data.
        for round in 0..200 {
            for i in 0..10 {
                store
                    .put(&k(&format!("{i}")), Bytes::from(format!("round-{round}")))
                    .unwrap();
            }
        }
        assert!(store.wal_len() < 4 * 1024, "wal should have been compacted");
        drop(store);
        let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        assert_eq!(store.len(), 10);
        assert_eq!(
            store.get(&k("3")).unwrap(),
            Some(Bytes::from_static(b"round-199"))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_after_recovery() {
        let dir = temp_dir("scan");
        {
            let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
            for i in 0..5 {
                store
                    .put(
                        &Key::with_sort("t", "p", &format!("{i}")),
                        Bytes::from(format!("{i}")),
                    )
                    .unwrap();
            }
            store.compact().unwrap();
            store
                .put(&Key::with_sort("t", "p", "9"), Bytes::from_static(b"9"))
                .unwrap();
        }
        let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        let hits = store.scan_prefix(&Key::partition_prefix("t", "p")).unwrap();
        assert_eq!(hits.len(), 6);
        assert_eq!(hits.last().unwrap().1, Bytes::from_static(b"9"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn group_config(dir: &Path) -> LogStoreConfig {
        LogStoreConfig::new(dir).with_group_commit(WalConfig::default())
    }

    #[test]
    fn group_mode_roundtrip_and_reopen_plain() {
        let dir = temp_dir("group-roundtrip");
        {
            let store = LogStore::open(group_config(&dir)).unwrap();
            store.put(&k("a"), Bytes::from_static(b"1")).unwrap();
            store.put(&k("b"), Bytes::from_static(b"2")).unwrap();
            store.delete(&k("a")).unwrap();
            assert_eq!(store.get(&k("a")).unwrap(), None);
            assert!(store.wal_stats().groups >= 1);
        }
        // The on-disk format is shared: a plain-mode open replays a
        // group-mode log (and vice versa).
        let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        assert_eq!(store.get(&k("a")).unwrap(), None);
        assert_eq!(store.get(&k("b")).unwrap(), Some(Bytes::from_static(b"2")));
        drop(store);
        let store = LogStore::open(group_config(&dir)).unwrap();
        assert_eq!(store.get(&k("b")).unwrap(), Some(Bytes::from_static(b"2")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_mode_concurrent_writers_coalesce() {
        use std::sync::Arc;
        let dir = temp_dir("group-concurrent");
        let store = Arc::new(LogStore::open(group_config(&dir)).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        store
                            .put(
                                &Key::with_sort("t", &format!("w{t}"), &format!("{i:04}")),
                                Bytes::from_static(b"x"),
                            )
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 1000);
        let stats = store.wal_stats();
        assert_eq!(stats.frames, 1000);
        assert_eq!(stats.fsyncs, stats.groups, "one fsync per group");
        drop(store);
        let store = LogStore::open(group_config(&dir)).unwrap();
        assert_eq!(store.len(), 1000);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_mode_compaction_preserves_data() {
        let dir = temp_dir("group-compact");
        let mut config = group_config(&dir);
        config.compact_threshold = 4 * 1024;
        let store = LogStore::open(config).unwrap();
        for round in 0..200 {
            for i in 0..10 {
                store
                    .put(&k(&format!("{i}")), Bytes::from(format!("round-{round}")))
                    .unwrap();
            }
        }
        assert!(
            store.wal_len() < 64 * 1024,
            "wal should have been compacted (len {})",
            store.wal_len()
        );
        drop(store);
        let store = LogStore::open(group_config(&dir)).unwrap();
        assert_eq!(store.len(), 10);
        assert_eq!(
            store.get(&k("3")).unwrap(),
            Some(Bytes::from_static(b"round-199"))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_mode_deferred_put_is_visible_and_synced() {
        let dir = temp_dir("group-deferred");
        {
            let store = LogStore::open(group_config(&dir)).unwrap();
            for i in 0..50 {
                store
                    .put_deferred(&k(&format!("{i:02}")), Bytes::from(format!("v{i}")))
                    .unwrap();
            }
            // Deferred writes are immediately readable...
            assert_eq!(store.len(), 50);
            // ...and one sync makes the whole batch durable.
            store.sync().unwrap();
        }
        let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        assert_eq!(store.len(), 50);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plain_mode_truncates_torn_tail_physically() {
        let dir = temp_dir("torn-truncate");
        {
            let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
            store.put(&k("safe"), Bytes::from_static(b"ok")).unwrap();
            store.put(&k("torn"), Bytes::from_static(b"gone")).unwrap();
        }
        let wal_path = dir.join("wal.log");
        let data = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &data[..data.len() - 3]).unwrap();
        {
            // Recovery drops the torn record AND truncates the file, so
            // this append lands cleanly after the committed prefix...
            let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
            store.put(&k("after"), Bytes::from_static(b"new")).unwrap();
        }
        // ...and the next recovery sees no corruption.
        let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        assert_eq!(
            store.get(&k("safe")).unwrap(),
            Some(Bytes::from_static(b"ok"))
        );
        assert_eq!(store.get(&k("torn")).unwrap(), None);
        assert_eq!(
            store.get(&k("after")).unwrap(),
            Some(Bytes::from_static(b"new"))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers() {
        use std::sync::Arc;
        let dir = temp_dir("concurrent");
        let store = Arc::new(LogStore::open(LogStoreConfig::new(&dir)).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        store
                            .put(
                                &Key::with_sort("t", &format!("w{t}"), &format!("{i:04}")),
                                Bytes::from_static(b"x"),
                            )
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 1000);
        drop(store);
        let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        assert_eq!(store.len(), 1000);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
