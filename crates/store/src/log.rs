//! Log-structured durable store: write-ahead log + in-memory index +
//! snapshot compaction.
//!
//! Layout on disk (inside the store directory):
//!
//! * `snapshot.db` — a checkpoint: one framed `Put` record per live key.
//! * `wal.log`     — framed mutation records appended since the snapshot.
//!
//! Recovery loads the snapshot and replays the WAL; a torn final record
//! (crash mid-append) is truncated silently, a checksum mismatch anywhere
//! else surfaces as [`StoreError::Corrupt`]. When the WAL outgrows
//! `compact_threshold`, the store writes a fresh snapshot and truncates the
//! WAL.
//!
//! All values are also kept in the in-memory index, so reads never touch
//! disk — matching the paper's architecture where the actor tier is an
//! in-memory cache and storage exists for durability.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use crate::api::{Key, StateStore, StoreError, StoreResult};
use crate::codec::{crc32, parse_record};

const OP_PUT: u8 = 1;
const OP_DELETE: u8 = 2;

/// Durability of individual appends.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SyncPolicy {
    /// `fsync` after every append (slow, strongest).
    Always,
    /// Let the OS page cache decide; `sync()` forces it. This is the
    /// default and mirrors DynamoDB's behaviour as seen by a client (the
    /// service acks before our process could observe a local fsync anyway).
    #[default]
    OnDemand,
}

/// Configuration for [`LogStore`].
#[derive(Clone, Debug)]
pub struct LogStoreConfig {
    /// Directory holding `snapshot.db` and `wal.log` (created if missing).
    pub dir: PathBuf,
    /// WAL size that triggers snapshot compaction.
    pub compact_threshold: u64,
    /// Append durability.
    pub sync: SyncPolicy,
}

impl LogStoreConfig {
    /// Defaults: 16 MiB compaction threshold, on-demand sync.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        LogStoreConfig {
            dir: dir.into(),
            compact_threshold: 16 * 1024 * 1024,
            sync: SyncPolicy::OnDemand,
        }
    }
}

struct Writer {
    wal: File,
    wal_len: u64,
}

/// The log-structured store.
pub struct LogStore {
    index: RwLock<BTreeMap<Vec<u8>, Bytes>>,
    writer: Mutex<Writer>,
    config: LogStoreConfig,
}

/// Encodes one mutation as a framed record (`len | crc | payload`)
/// directly into `out`: the payload bytes are written once, in place,
/// with the CRC computed over the written slice and patched into its
/// placeholder afterwards — no intermediate payload `Vec` copied a
/// second time through `frame_record`.
fn encode_mutation(op: u8, key: &[u8], value: &[u8], out: &mut Vec<u8>) {
    let payload_len = 9 + key.len() + value.len();
    out.reserve(8 + payload_len);
    let frame_start = out.len();
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // CRC placeholder, patched below
    out.push(op);
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(value);
    let crc = crc32(&out[frame_start + 8..]);
    out[frame_start + 4..frame_start + 8].copy_from_slice(&crc.to_le_bytes());
}

fn decode_mutation(payload: &[u8]) -> StoreResult<(u8, &[u8], &[u8])> {
    let fail = || StoreError::Corrupt("truncated mutation payload".into());
    if payload.len() < 9 {
        return Err(fail());
    }
    let op = payload[0];
    let klen = u32::from_le_bytes(payload[1..5].try_into().expect("4 bytes")) as usize;
    let rest = &payload[5..];
    if rest.len() < klen + 4 {
        return Err(fail());
    }
    let key = &rest[..klen];
    let vlen = u32::from_le_bytes(rest[klen..klen + 4].try_into().expect("4 bytes")) as usize;
    let value = &rest[klen + 4..];
    if value.len() != vlen {
        return Err(fail());
    }
    Ok((op, key, value))
}

fn load_records(
    path: &Path,
    index: &mut BTreeMap<Vec<u8>, Bytes>,
    allow_torn_tail: bool,
) -> StoreResult<()> {
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut buf)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e.into()),
    }
    let mut offset = 0;
    while offset < buf.len() {
        match parse_record(&buf[offset..]) {
            Ok(Some((payload, consumed))) => {
                let (op, key, value) = decode_mutation(payload)?;
                match op {
                    OP_PUT => {
                        index.insert(key.to_vec(), Bytes::copy_from_slice(value));
                    }
                    OP_DELETE => {
                        index.remove(key);
                    }
                    other => return Err(StoreError::Corrupt(format!("unknown op byte {other}"))),
                }
                offset += consumed;
            }
            Ok(None) if allow_torn_tail => break, // crash mid-append: discard tail
            Ok(None) => return Err(StoreError::Corrupt("truncated snapshot record".into())),
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

impl LogStore {
    /// Opens (or creates) the store, performing crash recovery.
    pub fn open(config: LogStoreConfig) -> StoreResult<Self> {
        std::fs::create_dir_all(&config.dir)?;
        let mut index = BTreeMap::new();
        load_records(&config.dir.join("snapshot.db"), &mut index, false)?;
        load_records(&config.dir.join("wal.log"), &mut index, true)?;
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(config.dir.join("wal.log"))?;
        let wal_len = wal.metadata()?.len();
        Ok(LogStore {
            index: RwLock::new(index),
            writer: Mutex::new(Writer { wal, wal_len }),
            config,
        })
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.index.read().len()
    }

    /// True when no live keys exist.
    pub fn is_empty(&self) -> bool {
        self.index.read().is_empty()
    }

    /// Current WAL size in bytes (observability / compaction tests).
    pub fn wal_len(&self) -> u64 {
        self.writer.lock().wal_len
    }

    /// Appends one mutation and applies it to the index, atomically with
    /// respect to compaction: the writer lock is held across the WAL write
    /// *and* the index update, and compaction runs *before* the append, so
    /// a snapshot can never be cut from an index that lags the WAL (which
    /// would lose the lagging records when the WAL is truncated).
    fn append_and_apply(
        &self,
        framed: Vec<u8>,
        apply: impl FnOnce(&mut BTreeMap<Vec<u8>, Bytes>),
    ) -> StoreResult<()> {
        let mut w = self.writer.lock();
        if w.wal_len + framed.len() as u64 >= self.config.compact_threshold {
            self.compact_locked(&mut w)?;
        }
        w.wal.write_all(&framed)?;
        if self.config.sync == SyncPolicy::Always {
            w.wal.sync_data()?;
        }
        w.wal_len += framed.len() as u64;
        apply(&mut self.index.write());
        Ok(())
    }

    /// Rewrites the snapshot from the in-memory index and truncates the
    /// WAL. Called with the writer lock held so no appends interleave.
    fn compact_locked(&self, w: &mut Writer) -> StoreResult<()> {
        let tmp_path = self.config.dir.join("snapshot.tmp");
        let final_path = self.config.dir.join("snapshot.db");
        // Serialize under the index read guard, but do the file I/O with
        // the guard dropped: the writer lock (held by every caller) is
        // what freezes the index against mutation, so the snapshot stays
        // consistent while readers proceed unblocked during the writes.
        let buf = {
            let index = self.index.read();
            let mut buf = Vec::new();
            for (key, value) in index.iter() {
                encode_mutation(OP_PUT, key, value, &mut buf);
            }
            buf
        };
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(&buf)?;
        tmp.sync_data()?;
        std::fs::rename(&tmp_path, &final_path)?;
        // Truncate the WAL now that the snapshot covers everything.
        w.wal = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(self.config.dir.join("wal.log"))?;
        w.wal_len = 0;
        Ok(())
    }

    /// Forces a compaction regardless of WAL size.
    pub fn compact(&self) -> StoreResult<()> {
        let mut w = self.writer.lock();
        self.compact_locked(&mut w)
    }
}

impl StateStore for LogStore {
    fn get(&self, key: &Key) -> StoreResult<Option<Bytes>> {
        Ok(self.index.read().get(key.as_bytes()).cloned())
    }

    fn put(&self, key: &Key, value: Bytes) -> StoreResult<()> {
        // Encode first (borrowing `value`), then move the same handle into
        // the index — no refcount churn, no byte copies beyond the frame.
        let mut framed = Vec::new();
        encode_mutation(OP_PUT, key.as_bytes(), &value, &mut framed);
        self.append_and_apply(framed, move |index| {
            index.insert(key.as_bytes().to_vec(), value);
        })
    }

    fn delete(&self, key: &Key) -> StoreResult<()> {
        let mut framed = Vec::new();
        encode_mutation(OP_DELETE, key.as_bytes(), &[], &mut framed);
        self.append_and_apply(framed, |index| {
            index.remove(key.as_bytes());
        })
    }

    fn scan_prefix(&self, prefix: &[u8]) -> StoreResult<Vec<(Key, Bytes)>> {
        let index = self.index.read();
        Ok(index
            .range(prefix.to_vec()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (Key::from_encoded(k), v.clone()))
            .collect())
    }

    fn sync(&self) -> StoreResult<()> {
        self.writer.lock().wal.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "aodb-logstore-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn k(p: &str) -> Key {
        Key::new("t", p)
    }

    #[test]
    fn basic_roundtrip() {
        let dir = temp_dir("basic");
        let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        store.put(&k("a"), Bytes::from_static(b"1")).unwrap();
        store.put(&k("b"), Bytes::from_static(b"2")).unwrap();
        store.delete(&k("a")).unwrap();
        assert_eq!(store.get(&k("a")).unwrap(), None);
        assert_eq!(store.get(&k("b")).unwrap(), Some(Bytes::from_static(b"2")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn survives_reopen() {
        let dir = temp_dir("reopen");
        {
            let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
            for i in 0..100 {
                store
                    .put(&k(&format!("{i:03}")), Bytes::from(format!("v{i}")))
                    .unwrap();
            }
            store.delete(&k("050")).unwrap();
        }
        let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        assert_eq!(store.len(), 99);
        assert_eq!(store.get(&k("050")).unwrap(), None);
        assert_eq!(
            store.get(&k("042")).unwrap(),
            Some(Bytes::from_static(b"v42"))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_write_is_discarded() {
        let dir = temp_dir("torn");
        {
            let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
            store
                .put(&k("safe"), Bytes::from_static(b"committed"))
                .unwrap();
            store
                .put(&k("torn"), Bytes::from_static(b"in-flight"))
                .unwrap();
        }
        // Chop bytes off the WAL tail to simulate a crash mid-append.
        let wal_path = dir.join("wal.log");
        let data = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &data[..data.len() - 7]).unwrap();

        let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        assert_eq!(
            store.get(&k("safe")).unwrap(),
            Some(Bytes::from_static(b"committed"))
        );
        assert_eq!(store.get(&k("torn")).unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_corruption_is_reported() {
        let dir = temp_dir("corrupt");
        {
            let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
            store.put(&k("one"), Bytes::from_static(b"1111")).unwrap();
            store.put(&k("two"), Bytes::from_static(b"2222")).unwrap();
        }
        let wal_path = dir.join("wal.log");
        let mut data = std::fs::read(&wal_path).unwrap();
        data[12] ^= 0xA5; // flip a byte inside the first record's payload
        std::fs::write(&wal_path, &data).unwrap();
        assert!(matches!(
            LogStore::open(LogStoreConfig::new(&dir)),
            Err(StoreError::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_shrinks_wal_and_preserves_data() {
        let dir = temp_dir("compact");
        let mut config = LogStoreConfig::new(&dir);
        config.compact_threshold = 4 * 1024;
        let store = LogStore::open(config).unwrap();
        // Overwrite a small key set many times: log >> live data.
        for round in 0..200 {
            for i in 0..10 {
                store
                    .put(&k(&format!("{i}")), Bytes::from(format!("round-{round}")))
                    .unwrap();
            }
        }
        assert!(store.wal_len() < 4 * 1024, "wal should have been compacted");
        drop(store);
        let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        assert_eq!(store.len(), 10);
        assert_eq!(
            store.get(&k("3")).unwrap(),
            Some(Bytes::from_static(b"round-199"))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_after_recovery() {
        let dir = temp_dir("scan");
        {
            let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
            for i in 0..5 {
                store
                    .put(
                        &Key::with_sort("t", "p", &format!("{i}")),
                        Bytes::from(format!("{i}")),
                    )
                    .unwrap();
            }
            store.compact().unwrap();
            store
                .put(&Key::with_sort("t", "p", "9"), Bytes::from_static(b"9"))
                .unwrap();
        }
        let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        let hits = store.scan_prefix(&Key::partition_prefix("t", "p")).unwrap();
        assert_eq!(hits.len(), 6);
        assert_eq!(hits.last().unwrap().1, Bytes::from_static(b"9"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers() {
        use std::sync::Arc;
        let dir = temp_dir("concurrent");
        let store = Arc::new(LogStore::open(LogStoreConfig::new(&dir)).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        store
                            .put(
                                &Key::with_sort("t", &format!("w{t}"), &format!("{i:04}")),
                                Bytes::from_static(b"x"),
                            )
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 1000);
        drop(store);
        let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        assert_eq!(store.len(), 1000);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
