//! In-memory store: the baseline implementation used by tests and by
//! benchmark configurations that deliberately exclude storage cost (the
//! paper disables grain-storage uploads during its latency experiments).

use std::collections::BTreeMap;

use bytes::Bytes;
use parking_lot::RwLock;

use crate::api::{Key, StateStore, StoreResult};

/// A `BTreeMap`-backed store. Ordered, so prefix scans are range scans.
///
/// Every guard on `map` is a per-call temporary covering only the map
/// operation itself — never I/O, sleeps, or decorator-injected latency
/// (aodb-lockcheck's `lock-across-blocking` rule audits this).
#[derive(Default)]
pub struct MemStore {
    map: RwLock<BTreeMap<Vec<u8>, Bytes>>,
}

impl MemStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

impl StateStore for MemStore {
    fn get(&self, key: &Key) -> StoreResult<Option<Bytes>> {
        Ok(self.map.read().get(key.as_bytes()).cloned())
    }

    fn put(&self, key: &Key, value: Bytes) -> StoreResult<()> {
        self.map.write().insert(key.as_bytes().to_vec(), value);
        Ok(())
    }

    fn delete(&self, key: &Key) -> StoreResult<()> {
        self.map.write().remove(key.as_bytes());
        Ok(())
    }

    fn scan_prefix(&self, prefix: &[u8]) -> StoreResult<Vec<(Key, Bytes)>> {
        let map = self.map.read();
        Ok(map
            .range(prefix.to_vec()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (Key::from_encoded(k), v.clone()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let store = MemStore::new();
        let k = Key::new("t", "a");
        assert_eq!(store.get(&k).unwrap(), None);
        store.put(&k, Bytes::from_static(b"v1")).unwrap();
        assert_eq!(store.get(&k).unwrap(), Some(Bytes::from_static(b"v1")));
        store.put(&k, Bytes::from_static(b"v2")).unwrap();
        assert_eq!(store.get(&k).unwrap(), Some(Bytes::from_static(b"v2")));
        store.delete(&k).unwrap();
        assert_eq!(store.get(&k).unwrap(), None);
        store.delete(&k).unwrap(); // idempotent
    }

    #[test]
    fn scan_prefix_returns_partition_in_order() {
        let store = MemStore::new();
        for (p, s) in [("p1", "b"), ("p1", "a"), ("p2", "a"), ("p1", "c")] {
            store
                .put(&Key::with_sort("t", p, s), Bytes::from(format!("{p}/{s}")))
                .unwrap();
        }
        let hits = store
            .scan_prefix(&Key::partition_prefix("t", "p1"))
            .unwrap();
        let values: Vec<_> = hits.iter().map(|(_, v)| v.as_ref().to_vec()).collect();
        assert_eq!(
            values,
            vec![b"p1/a".to_vec(), b"p1/b".to_vec(), b"p1/c".to_vec()]
        );
    }

    #[test]
    fn concurrent_writers_do_not_lose_keys() {
        use std::sync::Arc;
        let store = Arc::new(MemStore::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        let k = Key::with_sort("t", &format!("w{t}"), &format!("{i:04}"));
                        store.put(&k, Bytes::from_static(b"x")).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 8 * 500);
    }
}
