//! DynamoDB-style provisioned-throughput wrapper.
//!
//! The paper's experimental setup provisions DynamoDB with 200 read and 200
//! write capacity units per second and explicitly defers data-point uploads
//! so the benchmark measures in-memory actors rather than storage. This
//! wrapper reproduces the mechanism being avoided: capacity-unit token
//! buckets (1 read unit per 4 KiB read, 1 write unit per 1 KiB written),
//! burst credit, throttling errors or blocking backoff, and per-request
//! latency injection. The `durability` ablation bench uses it to show what
//! per-request persistence would have cost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;

use crate::api::{Key, StateStore, StoreError, StoreResult};

/// 1 read capacity unit covers this many bytes (DynamoDB: 4 KiB).
pub const READ_UNIT_BYTES: usize = 4096;
/// 1 write capacity unit covers this many bytes (DynamoDB: 1 KiB).
pub const WRITE_UNIT_BYTES: usize = 1024;

/// Behaviour when a bucket is empty.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExhaustionBehavior {
    /// Fail fast with [`StoreError::Throttled`] (DynamoDB's
    /// `ProvisionedThroughputExceededException`).
    #[default]
    Throttle,
    /// Sleep until capacity accrues (an SDK retry loop collapsed into the
    /// store).
    Block,
}

/// Provisioned-throughput settings.
#[derive(Clone, Copy, Debug)]
pub struct ProvisionedConfig {
    /// Read capacity units per second.
    pub read_units: u32,
    /// Write capacity units per second.
    pub write_units: u32,
    /// Seconds of unused capacity that may accrue as burst credit
    /// (DynamoDB grants up to 300 s; default 30 s keeps tests brisk).
    pub burst_seconds: f64,
    /// What to do when a bucket runs dry.
    pub on_exhausted: ExhaustionBehavior,
    /// Fixed service latency added to every request (network + service
    /// time of the cloud store). `Duration::ZERO` disables.
    pub request_latency: Duration,
}

impl ProvisionedConfig {
    /// The paper's benchmark configuration: 200 RCU / 200 WCU.
    pub fn paper_default() -> Self {
        ProvisionedConfig {
            read_units: 200,
            write_units: 200,
            burst_seconds: 30.0,
            on_exhausted: ExhaustionBehavior::Throttle,
            request_latency: Duration::ZERO,
        }
    }
}

struct TokenBucket {
    tokens: f64,
    capacity: f64,
    rate_per_sec: f64,
    last_refill: Instant,
}

impl TokenBucket {
    fn new(rate_per_sec: f64, burst_seconds: f64) -> Self {
        let capacity = (rate_per_sec * burst_seconds).max(1.0);
        TokenBucket {
            tokens: capacity,
            capacity,
            rate_per_sec,
            last_refill: Instant::now(),
        }
    }

    fn refill(&mut self) {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + elapsed * self.rate_per_sec).min(self.capacity);
    }

    /// Takes `n` tokens or reports how long until they accrue.
    fn take(&mut self, n: f64) -> Result<(), Duration> {
        self.refill();
        if self.tokens >= n {
            self.tokens -= n;
            Ok(())
        } else {
            let deficit = n - self.tokens;
            Err(Duration::from_secs_f64(deficit / self.rate_per_sec))
        }
    }
}

/// Capacity-consumption statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProvisionedStats {
    /// Read requests served.
    pub reads: u64,
    /// Write requests served.
    pub writes: u64,
    /// Requests rejected with [`StoreError::Throttled`].
    pub throttled: u64,
    /// Total time spent blocked waiting for capacity, in microseconds.
    pub blocked_us: u64,
}

/// A [`StateStore`] decorator imposing provisioned throughput.
pub struct ProvisionedStore<S> {
    inner: S,
    read_bucket: Mutex<TokenBucket>,
    write_bucket: Mutex<TokenBucket>,
    config: ProvisionedConfig,
    reads: AtomicU64,
    writes: AtomicU64,
    throttled: AtomicU64,
    blocked_us: AtomicU64,
}

fn units(bytes: usize, unit_size: usize) -> f64 {
    (bytes.max(1)).div_ceil(unit_size) as f64
}

impl<S: StateStore> ProvisionedStore<S> {
    /// Wraps `inner` with the given capacity settings.
    pub fn new(inner: S, config: ProvisionedConfig) -> Self {
        ProvisionedStore {
            inner,
            read_bucket: Mutex::new(TokenBucket::new(
                config.read_units as f64,
                config.burst_seconds,
            )),
            write_bucket: Mutex::new(TokenBucket::new(
                config.write_units as f64,
                config.burst_seconds,
            )),
            config,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
            blocked_us: AtomicU64::new(0),
        }
    }

    /// Consumption counters.
    pub fn stats(&self) -> ProvisionedStats {
        ProvisionedStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            throttled: self.throttled.load(Ordering::Relaxed),
            blocked_us: self.blocked_us.load(Ordering::Relaxed),
        }
    }

    /// Access to the wrapped store (tests, maintenance).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn consume(&self, bucket: &Mutex<TokenBucket>, n: f64) -> StoreResult<()> {
        loop {
            let wait = match bucket.lock().take(n) {
                Ok(()) => break,
                Err(wait) => wait,
            };
            match self.config.on_exhausted {
                ExhaustionBehavior::Throttle => {
                    self.throttled.fetch_add(1, Ordering::Relaxed);
                    return Err(StoreError::Throttled);
                }
                ExhaustionBehavior::Block => {
                    self.blocked_us
                        .fetch_add(wait.as_micros() as u64, Ordering::Relaxed);
                    std::thread::sleep(wait);
                }
            }
        }
        if !self.config.request_latency.is_zero() {
            std::thread::sleep(self.config.request_latency);
        }
        Ok(())
    }
}

impl<S: StateStore> StateStore for ProvisionedStore<S> {
    fn get(&self, key: &Key) -> StoreResult<Option<Bytes>> {
        // DynamoDB charges by item size, known only after the read; charge
        // a single unit up front and the remainder after, which converges
        // to the same steady-state rate.
        self.consume(&self.read_bucket, 1.0)?;
        let result = self.inner.get(key)?;
        if let Some(v) = &result {
            let extra = units(v.len(), READ_UNIT_BYTES) - 1.0;
            if extra > 0.0 {
                self.consume(&self.read_bucket, extra)?;
            }
        }
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(result)
    }

    fn put(&self, key: &Key, value: Bytes) -> StoreResult<()> {
        self.consume(&self.write_bucket, units(value.len(), WRITE_UNIT_BYTES))?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.inner.put(key, value)
    }

    fn delete(&self, key: &Key) -> StoreResult<()> {
        self.consume(&self.write_bucket, 1.0)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.inner.delete(key)
    }

    fn scan_prefix(&self, prefix: &[u8]) -> StoreResult<Vec<(Key, Bytes)>> {
        let hits = self.inner.scan_prefix(prefix)?;
        let bytes: usize = hits.iter().map(|(_, v)| v.len()).sum();
        self.consume(&self.read_bucket, units(bytes, READ_UNIT_BYTES))?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(hits)
    }

    fn sync(&self) -> StoreResult<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemStore;

    fn key(i: usize) -> Key {
        Key::new("t", &format!("{i}"))
    }

    fn tiny_config() -> ProvisionedConfig {
        ProvisionedConfig {
            read_units: 100,
            write_units: 10,
            burst_seconds: 1.0,
            on_exhausted: ExhaustionBehavior::Throttle,
            request_latency: Duration::ZERO,
        }
    }

    #[test]
    fn unit_math() {
        assert_eq!(units(0, WRITE_UNIT_BYTES), 1.0);
        assert_eq!(units(1024, WRITE_UNIT_BYTES), 1.0);
        assert_eq!(units(1025, WRITE_UNIT_BYTES), 2.0);
        assert_eq!(units(4096, READ_UNIT_BYTES), 1.0);
        assert_eq!(units(8192, READ_UNIT_BYTES), 2.0);
    }

    #[test]
    fn writes_throttle_after_burst() {
        let store = ProvisionedStore::new(MemStore::new(), tiny_config());
        // Burst allows ~10 one-unit writes; drive well past it.
        let mut throttled = false;
        for i in 0..50 {
            match store.put(&key(i), Bytes::from_static(b"x")) {
                Ok(()) => {}
                Err(StoreError::Throttled) => {
                    throttled = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(throttled, "expected throttling after burst exhaustion");
        assert!(store.stats().throttled >= 1);
    }

    #[test]
    fn large_values_cost_more_units() {
        let store = ProvisionedStore::new(MemStore::new(), tiny_config());
        // 10 KiB = 10 write units = the whole burst in one call.
        store
            .put(&key(0), Bytes::from(vec![0u8; 10 * 1024]))
            .unwrap();
        assert!(matches!(
            store.put(&key(1), Bytes::from_static(b"x")),
            Err(StoreError::Throttled)
        ));
    }

    #[test]
    fn capacity_refills_over_time() {
        let store = ProvisionedStore::new(MemStore::new(), tiny_config());
        for i in 0..10 {
            store.put(&key(i), Bytes::from_static(b"x")).unwrap();
        }
        assert!(matches!(
            store.put(&key(99), Bytes::from_static(b"x")),
            Err(StoreError::Throttled)
        ));
        std::thread::sleep(Duration::from_millis(250));
        // 10 WCU/s × 0.25 s = ~2.5 units accrued.
        store.put(&key(99), Bytes::from_static(b"x")).unwrap();
    }

    #[test]
    fn block_mode_waits_instead_of_failing() {
        let mut config = tiny_config();
        config.on_exhausted = ExhaustionBehavior::Block;
        config.write_units = 50;
        config.burst_seconds = 0.1;
        let store = ProvisionedStore::new(MemStore::new(), config);
        let t0 = Instant::now();
        for i in 0..20 {
            store.put(&key(i), Bytes::from_static(b"x")).unwrap();
        }
        // 5-unit burst + 50/s refill → ~15 units waited ≈ 0.3 s.
        assert!(t0.elapsed() >= Duration::from_millis(150));
        assert_eq!(store.stats().writes, 20);
        assert!(store.stats().blocked_us > 0);
    }

    #[test]
    fn reads_and_writes_use_separate_buckets() {
        let store = ProvisionedStore::new(MemStore::new(), tiny_config());
        for i in 0..10 {
            store.put(&key(i), Bytes::from_static(b"x")).unwrap();
        }
        assert!(matches!(
            store.put(&key(99), Bytes::from_static(b"y")),
            Err(StoreError::Throttled)
        ));
        // Reads still fine: read bucket untouched.
        for i in 0..10 {
            assert!(store.get(&key(i)).unwrap().is_some());
        }
    }

    #[test]
    fn passthrough_semantics() {
        let store = ProvisionedStore::new(MemStore::new(), tiny_config());
        store.put(&key(1), Bytes::from_static(b"v")).unwrap();
        assert_eq!(store.get(&key(1)).unwrap(), Some(Bytes::from_static(b"v")));
        store.delete(&key(1)).unwrap();
        assert_eq!(store.get(&key(1)).unwrap(), None);
        let hits = store.scan_prefix(&Key::namespace_prefix("t")).unwrap();
        assert!(hits.is_empty());
    }
}
