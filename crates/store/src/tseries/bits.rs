//! Bit-granular writer/reader for the time-series block payloads.
//!
//! The Gorilla-style codecs emit variable-width fields (1-bit skip flags,
//! 7-bit delta buckets, arbitrary-width XOR windows), so the payload is a
//! packed bit stream rather than a byte stream. Bits fill each byte from
//! the most-significant end, and multi-bit fields are written MSB-first —
//! the layout every published Gorilla implementation uses, which keeps the
//! golden-fixture bytes comparable to the literature.

/// Append-only bit sink backed by a byte vector.
#[derive(Clone, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Total bits written (the last byte may be partially filled).
    len_bits: usize,
}

impl BitWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// Current size in whole bytes (final partial byte rounded up).
    pub fn len_bytes(&self) -> usize {
        self.len_bits.div_ceil(8)
    }

    /// Appends a single bit.
    pub fn push_bit(&mut self, bit: bool) {
        let slot = self.len_bits % 8;
        if slot == 0 {
            self.buf.push(0);
        }
        if bit {
            let last = self.buf.len() - 1;
            self.buf[last] |= 1 << (7 - slot);
        }
        self.len_bits += 1;
    }

    /// Appends the low `count` bits of `value`, MSB-first. `count` ≤ 64.
    pub fn push_bits(&mut self, value: u64, count: u8) {
        debug_assert!(count <= 64);
        for i in (0..count).rev() {
            self.push_bit((value >> i) & 1 == 1);
        }
    }

    /// The packed bytes (last byte zero-padded) and the exact bit length.
    pub fn finish(self) -> (Vec<u8>, usize) {
        (self.buf, self.len_bits)
    }

    /// Borrowing view of the packed bytes so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Sequential reader over a packed bit stream.
pub struct BitReader<'a> {
    data: &'a [u8],
    pos_bits: usize,
    len_bits: usize,
}

impl<'a> BitReader<'a> {
    /// Reader over `data`, honoring an exact bit length (the tail byte of
    /// a packed stream is zero-padded; `len_bits` keeps the padding from
    /// being read as data).
    pub fn new(data: &'a [u8], len_bits: usize) -> Self {
        BitReader {
            data,
            pos_bits: 0,
            len_bits: len_bits.min(data.len() * 8),
        }
    }

    /// Bits left to read.
    pub fn remaining(&self) -> usize {
        self.len_bits - self.pos_bits
    }

    /// Reads one bit; `None` at end of stream.
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.pos_bits >= self.len_bits {
            return None;
        }
        let byte = self.data[self.pos_bits / 8];
        let bit = (byte >> (7 - (self.pos_bits % 8))) & 1 == 1;
        self.pos_bits += 1;
        Some(bit)
    }

    /// Reads `count` bits MSB-first into the low bits of the result.
    pub fn read_bits(&mut self, count: u8) -> Option<u64> {
        debug_assert!(count <= 64);
        if self.remaining() < count as usize {
            return None;
        }
        let mut out = 0u64;
        for _ in 0..count {
            out = (out << 1) | self.read_bit()? as u64;
        }
        Some(out)
    }
}

/// ZigZag maps signed to unsigned so small-magnitude deltas (of either
/// sign — batches may be locally out of order) stay in the small buckets.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.push_bit(true);
        w.push_bits(0b101, 3);
        w.push_bits(0xDEAD_BEEF, 32);
        w.push_bits(u64::MAX, 64);
        w.push_bit(false);
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(r.read_bit(), Some(true));
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bits(32), Some(0xDEAD_BEEF));
        assert_eq!(r.read_bits(64), Some(u64::MAX));
        assert_eq!(r.read_bit(), Some(false));
        assert_eq!(r.read_bit(), None);
    }

    #[test]
    fn padding_bits_are_not_data() {
        let mut w = BitWriter::new();
        w.push_bits(0b11, 2);
        let (bytes, len) = w.finish();
        assert_eq!(bytes.len(), 1);
        assert_eq!(len, 2);
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(r.read_bits(2), Some(0b11));
        assert_eq!(r.read_bit(), None, "padding must be invisible");
    }

    #[test]
    fn zigzag_roundtrip_extremes() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes map to small codes (bucket-friendliness).
        assert!(zigzag(-1) <= 2);
        assert!(zigzag(32) <= 64);
    }
}
