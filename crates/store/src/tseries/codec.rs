//! Columnar point compression and the sealed-block byte format.
//!
//! Timestamps use delta-of-delta encoding with ZigZag bucket codes;
//! values use Gorilla-style XOR compression. Both streams interleave per
//! point into one packed bit payload, so a block is decoded by a single
//! forward pass.
//!
//! ## Timestamp codes (per point after the first)
//!
//! `dod = (ts[n] − ts[n−1]) − (ts[n−1] − ts[n−2])`, ZigZag-mapped:
//!
//! | prefix  | payload | covers |dod| up to |
//! |---------|---------|------------------|
//! | `0`     | —       | 0 (steady rate)  |
//! | `10`    | 7 bits  | ±63              |
//! | `110`   | 9 bits  | ±255             |
//! | `1110`  | 12 bits | ±2047            |
//! | `11110` | 32 bits | ±2^31−1          |
//! | `11111` | 64 bits | anything (epoch-scale jumps, reordered points) |
//!
//! The first point stores its timestamp raw (64 bits) with the previous
//! delta defined as 0, so a constant-rate stream costs 1 bit/point from
//! the second point on.
//!
//! ## Value codes
//!
//! `xor = bits(v[n]) ^ bits(v[n−1])` (raw 64 bits for the first point):
//!
//! * `0` — identical value (constant series cost: 1 bit).
//! * `10` — XOR fits the previous meaningful-bit window: window bits.
//! * `11` — new window: 6-bit leading-zero count, 6-bit length−1, then
//!   the meaningful bits.
//!
//! NaN and ±∞ round-trip bit-exactly — the codec never interprets the
//! float, it only moves its bit pattern.
//!
//! ## Sealed-block layout
//!
//! ```text
//! magic "TSB1" | count u32 | min_ts u64 | max_ts u64
//! | min_val f64 | max_val f64 | payload_bits u32 | payload | crc32 u32
//! ```
//!
//! All integers little-endian; the CRC covers everything before it. The
//! `min/max` header fields are the per-block sparse index: range scans
//! skip a block without touching its payload when `[min_ts, max_ts]`
//! misses the query window. `min_val`/`max_val` ignore NaNs (a block of
//! only-NaN values stores an inverted `(+∞, −∞)` pair, which matches
//! nothing — exactly right for value pruning).

use crate::api::{StoreError, StoreResult};
use crate::codec::crc32;
use crate::tseries::bits::{unzigzag, zigzag, BitReader, BitWriter};
use crate::tseries::SeriesError;

/// Magic prefix of a sealed block; the last byte is the format version.
// aodb-schema: layout(TSB1) = magic[4] count:u32 min_ts:u64 max_ts:u64 min_val:f64 max_val:f64 payload_bits:u32 payload crc32:u32
pub const BLOCK_MAGIC: &[u8; 4] = b"TSB1";
/// Fixed header length in bytes (everything before the payload).
pub const BLOCK_HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8 + 8 + 4;

/// Per-block sparse index, carried in the block header.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockIndex {
    /// Points in the block.
    pub count: u32,
    /// Smallest timestamp.
    pub min_ts: u64,
    /// Largest timestamp.
    pub max_ts: u64,
    /// Smallest non-NaN value (`+∞` when every value is NaN).
    pub min_val: f64,
    /// Largest non-NaN value (`−∞` when every value is NaN).
    pub max_val: f64,
}

impl BlockIndex {
    fn empty() -> Self {
        BlockIndex {
            count: 0,
            min_ts: u64::MAX,
            max_ts: 0,
            min_val: f64::INFINITY,
            max_val: f64::NEG_INFINITY,
        }
    }

    /// Whether `[from, to]` overlaps this block's timestamp range.
    pub fn overlaps(&self, from_ms: u64, to_ms: u64) -> bool {
        self.count > 0 && self.min_ts <= to_ms && self.max_ts >= from_ms
    }
}

/// Incremental compressor: the mutable tail block. Points append one at
/// a time; the state is exactly what the next point's encoding needs, so
/// a tail survives process restart by re-appending its decoded points.
#[derive(Clone)]
pub struct PointCompressor {
    bits: BitWriter,
    index: BlockIndex,
    prev_ts: u64,
    prev_delta: i64,
    prev_val_bits: u64,
    window_lead: u8,
    window_len: u8,
    window_valid: bool,
}

impl Default for PointCompressor {
    fn default() -> Self {
        Self::new()
    }
}

impl PointCompressor {
    /// Empty tail.
    pub fn new() -> Self {
        PointCompressor {
            bits: BitWriter::new(),
            index: BlockIndex::empty(),
            prev_ts: 0,
            prev_delta: 0,
            prev_val_bits: 0,
            window_lead: 0,
            window_len: 0,
            window_valid: false,
        }
    }

    /// Points appended so far.
    pub fn count(&self) -> u32 {
        self.index.count
    }

    /// Compressed payload size so far, in whole bytes.
    pub fn payload_bytes(&self) -> usize {
        self.bits.len_bytes()
    }

    /// The running sparse index over the appended points.
    pub fn index(&self) -> &BlockIndex {
        &self.index
    }

    /// Appends one point.
    pub fn append(&mut self, ts_ms: u64, value: f64) {
        // Timestamp stream.
        if self.index.count == 0 {
            self.bits.push_bits(ts_ms, 64);
            self.prev_delta = 0;
        } else {
            let delta = ts_ms.wrapping_sub(self.prev_ts) as i64;
            let dod = delta.wrapping_sub(self.prev_delta);
            let zz = zigzag(dod);
            if zz == 0 {
                self.bits.push_bit(false);
            } else if zz < (1 << 7) {
                self.bits.push_bits(0b10, 2);
                self.bits.push_bits(zz, 7);
            } else if zz < (1 << 9) {
                self.bits.push_bits(0b110, 3);
                self.bits.push_bits(zz, 9);
            } else if zz < (1 << 12) {
                self.bits.push_bits(0b1110, 4);
                self.bits.push_bits(zz, 12);
            } else if zz < (1 << 32) {
                self.bits.push_bits(0b11110, 5);
                self.bits.push_bits(zz, 32);
            } else {
                self.bits.push_bits(0b11111, 5);
                self.bits.push_bits(zz, 64);
            }
            self.prev_delta = delta;
        }
        self.prev_ts = ts_ms;

        // Value stream.
        let val_bits = value.to_bits();
        if self.index.count == 0 {
            self.bits.push_bits(val_bits, 64);
        } else {
            let xor = val_bits ^ self.prev_val_bits;
            if xor == 0 {
                self.bits.push_bit(false);
            } else {
                self.bits.push_bit(true);
                let lead = (xor.leading_zeros() as u8).min(63);
                let trail = xor.trailing_zeros() as u8;
                let len = 64 - lead - trail;
                let window_trail = 64 - self.window_lead - self.window_len;
                if self.window_valid && lead >= self.window_lead && trail >= window_trail {
                    // Reuse the previous meaningful-bit window.
                    self.bits.push_bit(false);
                    self.bits.push_bits(xor >> window_trail, self.window_len);
                } else {
                    self.bits.push_bit(true);
                    self.bits.push_bits(lead as u64, 6);
                    self.bits.push_bits((len - 1) as u64, 6);
                    self.bits.push_bits(xor >> trail, len);
                    self.window_lead = lead;
                    self.window_len = len;
                    self.window_valid = true;
                }
            }
        }
        self.prev_val_bits = val_bits;

        // Sparse index.
        self.index.count += 1;
        self.index.min_ts = self.index.min_ts.min(ts_ms);
        self.index.max_ts = self.index.max_ts.max(ts_ms);
        if !value.is_nan() {
            if value < self.index.min_val {
                self.index.min_val = value;
            }
            if value > self.index.max_val {
                self.index.max_val = value;
            }
        }
    }

    /// Serializes the current contents as a full block (header, payload,
    /// CRC). Works for sealed blocks and for the durable image of a
    /// still-open tail alike. Empty tails produce an empty byte string.
    pub fn encode_block(&self) -> Vec<u8> {
        if self.index.count == 0 {
            return Vec::new();
        }
        encode_block_parts(&self.index, self.bits.as_bytes(), self.bits.len_bits())
    }
}

fn encode_block_parts(index: &BlockIndex, payload: &[u8], payload_bits: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(BLOCK_HEADER_LEN + payload.len() + 4);
    out.extend_from_slice(BLOCK_MAGIC);
    out.extend_from_slice(&index.count.to_le_bytes());
    out.extend_from_slice(&index.min_ts.to_le_bytes());
    out.extend_from_slice(&index.max_ts.to_le_bytes());
    out.extend_from_slice(&index.min_val.to_bits().to_le_bytes());
    out.extend_from_slice(&index.max_val.to_bits().to_le_bytes());
    out.extend_from_slice(&(payload_bits as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Parses and verifies a block's header, returning its sparse index
/// without decompressing the payload (the block-skip fast path).
pub fn decode_index(block: &[u8]) -> StoreResult<BlockIndex> {
    let fail = |m: &str| StoreError::Corrupt(format!("tseries block: {m}"));
    if block.len() < BLOCK_HEADER_LEN + 4 {
        return Err(fail("truncated header"));
    }
    if block[0..3] != BLOCK_MAGIC[0..3] {
        return Err(fail("bad magic"));
    }
    // Version dispatch happens before the CRC check: a newer layout
    // keeps its CRC somewhere else, so checking it first would report
    // every future-version block as corruption.
    if block[3] != BLOCK_MAGIC[3] {
        return Err(SeriesError::UnsupportedVersion {
            format: "TSB",
            found: block[3],
            supported: BLOCK_MAGIC[3],
        }
        .into());
    }
    let stored_crc = u32::from_le_bytes(block[block.len() - 4..].try_into().expect("4 bytes"));
    if crc32(&block[..block.len() - 4]) != stored_crc {
        return Err(fail("crc mismatch"));
    }
    let u32_at = |o: usize| u32::from_le_bytes(block[o..o + 4].try_into().expect("4 bytes"));
    let u64_at = |o: usize| u64::from_le_bytes(block[o..o + 8].try_into().expect("8 bytes"));
    let payload_bits = u32_at(40) as usize;
    if block.len() != BLOCK_HEADER_LEN + payload_bits.div_ceil(8) + 4 {
        return Err(fail("length mismatch"));
    }
    Ok(BlockIndex {
        count: u32_at(4),
        min_ts: u64_at(8),
        max_ts: u64_at(16),
        min_val: f64::from_bits(u64_at(24)),
        max_val: f64::from_bits(u64_at(32)),
    })
}

/// Decompresses every point of a block, in append order.
pub fn decode_block(block: &[u8]) -> StoreResult<Vec<(u64, f64)>> {
    if block.is_empty() {
        return Ok(Vec::new());
    }
    let index = decode_index(block)?;
    let payload_bits = u32::from_le_bytes(block[40..44].try_into().expect("4 bytes")) as usize;
    let payload = &block[BLOCK_HEADER_LEN..block.len() - 4];
    decode_points(payload, payload_bits, index.count)
}

/// Decompresses `count` points from a packed payload.
pub fn decode_points(
    payload: &[u8],
    payload_bits: usize,
    count: u32,
) -> StoreResult<Vec<(u64, f64)>> {
    let fail = |m: &str| StoreError::Corrupt(format!("tseries payload: {m}"));
    let mut r = BitReader::new(payload, payload_bits);
    let mut out = Vec::with_capacity(count as usize);
    let mut prev_ts = 0u64;
    let mut prev_delta = 0i64;
    let mut prev_val_bits = 0u64;
    let mut window_lead = 0u8;
    let mut window_len = 0u8;
    for n in 0..count {
        // Timestamp.
        let ts = if n == 0 {
            r.read_bits(64).ok_or_else(|| fail("eof in first ts"))?
        } else {
            let mut prefix = 0u8;
            while prefix < 5 && r.read_bit().ok_or_else(|| fail("eof in ts prefix"))? {
                prefix += 1;
            }
            let dod = match prefix {
                0 => 0,
                width => {
                    let bits = match width {
                        1 => 7,
                        2 => 9,
                        3 => 12,
                        4 => 32,
                        _ => 64,
                    };
                    unzigzag(r.read_bits(bits).ok_or_else(|| fail("eof in dod"))?)
                }
            };
            let delta = prev_delta.wrapping_add(dod);
            prev_delta = delta;
            prev_ts.wrapping_add(delta as u64)
        };
        prev_ts = ts;

        // Value.
        let val_bits = if n == 0 {
            r.read_bits(64).ok_or_else(|| fail("eof in first value"))?
        } else if !r.read_bit().ok_or_else(|| fail("eof in value flag"))? {
            prev_val_bits
        } else if !r.read_bit().ok_or_else(|| fail("eof in window flag"))? {
            if window_len == 0 {
                return Err(fail("window reuse before any window"));
            }
            let window_trail = 64 - window_lead - window_len;
            let xor = r
                .read_bits(window_len)
                .ok_or_else(|| fail("eof in window bits"))?
                << window_trail;
            prev_val_bits ^ xor
        } else {
            let lead = r.read_bits(6).ok_or_else(|| fail("eof in lead"))? as u8;
            let len = r.read_bits(6).ok_or_else(|| fail("eof in len"))? as u8 + 1;
            if lead + len > 64 {
                return Err(fail("window exceeds 64 bits"));
            }
            let trail = 64 - lead - len;
            let xor = r.read_bits(len).ok_or_else(|| fail("eof in xor bits"))? << trail;
            window_lead = lead;
            window_len = len;
            prev_val_bits ^ xor
        };
        prev_val_bits = val_bits;
        out.push((ts, f64::from_bits(val_bits)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(points: &[(u64, f64)]) -> Vec<(u64, f64)> {
        let mut c = PointCompressor::new();
        for &(t, v) in points {
            c.append(t, v);
        }
        decode_block(&c.encode_block()).unwrap()
    }

    fn assert_bit_equal(a: &[(u64, f64)], b: &[(u64, f64)]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1.to_bits(), y.1.to_bits(), "value bits differ");
        }
    }

    #[test]
    fn steady_stream_roundtrips_and_compresses() {
        let points: Vec<(u64, f64)> = (0..1000).map(|i| (i * 100, 21.5)).collect();
        let mut c = PointCompressor::new();
        for &(t, v) in &points {
            c.append(t, v);
        }
        let block = c.encode_block();
        assert_bit_equal(&roundtrip(&points), &points);
        // Steady rate + constant value ≈ 2 bits/point after the first.
        let bytes_per_point = block.len() as f64 / points.len() as f64;
        assert!(
            bytes_per_point < 1.0,
            "constant stream should compress below 1 B/pt, got {bytes_per_point}"
        );
    }

    #[test]
    fn varying_values_roundtrip() {
        let points: Vec<(u64, f64)> = (0..500)
            .map(|i| (i * 100 + (i % 7), (i as f64).sin() * 1e3))
            .collect();
        assert_bit_equal(&roundtrip(&points), &points);
    }

    #[test]
    fn nan_and_infinities_roundtrip_bit_exactly() {
        let points = [
            (0, f64::NAN),
            (10, f64::INFINITY),
            (20, f64::NEG_INFINITY),
            (30, -0.0),
            (40, f64::MIN_POSITIVE),
            (50, f64::NAN),
        ];
        assert_bit_equal(&roundtrip(&points), &points);
    }

    #[test]
    fn out_of_order_and_epoch_scale_deltas_roundtrip() {
        let points = [
            (1_700_000_000_000, 1.0), // epoch-scale first timestamp
            (5, 2.0),                 // massive negative delta
            (1_700_000_000_100, 3.0), // massive positive delta
            (1_700_000_000_050, 4.0), // small negative delta
            (u64::MAX, 5.0),
            (0, 6.0),
        ];
        assert_bit_equal(&roundtrip(&points), &points);
    }

    #[test]
    fn sparse_index_tracks_ranges_and_ignores_nan() {
        let mut c = PointCompressor::new();
        c.append(50, f64::NAN);
        c.append(10, 3.5);
        c.append(90, -2.0);
        let idx = *c.index();
        assert_eq!(idx.count, 3);
        assert_eq!((idx.min_ts, idx.max_ts), (10, 90));
        assert_eq!((idx.min_val, idx.max_val), (-2.0, 3.5));
        assert!(idx.overlaps(0, 10));
        assert!(idx.overlaps(90, 200));
        assert!(!idx.overlaps(91, 200));
        assert!(!idx.overlaps(0, 9));
        let decoded_idx = decode_index(&c.encode_block()).unwrap();
        assert_eq!(decoded_idx, idx);
    }

    #[test]
    fn all_nan_block_has_inverted_value_range() {
        let mut c = PointCompressor::new();
        c.append(1, f64::NAN);
        let idx = decode_index(&c.encode_block()).unwrap();
        assert_eq!(idx.min_val, f64::INFINITY);
        assert_eq!(idx.max_val, f64::NEG_INFINITY);
    }

    #[test]
    fn corruption_is_detected() {
        let mut c = PointCompressor::new();
        for i in 0..10 {
            c.append(i, i as f64);
        }
        let mut block = c.encode_block();
        let mid = block.len() / 2;
        block[mid] ^= 0x40;
        assert!(matches!(decode_block(&block), Err(StoreError::Corrupt(_))));
        // Truncation too.
        let good = c.encode_block();
        assert!(decode_block(&good[..good.len() - 1]).is_err());
    }

    #[test]
    fn bumped_format_version_is_a_typed_error_not_corruption() {
        let mut c = PointCompressor::new();
        for i in 0..10 {
            c.append(i, i as f64);
        }
        let mut block = c.encode_block();
        block[3] = b'2'; // a hypothetical TSB2 writer
        match decode_index(&block) {
            Err(StoreError::UnsupportedVersion(msg)) => {
                assert!(msg.contains("TSB"), "{msg}");
                assert!(msg.contains('2'), "{msg}");
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        // A magic that isn't TSB-anything is still plain corruption.
        let mut garbled = c.encode_block();
        garbled[0] = b'X';
        assert!(matches!(
            decode_index(&garbled),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn empty_block_is_empty_bytes() {
        let c = PointCompressor::new();
        assert!(c.encode_block().is_empty());
        assert!(decode_block(&[]).unwrap().is_empty());
    }
}
