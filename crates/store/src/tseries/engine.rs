//! The time-series storage engine: per-series sealed blocks + mutable
//! tail, durable through any [`StateStore`] backing.
//!
//! ## Data layout in the backing store
//!
//! Each series owns one partition of the `"tseries"` namespace:
//!
//! * `tseries / <series> / b<seq:08>` — one immutable sealed block
//!   (the [`codec`](crate::tseries::codec) byte format).
//! * `tseries / <series> / tail` — the **tail record**: the series'
//!   single durable commit point, holding the caller's metadata blob,
//!   the compressed image of the open tail block, the count of sealed
//!   blocks, and any sealed block whose own record is not yet written.
//!
//! ## Commit protocol (why appends are crash-atomic)
//!
//! Every append stages its writes in memory, then writes the **tail
//! record first**. That single `put` commits the batch: it carries the
//! new tail bits, the caller's metadata (ingest dedup watermarks ride
//! here — atomically with the points they admit), and — when the append
//! sealed the tail — the freshly sealed block inline as a *pending*
//! entry. Only after the tail record lands are sealed blocks written to
//! their own keys and unpinned from the next tail record.
//!
//! Recovery therefore trusts the tail record alone: a crash between the
//! tail commit and a pending block's own write replays the block out of
//! the tail record; a crash before the tail commit simply loses the
//! unacknowledged batch (the client retransmits, and the metadata — the
//! dedup watermark — still reflects the last acknowledged batch, so the
//! retransmission is admitted exactly once).
//!
//! ## Concurrency
//!
//! A series has exactly one writer — the actor that owns it — which is
//! what makes the append-only tail safe (the paper's per-actor ownership
//! argument). The engine still locks per series so concurrent *readers*
//! and writers of different series never contend, and no guard is ever
//! held across backing-store I/O: mutations are staged under the lock
//! and written after it drops (see DESIGN.md §11 on the
//! `compact_locked` bug class this avoids).

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use crate::api::{Key, StateStore, StoreError, StoreResult};
use crate::codec::crc32;
use crate::tseries::codec::{decode_block, decode_index, BlockIndex, PointCompressor};
use crate::tseries::SeriesError;
use crate::wal::{FsyncPolicy, GroupWal, WalConfig, WalCounters, WalStatsSnapshot};

/// Storage namespace of every series record.
const SERIES_NAMESPACE: &str = "tseries";
/// Sort key of the tail record (sorts after every `b<seq>` block key).
const TAIL_SORT: &str = "tail";
/// Magic prefix of a tail record; the last byte is the format version.
// aodb-schema: layout(TST1) = magic[4] sealed_blocks:u64 sealed_points:u64 meta_len:u32 meta pending_count:u32 (seq:u64 len:u32 bytes)* tail_len:u32 tail_block crc32:u32
const TAIL_MAGIC: &[u8; 4] = b"TST1";
/// Magic prefix of a WAL delta frame (group-commit mode); the last byte
/// is the format version. The frame rides inside a [`GroupWal`] record,
/// whose CRC covers it — the delta carries no checksum of its own.
// aodb-schema: layout(TSW1) = magic[4] base_points:u64 series_len:u32 series meta_len:u32 meta count:u32 (ts:u64 value_bits:u64)*
const TS_WAL_MAGIC: &[u8; 4] = b"TSW1";
/// WAL size that triggers a checkpoint (tail records for every dirty
/// series + WAL reset) in group-commit mode.
const TS_WAL_CHECKPOINT_BYTES: u64 = 8 * 1024 * 1024;

fn block_sort(seq: u64) -> String {
    format!("b{seq:08}")
}

fn block_key(series: &str, seq: u64) -> Key {
    Key::with_sort(SERIES_NAMESPACE, series, &block_sort(seq))
}

fn tail_key(series: &str) -> Key {
    Key::with_sort(SERIES_NAMESPACE, series, TAIL_SORT)
}

/// When the tail record is written back.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TailDurability {
    /// After every append — an acknowledged batch is durable, and the
    /// caller's metadata commits atomically with it. The default.
    #[default]
    EveryAppend,
    /// Only when an append seals a block (or [`SeriesStore::seal`] is
    /// called). Unsealed tail points are lost on crash; for workloads
    /// that tolerate it (and for measuring the durability cost).
    OnSeal,
}

/// Configuration of a [`TsStore`].
#[derive(Clone, Copy, Debug)]
pub struct TsConfig {
    /// Point count that seals the tail into an immutable block.
    pub seal_points: u32,
    /// Compressed tail size (bytes) that seals regardless of count.
    pub seal_bytes: usize,
    /// Tail *data-time* span (max_ts − min_ts, in ms) that seals the
    /// block — age is measured on the points' own clock, never the wall
    /// clock, so sealing stays deterministic under replay.
    pub seal_age_ms: u64,
    /// Tail write-back policy.
    pub durability: TailDurability,
}

impl Default for TsConfig {
    /// 512-point / 16 KiB / 1-hour seal triggers, durable every append.
    ///
    /// With [`TailDurability::EveryAppend`] each append rewrites the
    /// whole tail record, so per-append cost is O(tail bytes) — a small
    /// seal threshold keeps that rewrite cheap, while the fixed
    /// per-block overhead (44-byte header + CRC) stays under
    /// 0.1 bytes/point even at 512 points per block.
    fn default() -> Self {
        TsConfig {
            seal_points: 512,
            seal_bytes: 16 * 1024,
            seal_age_ms: 3_600_000,
            durability: TailDurability::EveryAppend,
        }
    }
}

impl TsConfig {
    /// Small-block configuration for tests: seal every `points` points.
    pub fn sealing_every(points: u32) -> Self {
        TsConfig {
            seal_points: points.max(1),
            ..TsConfig::default()
        }
    }
}

/// Outcome of one append.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AppendOutcome {
    /// Points appended (all of them — the engine never drops points).
    pub appended: u32,
    /// Blocks sealed by this append (0 on the common fast path).
    pub sealed: u32,
}

/// What recovery found for a series.
#[derive(Clone, Debug, Default)]
pub struct SeriesRecovery {
    /// The caller metadata blob from the last committed append (empty
    /// for a fresh series).
    pub meta: Bytes,
    /// Total durable points (sealed + tail).
    pub points: u64,
}

/// Per-series storage footprint and shape, for benchmarks and tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct SeriesStats {
    /// Sealed block count.
    pub sealed_blocks: u64,
    /// Points across sealed blocks.
    pub sealed_points: u64,
    /// Bytes across sealed blocks (compressed, incl. headers).
    pub sealed_bytes: u64,
    /// Points in the open tail.
    pub tail_points: u64,
    /// Compressed payload bytes of the open tail.
    pub tail_bytes: u64,
}

/// Completion callback of [`SeriesStore::append_batch_async`]. Runs on
/// whatever thread resolves durability (possibly a WAL committer
/// thread), so it must be cheap and non-blocking — the same contract as
/// a `ReplyTo` callback.
pub type AppendAck = Box<dyn FnOnce(StoreResult<AppendOutcome>) + Send>;

/// The time-series storage seam: append-oriented, range-scannable,
/// crash-recoverable. [`StateStore`] remains the seam for actor *state
/// blobs*; this is the seam for high-rate *point streams*.
pub trait SeriesStore: Send + Sync + 'static {
    /// Appends a batch of `(ts_ms, value)` points and commits `meta`
    /// (an opaque caller blob — e.g. dedup watermarks + running stats)
    /// atomically with them.
    fn append_batch(
        &self,
        series: &str,
        points: &[(u64, f64)],
        meta: &[u8],
    ) -> StoreResult<AppendOutcome>;

    /// Like [`SeriesStore::append_batch`], but resolves the result
    /// through `ack` instead of blocking. An engine doing group commit
    /// overrides this so the calling turn can hand off its reply and
    /// return — acks then resolve post-durability without a worker
    /// thread parked per batch. Default: synchronous append, immediate
    /// ack.
    fn append_batch_async(&self, series: &str, points: &[(u64, f64)], meta: &[u8], ack: AppendAck) {
        ack(self.append_batch(series, points, meta));
    }

    /// Resolves `ack` once every append submitted *before* this call is
    /// at the engine's current durability horizon — without writing
    /// anything. A group-commit engine queues the ack behind the
    /// in-flight frames (callbacks resolve in submission order), so a
    /// caller can ack a *duplicate-reject* only after the original
    /// append it relies on is committed. Default: synchronous engines
    /// commit on append, so the barrier is already satisfied.
    fn barrier_async(&self, ack: AppendAck) {
        ack(Ok(AppendOutcome::default()));
    }

    /// All points with `from_ms ≤ ts ≤ to_ms`, in append order, at most
    /// `limit` of them (0 = unlimited). Sealed blocks whose sparse index
    /// misses the range are skipped without decompression.
    fn scan_range(
        &self,
        series: &str,
        from_ms: u64,
        to_ms: u64,
        limit: usize,
    ) -> StoreResult<Vec<(u64, f64)>>;

    /// Force-seals the open tail into an immutable block (no-op when the
    /// tail is empty).
    fn seal(&self, series: &str) -> StoreResult<()>;

    /// Loads the series from the backing store (idempotent; appends and
    /// scans also recover lazily) and returns the committed metadata and
    /// point count.
    fn recover(&self, series: &str) -> StoreResult<SeriesRecovery>;
}

struct SealedBlock {
    index: BlockIndex,
    bytes: Bytes,
}

#[derive(Default)]
struct Series {
    recovered: bool,
    tail: PointCompressor,
    sealed: Vec<SealedBlock>,
    sealed_points: u64,
    meta: Bytes,
    /// Sealed blocks committed via the tail record whose own block
    /// record is not yet confirmed written; they ride every tail record
    /// until unpinned.
    pending: Vec<(u64, Bytes)>,
}

/// Writes staged under the series lock, executed after it drops.
#[derive(Default)]
struct StagedWrites {
    tail: Option<(Key, Bytes)>,
    blocks: Vec<(u64, Key, Bytes)>,
}

/// A recovered (or in-flight) WAL delta: one append's points + meta,
/// tagged with the series' durable point count at submission time so
/// replay can tell which deltas a later tail record already covers.
struct WalDelta {
    base_points: u64,
    meta: Bytes,
    points: Vec<(u64, f64)>,
}

/// Group-commit state of a [`TsStore`] opened via [`TsStore::with_wal`].
struct WalState {
    wal: GroupWal,
    /// Appends hold this for read; a checkpoint holds it for write so
    /// the tail-record sweep + WAL reset see no append in flight.
    rotation: RwLock<()>,
    /// Series with WAL deltas not yet covered by a durable tail record;
    /// the checkpoint writes their tail records before resetting.
    dirty: Mutex<HashSet<String>>,
    /// Deltas recovered from the WAL, consumed on each series' first
    /// touch (under its entry lock, so a racing discarded load can
    /// never eat them).
    replay: Mutex<HashMap<String, Vec<WalDelta>>>,
    checkpoint_bytes: u64,
    fsync: FsyncPolicy,
}

/// The columnar time-series engine.
pub struct TsStore {
    backing: Arc<dyn StateStore>,
    config: TsConfig,
    series: RwLock<HashMap<String, Arc<Mutex<Series>>>>,
    wal: Option<WalState>,
}

impl TsStore {
    /// Engine over `backing` with `config`.
    pub fn new(backing: Arc<dyn StateStore>, config: TsConfig) -> Self {
        TsStore {
            backing,
            config,
            series: RwLock::new(HashMap::new()),
            wal: None,
        }
    }

    /// Engine with the default configuration.
    pub fn with_defaults(backing: Arc<dyn StateStore>) -> Self {
        TsStore::new(backing, TsConfig::default())
    }

    /// Engine in **group-commit mode**: appends that do not seal a block
    /// write a compact delta frame to a [`GroupWal`] at `wal_path`
    /// instead of rewriting the whole tail record, and their acks
    /// resolve when the delta's group commits — one coalesced write +
    /// one fsync amortized over every concurrently-appending series.
    /// Tail records are still written at seal time and at checkpoints
    /// (when the WAL outgrows its threshold it is reset after a
    /// tail-record sweep over the dirty series), so the backing store
    /// remains the source of truth and the WAL stays short.
    ///
    /// Recovery replays WAL deltas on top of the backing store, using
    /// each delta's durable-point watermark to skip those a later tail
    /// record already covers — applying each committed append exactly
    /// once.
    pub fn with_wal(
        backing: Arc<dyn StateStore>,
        config: TsConfig,
        wal_path: impl Into<PathBuf>,
        wal_config: WalConfig,
    ) -> StoreResult<Self> {
        let (wal, frames) = GroupWal::open(wal_path, wal_config)?;
        let mut replay: HashMap<String, Vec<WalDelta>> = HashMap::new();
        for frame in frames {
            let (series, delta) = decode_wal_delta(&frame)?;
            replay.entry(series).or_default().push(delta);
        }
        Ok(TsStore {
            backing,
            config,
            series: RwLock::new(HashMap::new()),
            wal: Some(WalState {
                wal,
                rotation: RwLock::new(()),
                dirty: Mutex::new(replay.keys().cloned().collect()),
                replay: Mutex::new(replay),
                checkpoint_bytes: TS_WAL_CHECKPOINT_BYTES,
                fsync: wal_config.fsync_policy,
            }),
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> TsConfig {
        self.config
    }

    /// The group-commit WAL, when enabled (chaos tests use this to arm
    /// crash points and read counters).
    pub fn wal(&self) -> Option<&GroupWal> {
        self.wal.as_ref().map(|ws| &ws.wal)
    }

    /// Group-commit counters (zeros when not in group-commit mode).
    pub fn wal_stats(&self) -> WalStatsSnapshot {
        self.wal
            .as_ref()
            .map(|ws| ws.wal.stats())
            .unwrap_or_default()
    }

    /// Mirrors group-commit counters into `counters` (no-op without a
    /// WAL). See [`GroupWal::mirror_counters`].
    pub fn mirror_wal_counters(&self, counters: WalCounters) {
        if let Some(ws) = &self.wal {
            ws.wal.mirror_counters(counters);
        }
    }

    fn entry(&self, series: &str) -> Arc<Mutex<Series>> {
        if let Some(entry) = self.series.read().get(series) {
            return Arc::clone(entry);
        }
        Arc::clone(self.series.write().entry(series.to_string()).or_default())
    }

    /// Ensures `entry` reflects the backing store. All backing I/O runs
    /// with no guard held; the loaded image is installed afterwards (the
    /// single-writer contract makes the unlocked window benign, and a
    /// racing reader re-checks `recovered` under the lock).
    fn ensure_recovered(&self, series: &str, entry: &Arc<Mutex<Series>>) -> StoreResult<()> {
        if entry.lock().recovered {
            return Ok(());
        }
        let loaded = self.load_series(series)?;
        let mut s = entry.lock();
        if !s.recovered {
            *s = loaded;
            // Group-commit mode: replay WAL deltas on top of the backing
            // image. Consumed under the entry lock so a racing load that
            // loses the install race cannot eat them.
            if let Some(ws) = &self.wal {
                if let Some(deltas) = ws.replay.lock().remove(series) {
                    apply_wal_deltas(series, &mut s, deltas)?;
                }
            }
        }
        Ok(())
    }

    /// Reads a series image from the backing store (no locks held).
    fn load_series(&self, series: &str) -> StoreResult<Series> {
        let mut s = Series {
            recovered: true,
            ..Series::default()
        };
        let Some(record) = self.backing.get(&tail_key(series))? else {
            return Ok(s); // fresh series (blocks are written only after
                          // a tail record exists, so nothing else can)
        };
        let tail = decode_tail_record(&record)?;
        s.meta = tail.meta;
        s.sealed_points = tail.sealed_points;

        // Materialize every committed block: its own record when the
        // post-commit write landed, the inline pending copy otherwise.
        let mut repair: Vec<(Key, Bytes)> = Vec::new();
        for seq in 0..tail.sealed_blocks {
            let bytes = match self.backing.get(&block_key(series, seq))? {
                Some(bytes) => bytes,
                None => {
                    let pending = tail
                        .pending
                        .iter()
                        .find(|(s, _)| *s == seq)
                        .map(|(_, b)| b.clone())
                        .ok_or_else(|| {
                            StoreError::Corrupt(format!(
                                "tseries {series}: committed block {seq} has neither a \
                                 record nor a pending copy"
                            ))
                        })?;
                    repair.push((block_key(series, seq), pending.clone()));
                    pending
                }
            };
            let index = decode_index(&bytes)?;
            s.sealed.push(SealedBlock { index, bytes });
        }

        // Rebuild the open tail by re-appending its decoded points; the
        // codec is deterministic, so the compressor lands in the exact
        // pre-crash state.
        for (ts, v) in decode_block(&tail.tail_block)? {
            s.tail.append(ts, v);
        }

        // Finish any interrupted post-commit block writes now, so the
        // next tail record no longer needs to carry them.
        for (key, bytes) in repair {
            self.backing.put(&key, bytes)?;
        }
        Ok(s)
    }

    /// Shared append/seal path. Stages every mutation under the series
    /// lock, drops it, then performs the backing writes: tail record
    /// (the commit point) first, block records after.
    fn append_inner(
        &self,
        series: &str,
        points: &[(u64, f64)],
        meta: Option<&[u8]>,
        force_seal: bool,
    ) -> StoreResult<AppendOutcome> {
        let entry = self.entry(series);
        self.ensure_recovered(series, &entry)?;

        let mut outcome = AppendOutcome {
            appended: points.len() as u32,
            sealed: 0,
        };
        let staged = {
            let mut s = entry.lock();
            for &(ts, v) in points {
                s.tail.append(ts, v);
                if self.should_seal(&s.tail) {
                    seal_tail(&mut s);
                    outcome.sealed += 1;
                }
            }
            if force_seal && s.tail.count() > 0 {
                seal_tail(&mut s);
                outcome.sealed += 1;
            }
            if let Some(meta) = meta {
                s.meta = Bytes::copy_from_slice(meta);
            }

            let mut staged = StagedWrites::default();
            let commit_tail = match self.config.durability {
                TailDurability::EveryAppend => true,
                TailDurability::OnSeal => outcome.sealed > 0 || force_seal,
            };
            if commit_tail {
                staged.tail = Some((tail_key(series), Bytes::from(encode_tail_record(&s))));
            }
            for (seq, bytes) in &s.pending {
                staged
                    .blocks
                    .push((*seq, block_key(series, *seq), bytes.clone()));
            }
            staged
        };

        // Backing I/O — no guard held. The tail record commits the
        // append; pending blocks are unpinned only once their own
        // records land (a failed block write stays pending and rides the
        // next tail record, so it can never be lost).
        if let Some((key, record)) = staged.tail {
            self.backing.put(&key, record)?;
        }
        for (seq, key, bytes) in staged.blocks {
            self.backing.put(&key, bytes)?;
            entry.lock().pending.retain(|(s, _)| *s != seq);
        }
        Ok(outcome)
    }

    /// Group-commit append. The fast path (no seal) stages the points
    /// into the tail under the series lock and queues one delta frame to
    /// the WAL committer; `ack` resolves when the delta's group commits.
    /// Appends that seal a block (and force-seals) take the full
    /// tail-record path synchronously — the tail record then covers
    /// every queued delta of this series, so the ack⇒durable invariant
    /// holds regardless of where the WAL fsync horizon sits.
    fn append_via_wal(
        &self,
        series: &str,
        points: &[(u64, f64)],
        meta: Option<&[u8]>,
        force_seal: bool,
        ack: AppendAck,
    ) {
        let ws = self.wal.as_ref().expect("append_via_wal without wal");
        let entry = self.entry(series);
        if let Err(e) = self.ensure_recovered(series, &entry) {
            ack(Err(e));
            return;
        }

        let mut outcome = AppendOutcome {
            appended: points.len() as u32,
            sealed: 0,
        };
        enum Plan {
            /// Ack handed to the WAL committer.
            Deferred,
            /// Nothing to persist (empty append).
            Noop,
            /// Full tail-record path.
            Full(StagedWrites),
        }
        let mut ack = Some(ack);
        let plan = {
            let _rotation = ws.rotation.read();
            let mut s = entry.lock();
            let base = s.sealed_points + s.tail.count() as u64;
            for &(ts, v) in points {
                s.tail.append(ts, v);
                if self.should_seal(&s.tail) {
                    seal_tail(&mut s);
                    outcome.sealed += 1;
                }
            }
            if force_seal && s.tail.count() > 0 {
                seal_tail(&mut s);
                outcome.sealed += 1;
            }
            if let Some(meta) = meta {
                s.meta = Bytes::copy_from_slice(meta);
            }
            if outcome.sealed > 0 {
                let mut staged = StagedWrites {
                    tail: Some((tail_key(series), Bytes::from(encode_tail_record(&s)))),
                    ..StagedWrites::default()
                };
                for (seq, bytes) in &s.pending {
                    staged
                        .blocks
                        .push((*seq, block_key(series, *seq), bytes.clone()));
                }
                Plan::Full(staged)
            } else if points.is_empty() && meta.is_none() {
                Plan::Noop
            } else {
                // Delta fast path: submitted under the series lock (so
                // same-series deltas enqueue in apply order) and the
                // rotation read guard (so a checkpoint can't reset the
                // WAL between the tail mutation and the queue slot).
                let frame = encode_wal_delta(series, base, &s.meta, points);
                ws.dirty.lock().insert(series.to_string());
                let ack = ack.take().expect("ack consumed once");
                ws.wal.submit_with(frame, move |result| {
                    ack(result.map(|_| outcome));
                });
                Plan::Deferred
            }
        };

        match plan {
            Plan::Deferred => {}
            Plan::Noop => (ack.take().expect("ack consumed once"))(Ok(outcome)),
            Plan::Full(staged) => {
                let result = (|| {
                    let _rotation = ws.rotation.read();
                    if let Some((key, record)) = staged.tail {
                        self.backing.put(&key, record)?;
                    }
                    for (seq, key, bytes) in staged.blocks {
                        self.backing.put(&key, bytes)?;
                        entry.lock().pending.retain(|(s2, _)| *s2 != seq);
                    }
                    // The tail record covers every queued delta of this
                    // series; the checkpoint no longer needs to sweep it.
                    ws.dirty.lock().remove(series);
                    if ws.fsync == FsyncPolicy::PerGroup {
                        self.backing.sync()?;
                    }
                    Ok(outcome)
                })();
                (ack.take().expect("ack consumed once"))(result);
            }
        }

        if ws.wal.len() >= ws.checkpoint_bytes {
            // Best-effort: a failed checkpoint leaves the WAL longer but
            // never loses data (the dirty set is restored on error).
            let _ = self.checkpoint();
        }
    }

    /// Group-commit checkpoint: writes a tail record for every dirty
    /// series (folding their WAL deltas into the backing store), then
    /// resets the WAL. No-op without a WAL or when a checkpoint is
    /// already in flight.
    pub fn checkpoint(&self) -> StoreResult<()> {
        let Some(ws) = &self.wal else {
            return Ok(());
        };
        let Some(_rotation) = ws.rotation.try_write() else {
            return Ok(());
        };
        // Materialize series whose recovered deltas were never touched:
        // recovery folds them into the in-memory image, which the dirty
        // sweep below then persists.
        let leftover: Vec<String> = ws.replay.lock().keys().cloned().collect();
        for name in leftover {
            let entry = self.entry(&name);
            self.ensure_recovered(&name, &entry)?;
        }
        let names: Vec<String> = {
            let mut dirty = ws.dirty.lock();
            let names = dirty.iter().cloned().collect();
            dirty.clear();
            names
        };
        let mut result = Ok(());
        for (i, name) in names.iter().enumerate() {
            let entry = self.entry(name);
            let record = {
                let s = entry.lock();
                Bytes::from(encode_tail_record(&s))
            };
            if let Err(e) = self.backing.put(&tail_key(name), record) {
                // Restore the unswept remainder (this series included)
                // so the next checkpoint retries them; the WAL is not
                // reset, so nothing is lost.
                ws.dirty.lock().extend(names[i..].iter().cloned());
                result = Err(e);
                break;
            }
        }
        result?;
        if ws.fsync == FsyncPolicy::PerGroup {
            self.backing.sync()?;
        }
        ws.wal.reset()
    }

    fn should_seal(&self, tail: &PointCompressor) -> bool {
        if tail.count() == 0 {
            return false;
        }
        let idx = tail.index();
        tail.count() >= self.config.seal_points
            || tail.payload_bytes() >= self.config.seal_bytes
            || idx.max_ts.saturating_sub(idx.min_ts) >= self.config.seal_age_ms
    }

    /// Storage footprint of one series (0-stats when unknown).
    pub fn stats(&self, series: &str) -> SeriesStats {
        let entry = self.entry(series);
        let s = entry.lock();
        SeriesStats {
            sealed_blocks: s.sealed.len() as u64,
            sealed_points: s.sealed_points,
            sealed_bytes: s.sealed.iter().map(|b| b.bytes.len() as u64).sum(),
            tail_points: s.tail.count() as u64,
            tail_bytes: s.tail.payload_bytes() as u64,
        }
    }

    /// Aggregated [`TsStore::stats`] over every series this engine has
    /// touched.
    pub fn totals(&self) -> SeriesStats {
        let names: Vec<String> = self.series.read().keys().cloned().collect();
        let mut total = SeriesStats::default();
        for name in names {
            let s = self.stats(&name);
            total.sealed_blocks += s.sealed_blocks;
            total.sealed_points += s.sealed_points;
            total.sealed_bytes += s.sealed_bytes;
            total.tail_points += s.tail_points;
            total.tail_bytes += s.tail_bytes;
        }
        total
    }
}

fn seal_tail(s: &mut Series) {
    let bytes = Bytes::from(s.tail.encode_block());
    let index = *s.tail.index();
    let seq = s.sealed.len() as u64;
    s.sealed_points += index.count as u64;
    s.pending.push((seq, bytes.clone()));
    s.sealed.push(SealedBlock { index, bytes });
    s.tail = PointCompressor::new();
}

impl TsStore {
    /// True when appends should take the group-commit delta path.
    fn wal_appends(&self) -> bool {
        self.wal.is_some() && self.config.durability == TailDurability::EveryAppend
    }

    /// Runs a WAL append synchronously (blocks on the group commit).
    fn append_wal_blocking(
        &self,
        series: &str,
        points: &[(u64, f64)],
        meta: Option<&[u8]>,
        force_seal: bool,
    ) -> StoreResult<AppendOutcome> {
        let (tx, rx) = std::sync::mpsc::channel();
        self.append_via_wal(
            series,
            points,
            meta,
            force_seal,
            Box::new(move |result| {
                let _ = tx.send(result);
            }),
        );
        rx.recv()
            .unwrap_or_else(|_| Err(StoreError::Io("wal append ack was dropped".into())))
    }
}

impl SeriesStore for TsStore {
    fn append_batch(
        &self,
        series: &str,
        points: &[(u64, f64)],
        meta: &[u8],
    ) -> StoreResult<AppendOutcome> {
        if self.wal_appends() {
            self.append_wal_blocking(series, points, Some(meta), false)
        } else {
            self.append_inner(series, points, Some(meta), false)
        }
    }

    fn append_batch_async(&self, series: &str, points: &[(u64, f64)], meta: &[u8], ack: AppendAck) {
        if self.wal_appends() {
            self.append_via_wal(series, points, Some(meta), false, ack);
        } else {
            ack(self.append_inner(series, points, Some(meta), false));
        }
    }

    fn barrier_async(&self, ack: AppendAck) {
        match &self.wal {
            // Empty payloads are never written; the callback still
            // resolves in submission order, after every frame queued
            // ahead of it commits — the barrier contract.
            Some(ws) if self.wal_appends() => ws.wal.submit_with(Bytes::new(), move |r| {
                ack(r.map(|_| AppendOutcome::default()))
            }),
            _ => ack(Ok(AppendOutcome::default())),
        }
    }

    fn scan_range(
        &self,
        series: &str,
        from_ms: u64,
        to_ms: u64,
        limit: usize,
    ) -> StoreResult<Vec<(u64, f64)>> {
        let entry = self.entry(series);
        self.ensure_recovered(series, &entry)?;

        // Snapshot matching block bytes under the lock (cheap `Bytes`
        // clones); decompress after it drops.
        let (blocks, tail_block): (Vec<Bytes>, Vec<u8>) = {
            let s = entry.lock();
            let blocks = s
                .sealed
                .iter()
                .filter(|b| b.index.overlaps(from_ms, to_ms))
                .map(|b| b.bytes.clone())
                .collect();
            let tail = if s.tail.index().overlaps(from_ms, to_ms) {
                s.tail.encode_block()
            } else {
                Vec::new()
            };
            (blocks, tail)
        };

        let mut out = Vec::new();
        for bytes in blocks
            .iter()
            .map(|b| b.as_ref())
            .chain([tail_block.as_slice()])
        {
            for (ts, v) in decode_block(bytes)? {
                if ts >= from_ms && ts <= to_ms {
                    out.push((ts, v));
                    if limit != 0 && out.len() >= limit {
                        return Ok(out);
                    }
                }
            }
        }
        Ok(out)
    }

    fn seal(&self, series: &str) -> StoreResult<()> {
        if self.wal_appends() {
            self.append_wal_blocking(series, &[], None, true)?;
        } else {
            self.append_inner(series, &[], None, true)?;
        }
        Ok(())
    }

    fn recover(&self, series: &str) -> StoreResult<SeriesRecovery> {
        let entry = self.entry(series);
        self.ensure_recovered(series, &entry)?;
        let s = entry.lock();
        Ok(SeriesRecovery {
            meta: s.meta.clone(),
            points: s.sealed_points + s.tail.count() as u64,
        })
    }
}

// ------------------------------------------------------------ tail record

struct TailRecord {
    sealed_blocks: u64,
    sealed_points: u64,
    meta: Bytes,
    pending: Vec<(u64, Bytes)>,
    tail_block: Bytes,
}

/// `TST1 | sealed_blocks u64 | sealed_points u64 | meta_len u32 | meta
/// | pending_count u32 | (seq u64, len u32, bytes)* | tail_len u32
/// | tail block | crc32` — the CRC covers everything before it.
fn encode_tail_record(s: &Series) -> Vec<u8> {
    let tail_block = s.tail.encode_block();
    let mut out = Vec::with_capacity(4 + 8 + 8 + 4 + s.meta.len() + 4 + tail_block.len() + 4);
    out.extend_from_slice(TAIL_MAGIC);
    out.extend_from_slice(&(s.sealed.len() as u64).to_le_bytes());
    out.extend_from_slice(&s.sealed_points.to_le_bytes());
    out.extend_from_slice(&(s.meta.len() as u32).to_le_bytes());
    out.extend_from_slice(&s.meta);
    out.extend_from_slice(&(s.pending.len() as u32).to_le_bytes());
    for (seq, bytes) in &s.pending {
        out.extend_from_slice(&seq.to_le_bytes());
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(bytes);
    }
    out.extend_from_slice(&(tail_block.len() as u32).to_le_bytes());
    out.extend_from_slice(&tail_block);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn decode_tail_record(buf: &[u8]) -> StoreResult<TailRecord> {
    let fail = |m: &str| StoreError::Corrupt(format!("tseries tail record: {m}"));
    if buf.len() < 4 + 8 + 8 + 4 + 4 + 4 + 4 {
        return Err(fail("truncated"));
    }
    if buf[0..3] != TAIL_MAGIC[0..3] {
        return Err(fail("bad magic"));
    }
    // Version dispatch before the CRC check — see `SeriesError`: a
    // future tail layout moves the CRC, so checking it first would
    // misreport a version skew as corruption.
    if buf[3] != TAIL_MAGIC[3] {
        return Err(SeriesError::UnsupportedVersion {
            format: "TST",
            found: buf[3],
            supported: TAIL_MAGIC[3],
        }
        .into());
    }
    let stored_crc = u32::from_le_bytes(buf[buf.len() - 4..].try_into().expect("4 bytes"));
    if crc32(&buf[..buf.len() - 4]) != stored_crc {
        return Err(fail("crc mismatch"));
    }
    let body = &buf[..buf.len() - 4];
    let mut pos = 4usize;
    let mut take = |n: usize| -> StoreResult<&[u8]> {
        if body.len() - pos < n {
            return Err(fail("truncated field"));
        }
        let slice = &body[pos..pos + n];
        pos += n;
        Ok(slice)
    };
    let sealed_blocks = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
    let sealed_points = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
    let meta_len = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
    let meta = Bytes::copy_from_slice(take(meta_len)?);
    let pending_count = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
    let mut pending = Vec::with_capacity(pending_count);
    for _ in 0..pending_count {
        let seq = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
        pending.push((seq, Bytes::copy_from_slice(take(len)?)));
    }
    let tail_len = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
    let tail_block = Bytes::copy_from_slice(take(tail_len)?);
    if pos != body.len() {
        return Err(fail("trailing garbage"));
    }
    Ok(TailRecord {
        sealed_blocks,
        sealed_points,
        meta,
        pending,
        tail_block,
    })
}

// -------------------------------------------------------- wal delta codec

/// `TSW1 | base_points u64 | series_len u32 | series | meta_len u32 |
/// meta | count u32 | (ts u64, value_bits u64)*` — no CRC of its own;
/// the enclosing [`GroupWal`] record frame carries one.
fn encode_wal_delta(series: &str, base_points: u64, meta: &[u8], points: &[(u64, f64)]) -> Bytes {
    let mut out =
        Vec::with_capacity(4 + 8 + 4 + series.len() + 4 + meta.len() + 4 + 16 * points.len());
    out.extend_from_slice(TS_WAL_MAGIC);
    out.extend_from_slice(&base_points.to_le_bytes());
    out.extend_from_slice(&(series.len() as u32).to_le_bytes());
    out.extend_from_slice(series.as_bytes());
    out.extend_from_slice(&(meta.len() as u32).to_le_bytes());
    out.extend_from_slice(meta);
    out.extend_from_slice(&(points.len() as u32).to_le_bytes());
    for &(ts, v) in points {
        out.extend_from_slice(&ts.to_le_bytes());
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    Bytes::from(out)
}

fn decode_wal_delta(buf: &[u8]) -> StoreResult<(String, WalDelta)> {
    let fail = |m: &str| StoreError::Corrupt(format!("tseries wal delta: {m}"));
    if buf.len() < 4 + 8 + 4 {
        return Err(fail("truncated"));
    }
    if buf[0..3] != TS_WAL_MAGIC[0..3] {
        return Err(fail("bad magic"));
    }
    if buf[3] != TS_WAL_MAGIC[3] {
        return Err(SeriesError::UnsupportedVersion {
            format: "TSW",
            found: buf[3],
            supported: TS_WAL_MAGIC[3],
        }
        .into());
    }
    let mut pos = 4usize;
    let mut take = |n: usize| -> StoreResult<&[u8]> {
        if buf.len() - pos < n {
            return Err(fail("truncated field"));
        }
        let slice = &buf[pos..pos + n];
        pos += n;
        Ok(slice)
    };
    let base_points = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
    let series_len = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
    let series = String::from_utf8(take(series_len)?.to_vec())
        .map_err(|_| fail("series name is not utf-8"))?;
    let meta_len = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
    let meta = Bytes::copy_from_slice(take(meta_len)?);
    let count = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
    let mut points = Vec::with_capacity(count);
    for _ in 0..count {
        let ts = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
        let bits = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
        points.push((ts, f64::from_bits(bits)));
    }
    if pos != buf.len() {
        return Err(fail("trailing garbage"));
    }
    Ok((
        series,
        WalDelta {
            base_points,
            meta,
            points,
        },
    ))
}

/// Folds recovered WAL deltas into a freshly-loaded series image. Each
/// delta's `base_points` watermark says how many durable points the
/// series had when it was submitted: below the current count means a
/// later tail record already covers it (skip — this is what makes
/// replay exactly-once); equal means apply; above means a gap — the WAL
/// and backing store disagree, which recovery must not paper over.
fn apply_wal_deltas(series: &str, s: &mut Series, deltas: Vec<WalDelta>) -> StoreResult<()> {
    for delta in deltas {
        let current = s.sealed_points + s.tail.count() as u64;
        if delta.base_points < current {
            continue;
        }
        if delta.base_points > current {
            return Err(StoreError::Corrupt(format!(
                "tseries {series}: wal delta expects {} durable points but the \
                 backing store has {current}",
                delta.base_points
            )));
        }
        for &(ts, v) in &delta.points {
            s.tail.append(ts, v);
        }
        s.meta = delta.meta;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemStore;

    fn engine(config: TsConfig) -> (Arc<MemStore>, TsStore) {
        let backing = Arc::new(MemStore::new());
        let ts = TsStore::new(Arc::clone(&backing) as Arc<dyn StateStore>, config);
        (backing, ts)
    }

    fn pts(range: std::ops::Range<u64>) -> Vec<(u64, f64)> {
        range.map(|i| (i * 10, i as f64)).collect()
    }

    #[test]
    fn append_scan_roundtrip_across_seals() {
        let (_, ts) = engine(TsConfig::sealing_every(16));
        let points = pts(0..100);
        for chunk in points.chunks(7) {
            ts.append_batch("s", chunk, b"meta").unwrap();
        }
        let all = ts.scan_range("s", 0, u64::MAX, 0).unwrap();
        assert_eq!(all, points);
        let stats = ts.stats("s");
        assert_eq!(stats.sealed_blocks, 100 / 16);
        assert_eq!(stats.sealed_points + stats.tail_points, 100);

        // Range + limit semantics match the window query.
        let mid = ts.scan_range("s", 200, 400, 0).unwrap();
        assert_eq!(mid.len(), 21);
        assert_eq!(mid.first().unwrap().0, 200);
        let capped = ts.scan_range("s", 200, 400, 5).unwrap();
        assert_eq!(capped.len(), 5);
    }

    #[test]
    fn recovery_restores_points_meta_and_tail() {
        let backing: Arc<dyn StateStore> = Arc::new(MemStore::new());
        {
            let ts = TsStore::new(Arc::clone(&backing), TsConfig::sealing_every(8));
            for chunk in pts(0..30).chunks(4) {
                ts.append_batch("s", chunk, b"watermark-7").unwrap();
            }
        }
        // Fresh engine over the same backing: the "process restart".
        let ts = TsStore::new(Arc::clone(&backing), TsConfig::sealing_every(8));
        let rec = ts.recover("s").unwrap();
        assert_eq!(rec.points, 30);
        assert_eq!(rec.meta.as_ref(), b"watermark-7");
        assert_eq!(ts.scan_range("s", 0, u64::MAX, 0).unwrap(), pts(0..30));
        // Appends continue seamlessly after recovery.
        ts.append_batch("s", &pts(30..40), b"watermark-8").unwrap();
        assert_eq!(ts.scan_range("s", 0, u64::MAX, 0).unwrap(), pts(0..40));
    }

    #[test]
    fn crash_between_tail_commit_and_block_write_loses_nothing() {
        let backing: Arc<dyn StateStore> = Arc::new(MemStore::new());
        {
            let ts = TsStore::new(Arc::clone(&backing), TsConfig::sealing_every(8));
            for chunk in pts(0..16).chunks(4) {
                ts.append_batch("s", chunk, b"m").unwrap();
            }
        }
        // Simulate the crash window: delete the sealed blocks' own
        // records, leaving only the tail record (which pinned them as
        // pending when they sealed... but unpinning already happened).
        // Rebuild the scenario directly instead: write a tail record
        // carrying a pending block with no block record.
        let mut series = Series {
            recovered: true,
            ..Series::default()
        };
        for (ts_ms, v) in pts(0..8) {
            series.tail.append(ts_ms, v);
        }
        seal_tail(&mut series);
        series.meta = Bytes::from_static(b"pending-meta");
        let record = encode_tail_record(&series);
        backing
            .put(&tail_key("crashy"), Bytes::from(record))
            .unwrap();
        assert!(backing.get(&block_key("crashy", 0)).unwrap().is_none());

        let ts = TsStore::new(Arc::clone(&backing), TsConfig::sealing_every(8));
        let rec = ts.recover("crashy").unwrap();
        assert_eq!(rec.points, 8);
        assert_eq!(rec.meta.as_ref(), b"pending-meta");
        assert_eq!(ts.scan_range("crashy", 0, u64::MAX, 0).unwrap(), pts(0..8));
        // Recovery repaired the missing block record.
        assert!(backing.get(&block_key("crashy", 0)).unwrap().is_some());
    }

    #[test]
    fn bumped_tail_version_is_a_typed_error_not_corruption() {
        let backing: Arc<dyn StateStore> = Arc::new(MemStore::new());
        {
            let ts = TsStore::new(Arc::clone(&backing), TsConfig::default());
            ts.append_batch("s", &pts(0..10), b"m").unwrap();
        }
        // A hypothetical TST2 writer bumped the version byte.
        let mut record = backing.get(&tail_key("s")).unwrap().unwrap().to_vec();
        record[3] = b'2';
        backing.put(&tail_key("s"), Bytes::from(record)).unwrap();
        let ts = TsStore::new(Arc::clone(&backing), TsConfig::default());
        match ts.recover("s") {
            Err(StoreError::UnsupportedVersion(msg)) => {
                assert!(msg.contains("TST"), "{msg}");
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        // A garbled magic family is still plain corruption.
        let mut record = backing.get(&tail_key("s")).unwrap().unwrap().to_vec();
        record[0] = b'X';
        backing.put(&tail_key("s"), Bytes::from(record)).unwrap();
        let ts = TsStore::new(Arc::clone(&backing), TsConfig::default());
        assert!(matches!(ts.recover("s"), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn committed_block_with_no_copy_is_corrupt() {
        let backing: Arc<dyn StateStore> = Arc::new(MemStore::new());
        {
            let ts = TsStore::new(Arc::clone(&backing), TsConfig::sealing_every(4));
            ts.append_batch("s", &pts(0..8), b"").unwrap();
            // A later append rewrites the tail record with its pending
            // list drained (the block records landed above), so the
            // block record is now the only copy of block 0.
            ts.append_batch("s", &pts(8..9), b"").unwrap();
        }
        backing.delete(&block_key("s", 0)).unwrap();
        let ts = TsStore::new(Arc::clone(&backing), TsConfig::default());
        assert!(matches!(ts.recover("s"), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn seal_flushes_tail_and_scan_skips_blocks() {
        let (_, ts) = engine(TsConfig::default());
        ts.append_batch("s", &pts(0..100), b"").unwrap();
        assert_eq!(ts.stats("s").sealed_blocks, 0);
        ts.seal("s").unwrap();
        let stats = ts.stats("s");
        assert_eq!(stats.sealed_blocks, 1);
        assert_eq!(stats.sealed_points, 100);
        assert_eq!(stats.tail_points, 0);
        // A miss range decodes nothing (skip path) and returns empty.
        assert!(ts.scan_range("s", 10_000, 20_000, 0).unwrap().is_empty());
    }

    #[test]
    fn meta_commits_atomically_with_points() {
        let backing: Arc<dyn StateStore> = Arc::new(MemStore::new());
        let ts = TsStore::new(Arc::clone(&backing), TsConfig::default());
        ts.append_batch("s", &pts(0..5), b"seq=1").unwrap();
        ts.append_batch("s", &pts(5..10), b"seq=2").unwrap();
        let fresh = TsStore::new(Arc::clone(&backing), TsConfig::default());
        let rec = fresh.recover("s").unwrap();
        assert_eq!(rec.meta.as_ref(), b"seq=2");
        assert_eq!(rec.points, 10);
    }

    #[test]
    fn on_seal_durability_skips_tail_writes() {
        let backing: Arc<dyn StateStore> = Arc::new(MemStore::new());
        let config = TsConfig {
            durability: TailDurability::OnSeal,
            ..TsConfig::sealing_every(8)
        };
        let ts = TsStore::new(Arc::clone(&backing), config);
        ts.append_batch("s", &pts(0..4), b"m").unwrap();
        // No seal yet → nothing durable.
        assert!(backing.get(&tail_key("s")).unwrap().is_none());
        ts.append_batch("s", &pts(4..10), b"m").unwrap();
        // Seal fired → tail record + block record durable.
        assert!(backing.get(&tail_key("s")).unwrap().is_some());
        let fresh = TsStore::new(Arc::clone(&backing), config);
        let rec = fresh.recover("s").unwrap();
        assert_eq!(
            rec.points, 10,
            "sealed 8 + tail 2 all committed by the seal-time tail write"
        );
    }

    #[test]
    fn series_are_isolated() {
        let (_, ts) = engine(TsConfig::default());
        ts.append_batch("a", &pts(0..5), b"ma").unwrap();
        ts.append_batch("b", &pts(100..110), b"mb").unwrap();
        assert_eq!(ts.scan_range("a", 0, u64::MAX, 0).unwrap().len(), 5);
        assert_eq!(ts.scan_range("b", 0, u64::MAX, 0).unwrap().len(), 10);
        assert_eq!(ts.recover("a").unwrap().meta.as_ref(), b"ma");
    }

    fn temp_wal(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "aodb-tswal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir.join("ts_wal.log")
    }

    #[test]
    fn wal_mode_roundtrip_and_replay() {
        let backing: Arc<dyn StateStore> = Arc::new(MemStore::new());
        let path = temp_wal("roundtrip");
        {
            let ts = TsStore::with_wal(
                Arc::clone(&backing),
                TsConfig::default(),
                &path,
                WalConfig::default(),
            )
            .unwrap();
            for chunk in pts(0..30).chunks(4) {
                ts.append_batch("s", chunk, b"wm-30").unwrap();
            }
            assert!(ts.wal_stats().frames >= 8);
            // No seal fired: the backing store has no tail record yet —
            // the deltas alone must carry recovery.
            assert!(backing.get(&tail_key("s")).unwrap().is_none());
        }
        let ts = TsStore::with_wal(
            Arc::clone(&backing),
            TsConfig::default(),
            &path,
            WalConfig::default(),
        )
        .unwrap();
        let rec = ts.recover("s").unwrap();
        assert_eq!(rec.points, 30);
        assert_eq!(rec.meta.as_ref(), b"wm-30");
        assert_eq!(ts.scan_range("s", 0, u64::MAX, 0).unwrap(), pts(0..30));
    }

    #[test]
    fn wal_mode_seal_supersedes_deltas_exactly_once() {
        let backing: Arc<dyn StateStore> = Arc::new(MemStore::new());
        let path = temp_wal("seal");
        {
            let ts = TsStore::with_wal(
                Arc::clone(&backing),
                TsConfig::sealing_every(8),
                &path,
                WalConfig::default(),
            )
            .unwrap();
            // 12 points: 8 seal (full tail-record path), 4 ride deltas.
            for chunk in pts(0..12).chunks(2) {
                ts.append_batch("s", chunk, b"m").unwrap();
            }
            assert!(backing.get(&tail_key("s")).unwrap().is_some());
        }
        // Recovery must not double-apply the deltas the seal-time tail
        // record already covers.
        let ts = TsStore::with_wal(
            Arc::clone(&backing),
            TsConfig::sealing_every(8),
            &path,
            WalConfig::default(),
        )
        .unwrap();
        assert_eq!(ts.recover("s").unwrap().points, 12);
        assert_eq!(ts.scan_range("s", 0, u64::MAX, 0).unwrap(), pts(0..12));
    }

    #[test]
    fn wal_mode_checkpoint_folds_deltas_and_resets() {
        let backing: Arc<dyn StateStore> = Arc::new(MemStore::new());
        let path = temp_wal("checkpoint");
        {
            let ts = TsStore::with_wal(
                Arc::clone(&backing),
                TsConfig::default(),
                &path,
                WalConfig::default(),
            )
            .unwrap();
            for series in ["a", "b"] {
                ts.append_batch(series, &pts(0..10), b"ck").unwrap();
            }
            assert!(!ts.wal().unwrap().is_empty());
            ts.checkpoint().unwrap();
            assert_eq!(ts.wal().unwrap().len(), 0, "checkpoint resets the wal");
            assert!(backing.get(&tail_key("a")).unwrap().is_some());
            assert!(backing.get(&tail_key("b")).unwrap().is_some());
        }
        // Post-checkpoint recovery comes purely from the backing store.
        let ts = TsStore::with_wal(
            Arc::clone(&backing),
            TsConfig::default(),
            &path,
            WalConfig::default(),
        )
        .unwrap();
        assert_eq!(ts.recover("a").unwrap().points, 10);
        assert_eq!(ts.recover("b").unwrap().points, 10);
    }

    #[test]
    fn wal_mode_checkpoint_materializes_untouched_recovered_series() {
        let backing: Arc<dyn StateStore> = Arc::new(MemStore::new());
        let path = temp_wal("leftover");
        {
            let ts = TsStore::with_wal(
                Arc::clone(&backing),
                TsConfig::default(),
                &path,
                WalConfig::default(),
            )
            .unwrap();
            ts.append_batch("s", &pts(0..5), b"m").unwrap();
        }
        {
            // Reopen and checkpoint WITHOUT touching the series first:
            // the recovered deltas must be folded into tail records, not
            // dropped with the reset.
            let ts = TsStore::with_wal(
                Arc::clone(&backing),
                TsConfig::default(),
                &path,
                WalConfig::default(),
            )
            .unwrap();
            ts.checkpoint().unwrap();
        }
        let ts = TsStore::with_wal(
            Arc::clone(&backing),
            TsConfig::default(),
            &path,
            WalConfig::default(),
        )
        .unwrap();
        assert_eq!(ts.recover("s").unwrap().points, 5);
    }

    #[test]
    fn wal_delta_codec_roundtrip_and_version_gate() {
        let frame = encode_wal_delta("sensor-1", 42, b"meta", &pts(0..7));
        let (series, delta) = decode_wal_delta(&frame).unwrap();
        assert_eq!(series, "sensor-1");
        assert_eq!(delta.base_points, 42);
        assert_eq!(delta.meta.as_ref(), b"meta");
        assert_eq!(delta.points, pts(0..7));

        let mut bumped = frame.to_vec();
        bumped[3] = b'2';
        assert!(matches!(
            decode_wal_delta(&bumped),
            Err(StoreError::UnsupportedVersion(_))
        ));
        let mut garbled = frame.to_vec();
        garbled[0] = b'X';
        assert!(matches!(
            decode_wal_delta(&garbled),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn wal_mode_async_ack_resolves_after_commit() {
        use std::sync::mpsc;
        let backing: Arc<dyn StateStore> = Arc::new(MemStore::new());
        let path = temp_wal("async");
        let ts = TsStore::with_wal(
            Arc::clone(&backing),
            TsConfig::default(),
            &path,
            WalConfig::default(),
        )
        .unwrap();
        let (tx, rx) = mpsc::channel();
        ts.append_batch_async(
            "s",
            &pts(0..5),
            b"m",
            Box::new(move |result| {
                let _ = tx.send(result);
            }),
        );
        let outcome = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .unwrap()
            .unwrap();
        assert_eq!(outcome.appended, 5);
        assert!(ts.wal_stats().groups >= 1);
    }

    #[test]
    fn tail_record_detects_corruption() {
        let mut series = Series {
            recovered: true,
            ..Series::default()
        };
        series.tail.append(1, 2.0);
        let mut record = encode_tail_record(&series);
        let mid = record.len() / 2;
        record[mid] ^= 1;
        assert!(decode_tail_record(&record).is_err());
    }
}
