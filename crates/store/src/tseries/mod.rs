//! Columnar time-series storage for the ingest hot path.
//!
//! The paper's SHM workload is ~98 % sensor-point inserts (Fig 5), but
//! the generic KV path pays full record framing, CRC, and whole-state
//! re-serialization per mutation. This module gives point streams a
//! native format instead:
//!
//! * [`bits`] — packed bit I/O (MSB-first) + ZigZag, the substrate for
//!   the variable-width codes.
//! * [`codec`] — delta-of-delta timestamps and Gorilla-style XOR float
//!   compression, sealed into immutable `TSB1` blocks that carry a
//!   sparse index (count, min/max timestamp, min/max value) readable
//!   without decompressing the payload.
//! * [`engine`] — [`TsStore`]: per-series sealed blocks + a mutable
//!   tail, durable through any [`StateStore`](crate::api::StateStore)
//!   backing via an atomic tail-record commit protocol, exposed through
//!   the [`SeriesStore`] seam.
//!
//! `StateStore` remains the seam for actor *state blobs*; `SeriesStore`
//! is the seam for high-rate *point streams*. The single-writer-per-
//! actor guarantee is what makes the per-series append-only layout safe.

pub mod bits;
pub mod codec;
pub mod engine;

pub use codec::{decode_block, decode_index, BlockIndex, PointCompressor};
pub use engine::{
    AppendOutcome, SeriesRecovery, SeriesStats, SeriesStore, TailDurability, TsConfig, TsStore,
};

use crate::api::StoreError;

/// Typed decode failures of the tseries on-disk formats.
///
/// Both formats carry a version digit as the last magic byte (`TSB1`,
/// `TST1`). Decoders dispatch on it *before* the CRC check: a record
/// written by a newer layout has its CRC in a different place, so
/// without the dispatch a version bump could only ever surface as
/// "crc mismatch" — indistinguishable from real corruption, and
/// inviting exactly the wrong operator response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeriesError {
    /// The record's magic names a known format at an unknown version.
    UnsupportedVersion {
        /// Format family (`"TSB"` sealed block, `"TST"` tail record).
        format: &'static str,
        /// The version byte found in the record.
        found: u8,
        /// The highest version this build decodes.
        supported: u8,
    },
}

impl std::fmt::Display for SeriesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeriesError::UnsupportedVersion {
                format,
                found,
                supported,
            } => write!(
                f,
                "tseries {format} record has format version {} but this build \
                 supports up to version {} — upgrade before reading this store",
                char::from(*found),
                char::from(*supported),
            ),
        }
    }
}

impl std::error::Error for SeriesError {}

impl From<SeriesError> for StoreError {
    fn from(e: SeriesError) -> Self {
        StoreError::UnsupportedVersion(e.to_string())
    }
}
