//! Columnar time-series storage for the ingest hot path.
//!
//! The paper's SHM workload is ~98 % sensor-point inserts (Fig 5), but
//! the generic KV path pays full record framing, CRC, and whole-state
//! re-serialization per mutation. This module gives point streams a
//! native format instead:
//!
//! * [`bits`] — packed bit I/O (MSB-first) + ZigZag, the substrate for
//!   the variable-width codes.
//! * [`codec`] — delta-of-delta timestamps and Gorilla-style XOR float
//!   compression, sealed into immutable `TSB1` blocks that carry a
//!   sparse index (count, min/max timestamp, min/max value) readable
//!   without decompressing the payload.
//! * [`engine`] — [`TsStore`]: per-series sealed blocks + a mutable
//!   tail, durable through any [`StateStore`](crate::api::StateStore)
//!   backing via an atomic tail-record commit protocol, exposed through
//!   the [`SeriesStore`] seam.
//!
//! `StateStore` remains the seam for actor *state blobs*; `SeriesStore`
//! is the seam for high-rate *point streams*. The single-writer-per-
//! actor guarantee is what makes the per-series append-only layout safe.

pub mod bits;
pub mod codec;
pub mod engine;

pub use codec::{decode_block, decode_index, BlockIndex, PointCompressor};
pub use engine::{
    AppendOutcome, SeriesRecovery, SeriesStats, SeriesStore, TailDurability, TsConfig, TsStore,
};
