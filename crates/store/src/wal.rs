//! Group-commit write-ahead log.
//!
//! A [`GroupWal`] amortizes the two expensive parts of durable logging —
//! the write syscall and the fsync — across concurrent writers. Callers
//! submit opaque frames from any thread; a single **committer thread**
//! drains the queue of pending frames, writes them as one coalesced
//! buffer, issues one `fdatasync` for the whole group, and only then
//! resolves each waiter's acknowledgement (a blocking [`WalTicket`] or a
//! completion callback, in submission order). The result is the classic
//! group-commit contract: *ack ⇒ durable*, at a per-frame cost that
//! shrinks as concurrency grows.
//!
//! ## On-disk format
//!
//! The file is a flat sequence of [`frame_record`]-framed records
//! (`len | crc32 | payload`) — grouping is purely a *write batching*
//! concern and leaves no trace on disk. Recovery parses records from the
//! front; a torn tail (crash mid-group-write) ends the committed prefix
//! and is physically truncated, while a checksum mismatch anywhere
//! earlier is reported as corruption. Because groups are written with a
//! single `write_all`, a crash can only tear the *last* group, and the
//! recovered frames are always a prefix of the submission order.
//!
//! ## Batching policy
//!
//! The committer takes whatever is queued the moment it becomes free
//! (natural batching: the previous group's flush *is* the accumulation
//! window). [`WalConfig::max_delay`] optionally stretches assembly —
//! the committer waits up to that long for more frames before flushing
//! a group smaller than [`WalConfig::max_batch`] — and also *bounds* it:
//! no frame ever waits in an open group for longer than `max_delay`, so
//! a waiter's ack latency is at most `max_delay` plus one group flush.
//!
//! ## Crash injection
//!
//! The group-commit path has exactly five externally-distinguishable
//! write/fsync/ack boundaries, enumerated by [`CrashPoint`]. Tests arm
//! one with [`GroupWal::arm_crash`]; when the committer reaches the
//! armed point it emulates a process kill at that instant — un-synced
//! bytes are dropped (the page cache is lost), a mid-group tear leaves
//! partial frame bytes on disk, and every unresolved waiter errors out.
//! The chaos suite reopens the file afterwards and asserts the
//! invariant *acked ⇒ recovered, and recovered is a prefix of
//! submitted*.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// Under the `model` feature the committer thread routes through the model
// checker's shims, so spawn/join on the group-commit path are schedule
// points. Off the feature this is exactly `std`. The WAL's `AtomicU64`s
// stay on std in both modes: per the ordering policy on [`WalCounters`]
// they are Relaxed monotonic statistics with no control-flow role, so
// they would only inflate the schedule space — and `WalCounters` cells
// are shared with the runtime's metrics registry, which is std-atomic.
#[cfg(feature = "model")]
use modelcheck::thread as mthread;
use std::sync::atomic::AtomicU64;
#[cfg(not(feature = "model"))]
use std::thread as mthread;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::api::{StoreError, StoreResult};
use crate::codec::{frame_record, parse_record};

/// When the committer issues fsync.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FsyncPolicy {
    /// One `fdatasync` per group (the group-commit contract: a resolved
    /// ack means the frame is on durable media). The default.
    #[default]
    PerGroup,
    /// Never fsync on the append path; [`GroupWal::sync`] forces one.
    /// Acks then mean "written to the OS", mirroring
    /// [`SyncPolicy::OnDemand`](crate::SyncPolicy).
    OnDemand,
}

/// Tuning of a [`GroupWal`].
#[derive(Clone, Copy, Debug)]
pub struct WalConfig {
    /// Largest number of frames coalesced into one group.
    pub max_batch: usize,
    /// How long the committer may hold a group open waiting for more
    /// frames. Zero (the default) is pure natural batching: commit
    /// whatever is queued, immediately. Non-zero trades ack latency for
    /// larger groups; it is a *cap*, so the fairness bound
    /// `ack wait ≤ max_delay + one group flush` always holds.
    pub max_delay: Duration,
    /// Fsync policy.
    pub fsync_policy: FsyncPolicy,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            max_batch: 256,
            max_delay: Duration::ZERO,
            fsync_policy: FsyncPolicy::PerGroup,
        }
    }
}

/// The write/fsync/ack boundaries of the group-commit path, for fault
/// injection. Each variant names the instant the emulated process kill
/// happens.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CrashPoint {
    /// The group is assembled but nothing reached the file: every frame
    /// of the group (and everything queued behind it) is lost, none
    /// were acked.
    BeforeGroupWrite,
    /// The kill lands mid-`write`: a prefix of the coalesced buffer is
    /// on disk, tearing a frame. Recovery must truncate the tear and
    /// keep the clean prefix.
    MidGroupWrite,
    /// The buffer was fully written but not fsynced: the page cache is
    /// lost with the process, so the whole group evaporates. No acks
    /// were resolved, so nothing acked is lost.
    AfterWriteBeforeFsync,
    /// Durable but unacknowledged: the fsync completed, the process
    /// died before resolving waiters. The frames *must* survive
    /// recovery (durable-but-unacked is the allowed direction).
    AfterFsyncBeforeAck,
    /// The group was durable and acked; the kill hits afterwards.
    /// Recovery must observe every acked frame.
    AfterAck,
}

impl CrashPoint {
    /// Every crash point, in pipeline order — the chaos matrix iterates
    /// this so no boundary is left untested.
    pub const ALL: [CrashPoint; 5] = [
        CrashPoint::BeforeGroupWrite,
        CrashPoint::MidGroupWrite,
        CrashPoint::AfterWriteBeforeFsync,
        CrashPoint::AfterFsyncBeforeAck,
        CrashPoint::AfterAck,
    ];
}

/// Arms a crash at `point` when the committer processes group number
/// `at_group` (0-based count of non-empty groups committed so far).
#[derive(Clone, Copy, Debug)]
pub struct CrashPlan {
    /// Which boundary to kill at.
    pub point: CrashPoint,
    /// Which group to kill (lets seeded tests vary how much committed
    /// prefix exists before the crash).
    pub at_group: u64,
}

/// Live counters mirrored into by the committer, for wiring WAL
/// observability into a metrics registry that cannot see this crate
/// (the same share-an-`Arc` pattern as the runtime's `persist_retries`).
///
/// # Atomic-ordering policy
///
/// Every atomic here — and the WAL's `written_len` — is accessed with
/// `Ordering::Relaxed`, the same policy as the runtime's metrics module:
/// they are monotonic statistics, and no reader derives control flow or
/// cross-thread ordering from them. The commit/ack handshake never
/// touches these cells; it is ordered entirely by the queue mutex and
/// each ticket's `Mutex`/`Condvar` pair, so a waiter that has observed
/// its ack is already happens-after the group's write and fsync without
/// any help from the counters. A snapshot taken mid-group may therefore
/// be internally skewed (e.g. `frames` bumped, mirror not yet) — that is
/// the accepted cost, as with the runtime histograms.
#[derive(Clone)]
pub struct WalCounters {
    /// Groups committed (one coalesced write each).
    pub groups: Arc<AtomicU64>,
    /// Frames across all groups; `frames / groups` is the mean group
    /// size.
    pub frames: Arc<AtomicU64>,
    /// Fsyncs issued.
    pub fsyncs: Arc<AtomicU64>,
}

impl Default for WalCounters {
    fn default() -> Self {
        WalCounters {
            groups: Arc::new(AtomicU64::new(0)),
            frames: Arc::new(AtomicU64::new(0)),
            fsyncs: Arc::new(AtomicU64::new(0)),
        }
    }
}

/// Point-in-time copy of the WAL's own counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStatsSnapshot {
    /// Groups committed.
    pub groups: u64,
    /// Frames across all groups.
    pub frames: u64,
    /// Fsyncs issued.
    pub fsyncs: u64,
}

impl WalStatsSnapshot {
    /// Mean frames per group (0 when no group has committed).
    pub fn mean_group_size(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.frames as f64 / self.groups as f64
        }
    }
}

// ------------------------------------------------------------- completions

struct TicketCell {
    state: Mutex<Option<StoreResult<()>>>,
    cv: Condvar,
}

impl TicketCell {
    fn new() -> Arc<Self> {
        Arc::new(TicketCell {
            state: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    fn resolve(&self, result: StoreResult<()>) {
        *self.state.lock() = Some(result);
        self.cv.notify_all();
    }
}

/// A pending acknowledgement: resolves once the submitted frame's group
/// is committed (per the configured [`FsyncPolicy`]).
pub struct WalTicket(Arc<TicketCell>);

impl WalTicket {
    /// Blocks until the frame's group commits; `Err` if the WAL died
    /// (I/O error or injected crash) before that.
    pub fn wait(self) -> StoreResult<()> {
        let mut state = self.0.state.lock();
        while state.is_none() {
            state = self.0.cv.wait(state);
        }
        state.take().expect("ticket resolved")
    }

    fn failed(err: StoreError) -> WalTicket {
        let cell = TicketCell::new();
        cell.resolve(Err(err));
        WalTicket(cell)
    }
}

enum DoneKind {
    Ticket(Arc<TicketCell>),
    Callback(Box<dyn FnOnce(StoreResult<()>) + Send>),
}

/// A pending acknowledgement. Resolving consumes it; if one is ever
/// *dropped* unresolved — the committer panicking while unwinding through
/// an assembled group — the drop resolves the waiter with an error. A
/// crashed committer must wake its waiters, never strand them in
/// [`WalTicket::wait`].
struct Done(Option<DoneKind>);

impl Done {
    fn ticket(cell: Arc<TicketCell>) -> Done {
        Done(Some(DoneKind::Ticket(cell)))
    }

    fn callback(f: impl FnOnce(StoreResult<()>) + Send + 'static) -> Done {
        Done(Some(DoneKind::Callback(Box::new(f))))
    }

    fn resolve(mut self, result: &StoreResult<()>) {
        if let Some(kind) = self.0.take() {
            match kind {
                DoneKind::Ticket(cell) => cell.resolve(result.clone()),
                DoneKind::Callback(f) => f(result.clone()),
            }
        }
    }
}

impl Drop for Done {
    fn drop(&mut self) {
        if let Some(kind) = self.0.take() {
            let lost = Err(StoreError::Io(
                "wal committer died before resolving this ack".into(),
            ));
            match kind {
                DoneKind::Ticket(cell) => cell.resolve(lost),
                DoneKind::Callback(f) => f(lost),
            }
        }
    }
}

enum Op {
    /// A frame (empty payload = pure barrier). `force_sync` makes the
    /// group fsync regardless of policy.
    Frame {
        payload: Bytes,
        force_sync: bool,
        done: Done,
    },
    /// Truncate the log to zero bytes, in queue order: frames submitted
    /// before the reset are written (then wiped), frames submitted
    /// after land in the fresh log. The caller must guarantee every
    /// earlier frame is superseded by a checkpoint elsewhere.
    Reset { done: Done },
}

struct Queue {
    items: VecDeque<Op>,
    shutdown: bool,
    /// Set when the committer died (I/O error or injected crash); every
    /// queued and future submission resolves with a clone of this.
    dead: Option<StoreError>,
    /// Which injected crash point fired, if any (diagnostics).
    injected: Option<CrashPoint>,
    crash_plan: Option<CrashPlan>,
    /// Test hook: panic the committer when it assembles non-empty group
    /// number N (see [`GroupWal::arm_panic`]).
    panic_plan: Option<u64>,
}

struct Shared {
    q: Mutex<Queue>,
    work: Condvar,
    config: WalConfig,
    /// Bytes written to the log (observability + checkpoint triggers;
    /// Relaxed per the [`WalCounters`] ordering policy — never a
    /// durability decision).
    written_len: AtomicU64,
    counters: WalCounters,
    mirror: Mutex<Option<WalCounters>>,
    /// Teeth flag for the model suite: ack groups *before* the fsync,
    /// deliberately breaking ack ⇒ durable. Plain `std` atomic on
    /// purpose — it is test configuration, not a modeled sync point.
    ack_early: AtomicBool,
}

impl Shared {
    fn bump(&self, frames: u64, fsyncs: u64) {
        self.counters.groups.fetch_add(1, Ordering::Relaxed);
        self.counters.frames.fetch_add(frames, Ordering::Relaxed);
        self.counters.fsyncs.fetch_add(fsyncs, Ordering::Relaxed);
        if let Some(m) = &*self.mirror.lock() {
            m.groups.fetch_add(1, Ordering::Relaxed);
            m.frames.fetch_add(frames, Ordering::Relaxed);
            m.fsyncs.fetch_add(fsyncs, Ordering::Relaxed);
        }
    }
}

// ------------------------------------------------------------------ media

/// The committer's view of durable media: positioned appends, fsync, and
/// truncation. Production logs run over a real [`File`]; model tests use
/// [`MemMedia`] so schedule exploration never touches a filesystem —
/// every write/fsync is a pure in-memory state transition the checker
/// can interleave.
pub trait WalMedia: Send + 'static {
    /// Writes `buf` at the current position, advancing it.
    fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()>;
    /// Makes everything written so far durable.
    fn sync_data(&mut self) -> std::io::Result<()>;
    /// Truncates (or zero-extends) to `len` bytes without moving the
    /// position.
    fn set_len(&mut self, len: u64) -> std::io::Result<()>;
    /// Moves the write position to `pos`.
    fn seek_to(&mut self, pos: u64) -> std::io::Result<()>;
}

impl WalMedia for File {
    fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
        Write::write_all(self, buf)
    }

    fn sync_data(&mut self) -> std::io::Result<()> {
        File::sync_data(self)
    }

    fn set_len(&mut self, len: u64) -> std::io::Result<()> {
        File::set_len(self, len)
    }

    fn seek_to(&mut self, pos: u64) -> std::io::Result<()> {
        self.seek(SeekFrom::Start(pos)).map(|_| ())
    }
}

/// In-memory [`WalMedia`] with an explicit durability watermark: only
/// bytes covered by a `sync_data` survive an emulated kill, exactly like
/// the page cache. Model tests read back [`MemMedia::durable`] to check
/// acked frames against what an fsync actually covered.
#[doc(hidden)]
#[derive(Clone, Default)]
pub struct MemMedia {
    inner: Arc<Mutex<MemMediaState>>,
}

#[derive(Default)]
struct MemMediaState {
    data: Vec<u8>,
    synced: usize,
    pos: usize,
}

impl MemMedia {
    /// Fresh, empty media.
    pub fn new() -> MemMedia {
        MemMedia::default()
    }

    /// The durable prefix: what the last `sync_data` made survivable.
    pub fn durable(&self) -> Vec<u8> {
        let st = self.inner.lock();
        st.data[..st.synced].to_vec()
    }

    /// Everything written, synced or not.
    pub fn written(&self) -> Vec<u8> {
        self.inner.lock().data.clone()
    }
}

impl WalMedia for MemMedia {
    fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
        let mut st = self.inner.lock();
        let pos = st.pos;
        let end = pos + buf.len();
        if st.data.len() < end {
            st.data.resize(end, 0);
        }
        st.data[pos..end].copy_from_slice(buf);
        st.pos = end;
        Ok(())
    }

    fn sync_data(&mut self) -> std::io::Result<()> {
        let mut st = self.inner.lock();
        st.synced = st.data.len();
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> std::io::Result<()> {
        let mut st = self.inner.lock();
        st.data.resize(len as usize, 0);
        st.synced = st.synced.min(len as usize);
        Ok(())
    }

    fn seek_to(&mut self, pos: u64) -> std::io::Result<()> {
        self.inner.lock().pos = pos as usize;
        Ok(())
    }
}

// --------------------------------------------------------------- GroupWal

/// The group-commit write-ahead log. See the module docs.
pub struct GroupWal {
    shared: Arc<Shared>,
    committer: Mutex<Option<mthread::JoinHandle<()>>>,
}

impl GroupWal {
    /// Opens (or creates) the log at `path`, recovering the committed
    /// frame prefix. A torn tail is truncated from the file; corruption
    /// before the tail is an error. Returns the WAL and the recovered
    /// frames in append order.
    pub fn open(
        path: impl Into<PathBuf>,
        config: WalConfig,
    ) -> StoreResult<(GroupWal, Vec<Bytes>)> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let mut frames = Vec::new();
        let mut offset = 0usize;
        // `parse_record` returns None at end of file or on a torn tail.
        while let Some((payload, consumed)) = parse_record(&buf[offset..])? {
            frames.push(Bytes::copy_from_slice(payload));
            offset += consumed;
        }
        if offset < buf.len() {
            // Torn tail from a crash mid-group: drop it physically so
            // new appends never land after garbage bytes.
            file.set_len(offset as u64)?;
        }
        file.seek(SeekFrom::Start(offset as u64))?;

        Ok((Self::launch(file, config, offset as u64)?, frames))
    }

    /// Opens a WAL over caller-provided media with no recovery pass (the
    /// media must be empty). Model tests drive this with [`MemMedia`];
    /// real logs go through [`GroupWal::open`].
    #[doc(hidden)]
    pub fn open_with_media<M: WalMedia>(media: M, config: WalConfig) -> StoreResult<GroupWal> {
        Self::launch(media, config, 0)
    }

    fn launch<M: WalMedia>(media: M, config: WalConfig, durable: u64) -> StoreResult<GroupWal> {
        let shared = Arc::new(Shared {
            q: Mutex::new(Queue {
                items: VecDeque::new(),
                shutdown: false,
                dead: None,
                injected: None,
                crash_plan: None,
                panic_plan: None,
            }),
            work: Condvar::new(),
            config,
            written_len: AtomicU64::new(durable),
            counters: WalCounters::default(),
            mirror: Mutex::new(None),
            ack_early: AtomicBool::new(false),
        });
        let committer = {
            let shared = Arc::clone(&shared);
            mthread::Builder::new()
                .name("wal-committer".into())
                .spawn(move || run_committer(shared, media, durable))
                .map_err(|e| StoreError::Io(e.to_string()))?
        };
        Ok(GroupWal {
            shared,
            committer: Mutex::new(Some(committer)),
        })
    }

    fn enqueue(&self, op: Op) {
        let mut q = self.shared.q.lock();
        // Re-check under the same lock that will publish the op: the
        // committer can die between a caller's fail-fast check and this
        // push, and an op pushed onto a dead queue strands its waiter
        // forever (no drain will ever run). Found by the model checker
        // (`wal_committer_panic`).
        if let Some(err) = Self::dead_error(&q) {
            drop(q);
            let (Op::Frame { done, .. } | Op::Reset { done }) = op;
            done.resolve(&Err(err));
            return;
        }
        q.items.push_back(op);
        if q.items.len() == 1 {
            self.shared.work.notify_one();
        } else {
            // The committer may be holding a group open under
            // `max_delay`; any arrival should be allowed to fill it.
            self.shared.work.notify_one();
        }
    }

    fn dead_error(q: &Queue) -> Option<StoreError> {
        if let Some(err) = &q.dead {
            return Some(err.clone());
        }
        if q.shutdown {
            return Some(StoreError::Io("wal is shut down".into()));
        }
        None
    }

    /// Queues `payload` for the next group; the returned ticket resolves
    /// when the group commits.
    pub fn submit(&self, payload: Bytes) -> WalTicket {
        {
            let q = self.shared.q.lock();
            if let Some(err) = Self::dead_error(&q) {
                return WalTicket::failed(err);
            }
        }
        let cell = TicketCell::new();
        self.enqueue(Op::Frame {
            payload,
            force_sync: false,
            done: Done::ticket(Arc::clone(&cell)),
        });
        WalTicket(cell)
    }

    /// Queues `payload` with a completion callback instead of a ticket.
    /// The callback runs on the committer thread, after the group
    /// commits, in submission order — it must be cheap and non-blocking
    /// (the same contract as a `ReplyTo` callback).
    pub fn submit_with(&self, payload: Bytes, done: impl FnOnce(StoreResult<()>) + Send + 'static) {
        {
            let q = self.shared.q.lock();
            if let Some(err) = Self::dead_error(&q) {
                drop(q);
                done(Err(err));
                return;
            }
        }
        self.enqueue(Op::Frame {
            payload,
            force_sync: false,
            done: Done::callback(done),
        });
    }

    /// Submits `payload` and blocks until its group commits.
    pub fn append(&self, payload: Bytes) -> StoreResult<()> {
        self.submit(payload).wait()
    }

    /// Durability barrier: blocks until everything queued before this
    /// call is on durable media (forces an fsync even under
    /// [`FsyncPolicy::OnDemand`]).
    pub fn sync(&self) -> StoreResult<()> {
        {
            let q = self.shared.q.lock();
            if let Some(err) = Self::dead_error(&q) {
                return Err(err);
            }
        }
        let cell = TicketCell::new();
        self.enqueue(Op::Frame {
            payload: Bytes::new(),
            force_sync: true,
            done: Done::ticket(Arc::clone(&cell)),
        });
        WalTicket(cell).wait()
    }

    /// Truncates the log to zero bytes, in queue order (see [`Op::Reset`]
    /// semantics): frames submitted before this call are written first
    /// and then wiped, so the caller must have checkpointed their
    /// effects elsewhere; frames submitted after land in the fresh log.
    pub fn reset(&self) -> StoreResult<()> {
        {
            let q = self.shared.q.lock();
            if let Some(err) = Self::dead_error(&q) {
                return Err(err);
            }
        }
        let cell = TicketCell::new();
        self.enqueue(Op::Reset {
            done: Done::ticket(Arc::clone(&cell)),
        });
        WalTicket(cell).wait()
    }

    /// Bytes currently in the log file.
    pub fn len(&self) -> u64 {
        self.shared.written_len.load(Ordering::Relaxed)
    }

    /// True when the log holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Arms an injected crash (test instrumentation; see [`CrashPlan`]).
    pub fn arm_crash(&self, plan: CrashPlan) {
        self.shared.q.lock().crash_plan = Some(plan);
    }

    /// Arms an injected committer *panic* when it assembles non-empty
    /// group `at_group` — the crashed-committer path, where every
    /// pending ack must resolve with an error rather than hang (test
    /// instrumentation; the model and fairness suites drive this).
    #[doc(hidden)]
    pub fn arm_panic(&self, at_group: u64) {
        self.shared.q.lock().panic_plan = Some(at_group);
    }

    /// Teeth hook for the model suite: makes the committer resolve acks
    /// *before* the group fsync, deliberately breaking the ack ⇒ durable
    /// contract so a checker run can prove it catches the missing edge.
    /// Never call outside tests.
    #[doc(hidden)]
    pub fn ack_before_fsync_for_test(&self) {
        self.shared.ack_early.store(true, Ordering::Relaxed);
    }

    /// The injected crash point that fired, if any.
    pub fn injected_crash(&self) -> Option<CrashPoint> {
        self.shared.q.lock().injected
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WalStatsSnapshot {
        WalStatsSnapshot {
            groups: self.shared.counters.groups.load(Ordering::Relaxed),
            frames: self.shared.counters.frames.load(Ordering::Relaxed),
            fsyncs: self.shared.counters.fsyncs.load(Ordering::Relaxed),
        }
    }

    /// Mirrors every future counter increment into `counters` (e.g. the
    /// runtime's `wal_*` metrics).
    pub fn mirror_counters(&self, counters: WalCounters) {
        *self.shared.mirror.lock() = Some(counters);
    }
}

impl Drop for GroupWal {
    fn drop(&mut self) {
        {
            let mut q = self.shared.q.lock();
            q.shutdown = true;
            self.shared.work.notify_one();
        }
        if let Some(handle) = self.committer.lock().take() {
            let _ = handle.join();
        }
    }
}

// --------------------------------------------------------------- committer

struct Group {
    frames: Vec<(Bytes, Done)>,
    force_sync: bool,
}

/// Committer thread entry: runs the commit loop, and if it panics
/// (injected via [`GroupWal::arm_panic`], or a real bug) marks the WAL
/// dead and resolves every queued waiter with an error instead of
/// stranding them. Acks in the group being assembled at the panic unwind
/// through [`Done`]'s drop, which resolves them the same way.
fn run_committer<M: WalMedia>(shared: Arc<Shared>, media: M, durable: u64) {
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe({
        let shared = Arc::clone(&shared);
        move || committer_loop(shared, media, durable, durable)
    }));
    if caught.is_err() {
        let err = StoreError::Io("wal committer panicked; pending acks lost".into());
        let drained: Vec<Op> = {
            let mut q = shared.q.lock();
            q.dead = Some(err.clone());
            q.items.drain(..).collect()
        };
        let failed = Err(err);
        for op in drained {
            match op {
                Op::Frame { done, .. } | Op::Reset { done } => done.resolve(&failed),
            }
        }
    }
}

/// The committer thread: assemble group → coalesced write → fsync →
/// resolve acks, with the five [`CrashPoint`]s injectable in between.
fn committer_loop<M: WalMedia>(
    shared: Arc<Shared>,
    mut file: M,
    mut written: u64,
    mut durable: u64,
) {
    let config = shared.config;
    let mut group_seq: u64 = 0;
    loop {
        // ---- assemble the next group (or reset op) under the queue lock
        let mut reset: Option<Done> = None;
        let mut group = Group {
            frames: Vec::new(),
            force_sync: false,
        };
        let mut crash: Option<CrashPoint> = None;
        {
            let mut q = shared.q.lock();
            loop {
                if !q.items.is_empty() {
                    break;
                }
                if q.shutdown {
                    return;
                }
                q = shared.work.wait(q);
            }
            if let Some(Op::Reset { .. }) = q.items.front() {
                let Some(Op::Reset { done }) = q.items.pop_front() else {
                    unreachable!()
                };
                reset = Some(done);
            } else {
                let opened = Instant::now();
                loop {
                    while group.frames.len() < config.max_batch {
                        match q.items.front() {
                            Some(Op::Frame { .. }) => {
                                let Some(Op::Frame {
                                    payload,
                                    force_sync,
                                    done,
                                }) = q.items.pop_front()
                                else {
                                    unreachable!()
                                };
                                group.force_sync |= force_sync;
                                group.frames.push((payload, done));
                            }
                            // A reset boundary ends the group; None ends
                            // the drain.
                            Some(Op::Reset { .. }) | None => break,
                        }
                    }
                    if group.frames.len() >= config.max_batch
                        || !q.items.is_empty()
                        || q.shutdown
                        || config.max_delay.is_zero()
                    {
                        break;
                    }
                    // Hold the group open for stragglers, never past
                    // max_delay (the fairness bound).
                    let Some(left) = config.max_delay.checked_sub(opened.elapsed()) else {
                        break;
                    };
                    if left.is_zero() {
                        break;
                    }
                    let (guard, timed_out) = shared.work.wait_for(q, left);
                    q = guard;
                    if timed_out {
                        break;
                    }
                }
                if let Some(plan) = q.crash_plan {
                    // `at_group` counts *non-empty* groups, so a group
                    // of pure barrier frames is not the armed group —
                    // consuming the plan on one would silently skip
                    // points that need bytes in flight (MidGroupWrite).
                    if plan.at_group == group_seq
                        && group.frames.iter().any(|(payload, _)| !payload.is_empty())
                    {
                        crash = Some(plan.point);
                        q.crash_plan = None;
                    }
                }
                if q.panic_plan == Some(group_seq)
                    && group.frames.iter().any(|(payload, _)| !payload.is_empty())
                {
                    // Injected committer death (see `arm_panic`): unwind
                    // with the group in hand. The queue guard unlocks on
                    // the way out; `run_committer` wakes everyone else.
                    q.panic_plan = None;
                    panic!("injected wal committer panic at group {group_seq}");
                }
            }
        }

        // ---- reset op: truncate, in queue order
        if let Some(done) = reset {
            let result = (|| -> StoreResult<()> {
                file.set_len(0)?;
                file.seek_to(0)?;
                Ok(())
            })();
            match result {
                Ok(()) => {
                    written = 0;
                    durable = 0;
                    shared.written_len.store(0, Ordering::Relaxed);
                    done.resolve(&Ok(()));
                }
                Err(e) => {
                    die(&shared, &mut file, durable, None, e, vec![done]);
                    return;
                }
            }
            continue;
        }

        // ---- coalesce
        let mut buf = Vec::new();
        let mut frame_count = 0u64;
        for (payload, _) in &group.frames {
            if !payload.is_empty() {
                frame_record(payload, &mut buf);
                frame_count += 1;
            }
        }

        // ---- write (crash points 1–3)
        let io = (|| -> Result<(), (StoreError, Option<CrashPoint>)> {
            let injected = |p| (StoreError::Io(format!("injected crash at {p:?}")), Some(p));
            if crash == Some(CrashPoint::BeforeGroupWrite) {
                return Err(injected(CrashPoint::BeforeGroupWrite));
            }
            if crash == Some(CrashPoint::MidGroupWrite) && !buf.is_empty() {
                // Tear the group: a prefix of the coalesced buffer
                // reaches the file, everything unsynced before it is
                // lost with the page cache.
                let keep = buf.len() / 2;
                emulate_kill(&mut file, durable, Some(&buf[..keep]));
                return Err(injected(CrashPoint::MidGroupWrite));
            }
            file.write_all(&buf).map_err(|e| (e.into(), None))?;
            written += buf.len() as u64;
            shared.written_len.store(written, Ordering::Relaxed);
            if shared.ack_early.load(Ordering::Relaxed) {
                // Teeth for the model suite: resolve acks here, before
                // the fsync, violating ack ⇒ durable on purpose so the
                // checker can prove it notices the missing edge.
                for (_, done) in group.frames.drain(..) {
                    done.resolve(&Ok(()));
                }
            }
            if crash == Some(CrashPoint::AfterWriteBeforeFsync) {
                emulate_kill(&mut file, durable, None);
                return Err(injected(CrashPoint::AfterWriteBeforeFsync));
            }
            let want_sync = (config.fsync_policy == FsyncPolicy::PerGroup && !buf.is_empty())
                || (group.force_sync && durable < written);
            let mut fsyncs = 0;
            if want_sync {
                file.sync_data().map_err(|e| (e.into(), None))?;
                durable = written;
                fsyncs = 1;
            }
            if frame_count > 0 {
                shared.bump(frame_count, fsyncs);
            } else if fsyncs > 0 {
                shared.counters.fsyncs.fetch_add(1, Ordering::Relaxed);
            }
            Ok(())
        })();

        if let Err((err, point)) = io {
            if point.is_some() {
                // Injected kills past the write may still need the
                // page-cache-loss emulation for BeforeGroupWrite.
                if point == Some(CrashPoint::BeforeGroupWrite) {
                    emulate_kill(&mut file, durable, None);
                }
            }
            let pending: Vec<Done> = group.frames.into_iter().map(|(_, d)| d).collect();
            die(&shared, &mut file, durable, point, err, pending);
            return;
        }
        if frame_count > 0 {
            group_seq += 1;
        }

        // ---- ack (crash points 4–5)
        if crash == Some(CrashPoint::AfterFsyncBeforeAck) {
            // Durable but unacked: waiters observe an error even though
            // the bytes survived — the allowed direction.
            emulate_kill(&mut file, durable, None);
            let err = StoreError::Io("injected crash at AfterFsyncBeforeAck".into());
            let pending: Vec<Done> = group.frames.into_iter().map(|(_, d)| d).collect();
            die(
                &shared,
                &mut file,
                durable,
                Some(CrashPoint::AfterFsyncBeforeAck),
                err,
                pending,
            );
            return;
        }
        for (_, done) in group.frames {
            done.resolve(&Ok(()));
        }
        if crash == Some(CrashPoint::AfterAck) {
            emulate_kill(&mut file, durable, None);
            let err = StoreError::Io("injected crash at AfterAck".into());
            die(
                &shared,
                &mut file,
                durable,
                Some(CrashPoint::AfterAck),
                err,
                Vec::new(),
            );
            return;
        }
    }
}

/// Emulates a process kill: bytes past the last fsync are lost (the
/// page cache dies with the process), optionally leaving `torn` partial
/// bytes of the in-flight group behind.
fn emulate_kill<M: WalMedia>(file: &mut M, durable: u64, torn: Option<&[u8]>) {
    let _ = file.set_len(durable);
    let _ = file.seek_to(durable);
    if let Some(bytes) = torn {
        let _ = file.write_all(bytes);
    }
}

/// Marks the WAL dead and errors out every pending and queued waiter.
fn die<M: WalMedia>(
    shared: &Shared,
    file: &mut M,
    durable: u64,
    injected: Option<CrashPoint>,
    err: StoreError,
    pending: Vec<Done>,
) {
    let _ = file;
    shared.written_len.store(
        std::cmp::min(durable, shared.written_len.load(Ordering::Relaxed)),
        Ordering::Relaxed,
    );
    let drained: Vec<Op> = {
        let mut q = shared.q.lock();
        q.dead = Some(err.clone());
        q.injected = injected;
        q.items.drain(..).collect()
    };
    let failed = Err(err);
    for done in pending {
        done.resolve(&failed);
    }
    for op in drained {
        match op {
            Op::Frame { done, .. } | Op::Reset { done } => done.resolve(&failed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "aodb-groupwal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir.join("wal.log")
    }

    fn open(path: &PathBuf) -> (GroupWal, Vec<Bytes>) {
        GroupWal::open(path, WalConfig::default()).unwrap()
    }

    #[test]
    fn append_and_recover_in_order() {
        let path = temp_wal("order");
        {
            let (wal, recovered) = open(&path);
            assert!(recovered.is_empty());
            for i in 0..50u32 {
                wal.append(Bytes::from(i.to_le_bytes().to_vec())).unwrap();
            }
        }
        let (_, recovered) = open(&path);
        assert_eq!(recovered.len(), 50);
        for (i, frame) in recovered.iter().enumerate() {
            assert_eq!(frame.as_ref(), (i as u32).to_le_bytes());
        }
    }

    #[test]
    fn concurrent_submitters_coalesce() {
        let path = temp_wal("coalesce");
        let (wal, _) = open(&path);
        let wal = Arc::new(wal);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    for i in 0..100u32 {
                        wal.append(Bytes::from(format!("{t}:{i}"))).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.frames, 400);
        assert!(
            stats.groups <= stats.frames,
            "groups {} > frames {}",
            stats.groups,
            stats.frames
        );
        // Per-group fsync: exactly one per group.
        assert_eq!(stats.fsyncs, stats.groups);
        drop(wal);
        let (_, recovered) = open(&path);
        assert_eq!(recovered.len(), 400);
    }

    #[test]
    fn on_demand_skips_fsync_until_barrier() {
        let path = temp_wal("ondemand");
        let config = WalConfig {
            fsync_policy: FsyncPolicy::OnDemand,
            ..WalConfig::default()
        };
        let (wal, _) = GroupWal::open(&path, config).unwrap();
        for _ in 0..10 {
            wal.append(Bytes::from_static(b"x")).unwrap();
        }
        assert_eq!(wal.stats().fsyncs, 0);
        wal.sync().unwrap();
        assert_eq!(wal.stats().fsyncs, 1);
    }

    #[test]
    fn reset_truncates_in_queue_order() {
        let path = temp_wal("reset");
        let (wal, _) = open(&path);
        wal.append(Bytes::from_static(b"before")).unwrap();
        assert!(!wal.is_empty());
        wal.reset().unwrap();
        assert_eq!(wal.len(), 0);
        wal.append(Bytes::from_static(b"after")).unwrap();
        drop(wal);
        let (_, recovered) = open(&path);
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].as_ref(), b"after");
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = temp_wal("torn");
        {
            let (wal, _) = open(&path);
            wal.append(Bytes::from_static(b"committed")).unwrap();
            wal.append(Bytes::from_static(b"torn-away")).unwrap();
        }
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();
        let (wal, recovered) = open(&path);
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].as_ref(), b"committed");
        // The torn bytes are physically gone: appends land cleanly.
        wal.append(Bytes::from_static(b"fresh")).unwrap();
        drop(wal);
        let (_, recovered) = open(&path);
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[1].as_ref(), b"fresh");
    }

    #[test]
    fn mid_log_corruption_is_an_error() {
        let path = temp_wal("corrupt");
        {
            let (wal, _) = open(&path);
            wal.append(Bytes::from_static(b"aaaa")).unwrap();
            wal.append(Bytes::from_static(b"bbbb")).unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        data[9] ^= 0xA5; // payload byte of the first record
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(
            GroupWal::open(&path, WalConfig::default()),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn crash_points_respect_ack_durability() {
        for point in CrashPoint::ALL {
            let path = temp_wal(&format!("crash-{point:?}"));
            let acked: Vec<u32>;
            {
                let (wal, _) = open(&path);
                // Commit a couple of groups first, then arm the crash.
                for i in 0..3u32 {
                    wal.append(Bytes::from(i.to_le_bytes().to_vec())).unwrap();
                }
                wal.arm_crash(CrashPlan { point, at_group: 3 });
                let tickets: Vec<(u32, WalTicket)> = (3..6u32)
                    .map(|i| (i, wal.submit(Bytes::from(i.to_le_bytes().to_vec()))))
                    .collect();
                acked = tickets
                    .into_iter()
                    .filter_map(|(i, t)| t.wait().ok().map(|_| i))
                    .collect();
                // For AfterAck the acks resolve an instant before the
                // committer marks itself dead; give it a moment.
                for _ in 0..1000 {
                    if wal.injected_crash().is_some() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                assert_eq!(wal.injected_crash(), Some(point));
                // Post-crash submissions fail fast.
                assert!(wal.append(Bytes::from_static(b"late")).is_err());
            }
            let (_, recovered) = open(&path);
            let frames: Vec<u32> = recovered
                .iter()
                .map(|f| u32::from_le_bytes(f.as_ref().try_into().unwrap()))
                .collect();
            // acked ⇒ durable.
            for i in &acked {
                assert!(
                    frames.contains(i),
                    "{point:?}: acked frame {i} lost; recovered {frames:?}"
                );
            }
            // Recovered is a prefix of submission order.
            let expected: Vec<u32> = (0..frames.len() as u32).collect();
            assert_eq!(
                frames, expected,
                "{point:?}: recovery is not a clean prefix"
            );
            // The pre-crash groups survive unconditionally.
            assert!(frames.len() >= 3, "{point:?}: committed prefix lost");
            // The committer may split the three submissions across
            // groups, so only the crashing group's membership is
            // deterministic-free; the ack direction still is not.
            match point {
                CrashPoint::AfterAck => {
                    assert!(!acked.is_empty(), "AfterAck must ack its group")
                }
                _ => assert!(acked.is_empty(), "{point:?} must not ack its group"),
            }
        }
    }

    #[test]
    fn max_delay_holds_group_open_for_stragglers() {
        let path = temp_wal("delay");
        let config = WalConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(30),
            ..WalConfig::default()
        };
        let (wal, _) = GroupWal::open(&path, config).unwrap();
        let wal = Arc::new(wal);
        // Two frames submitted a few ms apart should usually coalesce
        // into one group thanks to the assembly window.
        let w = Arc::clone(&wal);
        let t1 = std::thread::spawn(move || w.append(Bytes::from_static(b"a")).unwrap());
        std::thread::sleep(Duration::from_millis(5));
        let w = Arc::clone(&wal);
        let t2 = std::thread::spawn(move || w.append(Bytes::from_static(b"b")).unwrap());
        t1.join().unwrap();
        t2.join().unwrap();
        let stats = wal.stats();
        assert_eq!(stats.frames, 2);
        // Not asserting groups == 1 (scheduling may split them), but the
        // ack latency bound must hold: both appends returned, so the
        // waiters were not held past the window. Sanity-check the bound
        // directly with a lone frame:
        let start = Instant::now();
        wal.append(Bytes::from_static(b"lone")).unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "single append must not wait for a full batch"
        );
    }

    #[test]
    fn callbacks_run_in_submission_order() {
        let path = temp_wal("callbacks");
        let (wal, _) = open(&path);
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..20u32 {
            let order = Arc::clone(&order);
            wal.submit_with(Bytes::from(i.to_le_bytes().to_vec()), move |r| {
                r.unwrap();
                order.lock().push(i);
            });
        }
        wal.sync().unwrap();
        let got = order.lock().clone();
        assert_eq!(got, (0..20).collect::<Vec<u32>>());
    }

    #[test]
    fn counters_mirror_into_external_cells() {
        let path = temp_wal("mirror");
        let (wal, _) = open(&path);
        let mirror = WalCounters::default();
        wal.mirror_counters(mirror.clone());
        for _ in 0..5 {
            wal.append(Bytes::from_static(b"x")).unwrap();
        }
        assert_eq!(mirror.frames.load(Ordering::Relaxed), 5);
        assert!(mirror.groups.load(Ordering::Relaxed) >= 1);
        assert_eq!(
            mirror.fsyncs.load(Ordering::Relaxed),
            mirror.groups.load(Ordering::Relaxed)
        );
    }
}
