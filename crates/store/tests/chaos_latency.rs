//! Regression test for lock discipline under injected latency: a
//! ChaosStore write latency sleep must never be served while holding the
//! inner store's write guard. If the sleep ever moved inside the
//! delegated `put` (or the decorator grew a lock of its own around it),
//! concurrent readers would stall for the full injected latency and this
//! test would trip.

use std::sync::Arc;
use std::time::{Duration, Instant};

use aodb_store::{BurstWindow, ChaosStore, ChaosStoreConfig, Key, MemStore, StateStore};
use bytes::Bytes;

fn latency_only_config(write_latency: Duration) -> ChaosStoreConfig {
    ChaosStoreConfig {
        seed: 1,
        error_burst: BurstWindow::OFF,
        throttle_window: BurstWindow::OFF,
        error_per_mille: 0,
        read_latency: Duration::ZERO,
        write_latency,
    }
}

#[test]
fn slow_chaos_write_does_not_stall_concurrent_readers() {
    let write_latency = Duration::from_millis(400);
    let store = Arc::new(ChaosStore::seeded(
        MemStore::new(),
        latency_only_config(write_latency),
    ));
    let key = Key::new("t", "hot");
    store.inner().put(&key, Bytes::from_static(b"v0")).unwrap();

    let writer = {
        let store = Arc::clone(&store);
        let key = key.clone();
        std::thread::spawn(move || {
            store.put(&key, Bytes::from_static(b"v1")).unwrap();
        })
    };

    // Give the writer time to be inside its injected latency sleep, then
    // read through the inner store. The write guard is only taken for
    // the map insert after the sleep, so the read returns promptly even
    // though the write is still "in flight".
    std::thread::sleep(Duration::from_millis(100));
    let start = Instant::now();
    let v = store.inner().get(&key).unwrap();
    let read_time = start.elapsed();

    assert!(v.is_some());
    assert!(
        read_time < write_latency / 2,
        "read stalled {read_time:?} behind an injected {write_latency:?} write \
         latency — a guard is being held across the chaos sleep"
    );

    writer.join().unwrap();
    assert_eq!(
        store.inner().get(&key).unwrap(),
        Some(Bytes::from_static(b"v1"))
    );
}
