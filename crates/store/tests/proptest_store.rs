//! Property-based tests of the storage substrate: key-encoding order
//! preservation, log-store recovery equivalence against a model, and
//! arbitrary crash points.

use std::collections::BTreeMap;
use std::path::PathBuf;

use aodb_store::{Bytes, Key, LogStore, LogStoreConfig, StateStore};
use proptest::prelude::*;

fn temp_dir(tag: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "aodb-proptest-{}-{tag}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

#[derive(Clone, Debug)]
enum Op {
    Put(String, Vec<u8>),
    Delete(String),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let key = "[a-c]{1,3}"; // small keyspace forces overwrites and deletes
    prop_oneof![
        (key, proptest::collection::vec(any::<u8>(), 0..64)).prop_map(|(k, v)| Op::Put(k, v)),
        key.prop_map(Op::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Key encoding must preserve component-wise lexicographic order —
    /// the property prefix scans rely on.
    #[test]
    fn key_encoding_preserves_order(
        ns1 in "[a-z]{1,6}", p1 in "[a-z0-9]{0,6}", s1 in "[a-z0-9]{0,6}",
        ns2 in "[a-z]{1,6}", p2 in "[a-z0-9]{0,6}", s2 in "[a-z0-9]{0,6}",
    ) {
        let k1 = Key::with_sort(&ns1, &p1, &s1);
        let k2 = Key::with_sort(&ns2, &p2, &s2);
        let logical = (ns1, p1, s1).cmp(&(ns2, p2, s2));
        prop_assert_eq!(k1.cmp(&k2), logical);
    }

    /// Partition prefixes never match keys of other partitions, even for
    /// partitions that are string prefixes of each other or contain
    /// separator bytes.
    #[test]
    fn partition_prefix_is_exact(
        ns in "[a-z]{1,4}",
        p1 in "[a-z0\\x00]{1,5}",
        p2 in "[a-z0\\x00]{1,5}",
        sort in "[a-z]{0,4}",
    ) {
        let key = Key::with_sort(&ns, &p2, &sort);
        let prefix = Key::partition_prefix(&ns, &p1);
        prop_assert_eq!(key.as_bytes().starts_with(&prefix), p1 == p2);
    }

    /// After any sequence of puts/deletes and a clean reopen, the log
    /// store must agree exactly with an in-memory model.
    #[test]
    fn log_store_matches_model_after_reopen(
        ops in proptest::collection::vec(op_strategy(), 0..60),
        tag in any::<u64>(),
    ) {
        let dir = temp_dir(tag);
        let _ = std::fs::remove_dir_all(&dir);
        let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        {
            let mut config = LogStoreConfig::new(&dir);
            config.compact_threshold = 512; // force frequent compactions
            let store = LogStore::open(config).unwrap();
            for op in &ops {
                match op {
                    Op::Put(k, v) => {
                        store.put(&Key::new("t", k), Bytes::from(v.clone())).unwrap();
                        model.insert(k.clone(), v.clone());
                    }
                    Op::Delete(k) => {
                        store.delete(&Key::new("t", k)).unwrap();
                        model.remove(k);
                    }
                }
            }
        }
        let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        prop_assert_eq!(store.len(), model.len());
        for (k, v) in &model {
            let got = store.get(&Key::new("t", k)).unwrap();
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncating the WAL at any byte offset (simulating a crash mid
    /// write) must never lose *previously durable* operations: recovery
    /// yields a prefix of the applied operations.
    #[test]
    fn crash_at_any_offset_recovers_a_prefix(
        ops in proptest::collection::vec(op_strategy(), 1..30),
        cut_fraction in 0.0f64..1.0,
        tag in any::<u64>(),
    ) {
        let dir = temp_dir(tag.wrapping_add(1));
        let _ = std::fs::remove_dir_all(&dir);
        {
            // No compaction: everything stays in the WAL so a byte cut is
            // meaningful for the whole history.
            let mut config = LogStoreConfig::new(&dir);
            config.compact_threshold = u64::MAX;
            let store = LogStore::open(config).unwrap();
            for op in &ops {
                match op {
                    Op::Put(k, v) => store.put(&Key::new("t", k), Bytes::from(v.clone())).unwrap(),
                    Op::Delete(k) => store.delete(&Key::new("t", k)).unwrap(),
                }
            }
        }
        let wal = dir.join("wal.log");
        let data = std::fs::read(&wal).unwrap();
        let cut = (data.len() as f64 * cut_fraction) as usize;
        std::fs::write(&wal, &data[..cut]).unwrap();

        let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        // The recovered state must equal the model after applying some
        // prefix of the ops.
        let mut matched = false;
        let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        let check = |model: &BTreeMap<String, Vec<u8>>, store: &LogStore| {
            if store.len() != model.len() {
                return false;
            }
            model.iter().all(|(k, v)| {
                store.get(&Key::new("t", k)).unwrap().as_deref() == Some(v.as_slice())
            })
        };
        if check(&model, &store) {
            matched = true;
        }
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    model.insert(k.clone(), v.clone());
                }
                Op::Delete(k) => {
                    model.remove(k);
                }
            }
            if check(&model, &store) {
                matched = true;
            }
        }
        prop_assert!(matched, "recovered state is not any prefix of the history");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
