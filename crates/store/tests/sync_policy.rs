//! Durability-mode and error-surface tests for the store crate.

use aodb_store::{Bytes, Key, LogStore, LogStoreConfig, StateStore, StoreError, SyncPolicy};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "aodb-sync-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sync_always_persists_every_write() {
    let dir = temp_dir("always");
    {
        let mut config = LogStoreConfig::new(&dir);
        config.sync = SyncPolicy::Always;
        let store = LogStore::open(config).unwrap();
        for i in 0..20 {
            store
                .put(&Key::new("t", &format!("{i}")), Bytes::from_static(b"v"))
                .unwrap();
        }
    }
    let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
    assert_eq!(store.len(), 20);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explicit_sync_flushes_on_demand_mode() {
    let dir = temp_dir("ondemand");
    let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
    store
        .put(&Key::new("t", "k"), Bytes::from_static(b"v"))
        .unwrap();
    store.sync().unwrap(); // must not error even with nothing pending fsync-wise
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn opening_a_file_as_directory_fails_cleanly() {
    let dir = temp_dir("collide");
    std::fs::create_dir_all(dir.parent().unwrap()).unwrap();
    std::fs::write(&dir, b"i am a file").unwrap();
    match LogStore::open(LogStoreConfig::new(&dir)) {
        Err(StoreError::Io(_)) => {}
        Err(other) => panic!("expected Io error, got {other:?}"),
        Ok(_) => panic!("open must fail when the path is a file"),
    }
    let _ = std::fs::remove_file(&dir);
}

#[test]
fn error_display_forms_are_informative() {
    assert!(StoreError::Throttled.to_string().contains("throughput"));
    assert!(StoreError::Io("disk on fire".into())
        .to_string()
        .contains("disk on fire"));
    assert!(StoreError::Corrupt("bad crc".into())
        .to_string()
        .contains("bad crc"));
    assert!(StoreError::Codec("not json".into())
        .to_string()
        .contains("not json"));
}

#[test]
fn wal_len_tracks_appends_and_compaction_resets_it() {
    let dir = temp_dir("wal-len");
    let store = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
    assert_eq!(store.wal_len(), 0);
    store
        .put(&Key::new("t", "a"), Bytes::from_static(b"hello"))
        .unwrap();
    let after_one = store.wal_len();
    assert!(after_one > 0);
    store
        .put(&Key::new("t", "b"), Bytes::from_static(b"hello"))
        .unwrap();
    assert!(store.wal_len() > after_one);
    store.compact().unwrap();
    assert_eq!(store.wal_len(), 0);
    assert_eq!(store.len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}
