//! Property-based tests of the time-series codec and engine: round-trip
//! identity over adversarial streams, sparse-index correctness, reopen
//! equivalence, and a golden sealed-block byte fixture pinning the
//! on-disk format.

use std::sync::Arc;

use aodb_store::tseries::{
    decode_block, decode_index, PointCompressor, SeriesStore, TsConfig, TsStore,
};
use aodb_store::{MemStore, StateStore};
use proptest::prelude::*;

/// One generated point: a signed timestamp step from its predecessor and
/// a value. Steps may be negative (out-of-order-within-batch) or huge
/// (epoch-scale gaps); values include the IEEE754 specials.
fn step_strategy() -> impl Strategy<Value = (i64, f64)> {
    let delta = prop_oneof![
        Just(0i64),                      // duplicate timestamps
        -1_000i64..1_000,                // jitter, incl. backwards
        Just(100i64),                    // the steady 10 Hz case
        1_000_000_000i64..2_000_000_000, // epoch-scale jumps
        Just(-3_600_000i64),             // an hour backwards
    ];
    let value = prop_oneof![
        Just(21.5f64),  // constant series
        -1e12f64..1e12, // generic magnitudes
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(-0.0f64),
        Just(0.0f64),
        Just(f64::MIN_POSITIVE), // subnormal neighborhood
    ];
    (delta, value)
}

/// Materializes a step stream into absolute `(ts, value)` points,
/// starting from an arbitrary epoch (wrapping arithmetic — the codec
/// must survive any u64 timestamp).
fn materialize(start: u64, steps: &[(i64, f64)]) -> Vec<(u64, f64)> {
    let mut ts = start;
    steps
        .iter()
        .map(|&(delta, v)| {
            ts = ts.wrapping_add(delta as u64);
            (ts, v)
        })
        .collect()
}

/// Bit-exact equality (NaN == NaN, -0.0 != 0.0): the storage engine must
/// return exactly the bytes it was given.
fn assert_points_identical(actual: &[(u64, f64)], expected: &[(u64, f64)]) {
    assert_eq!(actual.len(), expected.len(), "point count");
    for (i, (a, e)) in actual.iter().zip(expected).enumerate() {
        assert_eq!(a.0, e.0, "timestamp at {i}");
        assert_eq!(a.1.to_bits(), e.1.to_bits(), "value bits at {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// compress → seal → decode is the identity on any stream.
    #[test]
    fn sealed_block_roundtrips_adversarial_streams(
        start in any::<u64>(),
        steps in proptest::collection::vec(step_strategy(), 0..300),
    ) {
        let points = materialize(start, &steps);
        let mut comp = PointCompressor::new();
        for &(ts, v) in &points {
            comp.append(ts, v);
        }
        let block = comp.encode_block();
        let back = decode_block(&block).unwrap();
        assert_points_identical(&back, &points);
    }

    /// The sparse index must agree with a scalar recomputation — it is
    /// what block skipping trusts, so an error here silently drops data
    /// from range scans.
    #[test]
    fn sparse_index_matches_recomputation(
        start in any::<u64>(),
        steps in proptest::collection::vec(step_strategy(), 1..200),
    ) {
        let points = materialize(start, &steps);
        let mut comp = PointCompressor::new();
        for &(ts, v) in &points {
            comp.append(ts, v);
        }
        let idx = decode_index(&comp.encode_block()).unwrap();
        assert_eq!(idx.count as usize, points.len());
        assert_eq!(idx.min_ts, points.iter().map(|p| p.0).min().unwrap());
        assert_eq!(idx.max_ts, points.iter().map(|p| p.0).max().unwrap());
        let finite: Vec<f64> = points
            .iter()
            .map(|p| p.1)
            .filter(|v| !v.is_nan())
            .collect();
        if !finite.is_empty() {
            let min = finite.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(idx.min_val.to_bits(), min.to_bits());
            assert_eq!(idx.max_val.to_bits(), max.to_bits());
        }
    }

    /// Full-engine property: append in arbitrary batch sizes with an
    /// aggressive seal threshold, scan everything back — identical, in
    /// append order, across block boundaries.
    #[test]
    fn engine_scan_returns_appended_stream(
        start in any::<u64>(),
        steps in proptest::collection::vec(step_strategy(), 0..250),
        batch in 1usize..17,
        seal_every in 1u32..33,
    ) {
        let points = materialize(start, &steps);
        let ts = TsStore::new(
            Arc::new(MemStore::new()) as Arc<dyn StateStore>,
            // Disable the data-time age trigger: adversarial streams jump
            // epochs, and this property wants count-driven seals only.
            TsConfig { seal_age_ms: u64::MAX, ..TsConfig::sealing_every(seal_every) },
        );
        for chunk in points.chunks(batch) {
            ts.append_batch("s", chunk, b"m").unwrap();
        }
        let back = ts.scan_range("s", 0, u64::MAX, 0).unwrap();
        // Timestamp-filtered scan: u64::MAX-wide range still excludes
        // nothing, so this is the full stream.
        assert_points_identical(&back, &points);
    }

    /// Reopen equivalence: a fresh engine over the same backing store
    /// sees exactly the committed stream and continues it seamlessly.
    #[test]
    fn engine_survives_reopen_mid_stream(
        start in any::<u64>(),
        steps in proptest::collection::vec(step_strategy(), 2..150),
        split in 1usize..149,
        seal_every in 1u32..17,
    ) {
        let points = materialize(start, &steps);
        let split = split.min(points.len() - 1);
        let backing: Arc<dyn StateStore> = Arc::new(MemStore::new());
        let config = TsConfig { seal_age_ms: u64::MAX, ..TsConfig::sealing_every(seal_every) };
        {
            let ts = TsStore::new(Arc::clone(&backing), config);
            ts.append_batch("s", &points[..split], b"before").unwrap();
        } // dropped without seal/flush: durability is per-append
        let ts = TsStore::new(Arc::clone(&backing), config);
        let rec = ts.recover("s").unwrap();
        assert_eq!(rec.points as usize, split);
        assert_eq!(rec.meta.as_ref(), b"before");
        ts.append_batch("s", &points[split..], b"after").unwrap();
        let back = ts.scan_range("s", 0, u64::MAX, 0).unwrap();
        assert_points_identical(&back, &points);
    }
}

/// Golden fixture: the exact bytes of one sealed block. Any codec or
/// layout change that alters the on-disk format must consciously update
/// this constant (and consider migration), not drift silently.
#[test]
fn golden_sealed_block_bytes() {
    let points = [
        (1_546_300_800_000u64, 20.0f64), // 2019-01-01T00:00:00Z
        (1_546_300_800_100, 20.0),       // 10 Hz, constant value
        (1_546_300_800_200, 20.5),
        (1_546_300_800_300, 21.0),
        (1_546_300_800_250, f64::NAN), // out of order + NaN
        (1_546_300_800_400, -3.25),
    ];
    let mut comp = PointCompressor::new();
    for &(ts, v) in &points {
        comp.append(ts, v);
    }
    let block = comp.encode_block();
    let hex: String = block.iter().map(|b| format!("{b:02x}")).collect();
    assert_eq!(
        hex,
        concat!(
            // header: magic "TSB1" | count=6 | min_ts | max_ts (LE)
            "54534231",
            "06000000",
            "00bcb50668010000", // 1546300800000
            "90bdb50668010000", // 1546300800400
            // min_val=-3.25 | max_val=21.0 (LE f64; NaN excluded)
            "0000000000000ac0",
            "0000000000003540",
            // payload length in bits = 255
            "ff000000",
            // payload: dod+xor bit stream (zero-padded to the byte);
            // opens with the raw 64-bit first timestamp and value
            "0000016806b5bc004034000000000000cc83400b3c1f4af08dff3764300ebff2",
            // crc32 over everything above
            "11f83279",
        ),
        "sealed-block format drifted — bump the format (new magic) or fix the codec"
    );
    // And the fixture still decodes to the exact input.
    let back = decode_block(&block).unwrap();
    assert_eq!(back.len(), points.len());
    for (a, e) in back.iter().zip(&points) {
        assert_eq!(a.0, e.0);
        assert_eq!(a.1.to_bits(), e.1.to_bits());
    }
}
