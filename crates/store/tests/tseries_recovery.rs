//! Crash/restart recovery of the time-series engine over the durable
//! [`LogStore`] backing: every acknowledged append must survive an
//! unclean process death, including across WAL compactions and with
//! sealed blocks that only exist inside the tail record.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use aodb_store::tseries::{SeriesStore, TsConfig, TsStore};
use aodb_store::{LogStore, LogStoreConfig, StateStore, SyncPolicy};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "aodb-tseries-recovery-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_backing(dir: &Path, compact_threshold: u64) -> Arc<dyn StateStore> {
    Arc::new(
        LogStore::open(LogStoreConfig {
            dir: dir.to_path_buf(),
            compact_threshold,
            sync: SyncPolicy::OnDemand,
            group_commit: None,
        })
        .unwrap(),
    )
}

fn pts(range: std::ops::Range<u64>) -> Vec<(u64, f64)> {
    range.map(|i| (i * 100, (i as f64).sin() * 50.0)).collect()
}

#[test]
fn unclean_restart_replays_tail_and_blocks() {
    let dir = temp_dir("restart");
    let all = pts(0..500);
    {
        let ts = TsStore::new(
            open_backing(&dir, 16 * 1024 * 1024),
            TsConfig::sealing_every(64),
        );
        for (i, chunk) in all.chunks(7).enumerate() {
            ts.append_batch("ch", chunk, format!("seq={i}").as_bytes())
                .unwrap();
        }
        // No seal(), no flush, no graceful anything: the process "dies".
    }
    let ts = TsStore::new(
        open_backing(&dir, 16 * 1024 * 1024),
        TsConfig::sealing_every(64),
    );
    let rec = ts.recover("ch").unwrap();
    assert_eq!(rec.points, 500);
    assert_eq!(rec.meta.as_ref(), b"seq=71", "last committed sidecar");
    let back = ts.scan_range("ch", 0, u64::MAX, 0).unwrap();
    assert_eq!(back, all);
    // Sealed shape survived too: 500 points at 64/block.
    let stats = ts.stats("ch");
    assert_eq!(stats.sealed_blocks, 500 / 64);
    assert_eq!(stats.sealed_points + stats.tail_points, 500);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_survives_wal_compaction_cycles() {
    let dir = temp_dir("compact");
    // A realistic quantized sensor signal (ADCs emit fixed-step values;
    // XOR compression thrives on the resulting shared mantissa bits) —
    // the chaotic full-mantissa stream is covered by the other tests.
    let all: Vec<(u64, f64)> = (0..2_000u64)
        .map(|i| (i * 100, 20.0 + (i % 16) as f64 * 0.25))
        .collect();
    {
        // Tiny compaction threshold: the WAL snapshots repeatedly while
        // tail records are being overwritten, so recovery exercises the
        // snapshot + WAL merge path, not just a linear log replay.
        let ts = TsStore::new(open_backing(&dir, 8 * 1024), TsConfig::sealing_every(128));
        for chunk in all.chunks(10) {
            ts.append_batch("ch", chunk, b"m").unwrap();
        }
    }
    let ts = TsStore::new(open_backing(&dir, 8 * 1024), TsConfig::sealing_every(128));
    assert_eq!(ts.recover("ch").unwrap().points, 2_000);
    assert_eq!(ts.scan_range("ch", 0, u64::MAX, 0).unwrap(), all);

    // At rest (post-compaction) the dominant cost is the sealed blocks:
    // a smooth 10 Hz stream must land well under the 4 bytes/point
    // acceptance ceiling.
    let stats = ts.stats("ch");
    let bytes_per_point = stats.sealed_bytes as f64 / stats.sealed_points as f64;
    assert!(
        bytes_per_point < 4.0,
        "sealed storage too fat: {bytes_per_point:.2} bytes/point"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repeated_crash_restart_cycles_accumulate_exactly() {
    let dir = temp_dir("cycles");
    let all = pts(0..600);
    let mut written = 0usize;
    for cycle in 0..6 {
        let ts = TsStore::new(open_backing(&dir, 64 * 1024), TsConfig::sealing_every(32));
        let rec = ts.recover("ch").unwrap();
        assert_eq!(
            rec.points as usize, written,
            "cycle {cycle} lost or duplicated points"
        );
        let next = (written + 100).min(all.len());
        ts.append_batch("ch", &all[written..next], b"cycle")
            .unwrap();
        written = next;
        // Engine dropped uncleanly at the end of every cycle.
    }
    let ts = TsStore::new(open_backing(&dir, 64 * 1024), TsConfig::sealing_every(32));
    assert_eq!(ts.scan_range("ch", 0, u64::MAX, 0).unwrap(), all);
    let _ = std::fs::remove_dir_all(&dir);
}
