//! Group-commit fairness regression test: with a huge `max_batch` and a
//! small `max_delay`, the committer must never hold a group open waiting
//! for the batch to fill. One slow writer trickles frames while N fast
//! writers hammer the queue; every ack — slow or fast — must resolve
//! within `max_delay` plus one group flush (plus a generous CI margin
//! for a loaded 1-CPU box). A committer that waited for `max_batch`
//! frames would stall the slow writer for seconds and fail instantly.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aodb_store::{Bytes, FsyncPolicy, GroupWal, WalConfig};

/// The contract is `max_delay + one group flush`; a tmpfs flush is
/// microseconds, so the budget is dominated by `max_delay` — the rest is
/// scheduling slack for CI.
const MAX_DELAY: Duration = Duration::from_millis(20);
const ACK_BUDGET: Duration = Duration::from_millis(1500);

#[test]
fn slow_writer_ack_bounded_by_max_delay_plus_one_flush() {
    let dir = std::env::temp_dir().join(format!("aodb-wal-fairness-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (wal, _) = GroupWal::open(
        dir.join("wal.log"),
        WalConfig {
            // Far more than the writers can ever queue: a committer that
            // waits for a full batch will never flush.
            max_batch: 1_000_000,
            max_delay: MAX_DELAY,
            fsync_policy: FsyncPolicy::PerGroup,
        },
    )
    .unwrap();
    let wal = Arc::new(wal);
    let stop = Arc::new(AtomicBool::new(false));
    let worst_ns = Arc::new(AtomicU64::new(0));

    // N fast writers: append back-to-back, recording worst ack latency.
    let fast: Vec<_> = (0..3)
        .map(|t| {
            let wal = Arc::clone(&wal);
            let stop = Arc::clone(&stop);
            let worst = Arc::clone(&worst_ns);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let payload = Bytes::from(format!("fast-{t}-{i}").into_bytes());
                    let start = Instant::now();
                    wal.append(payload).unwrap();
                    worst.fetch_max(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    i += 1;
                }
                i
            })
        })
        .collect();

    // One slow writer: a frame every ~3× max_delay, so it regularly
    // arrives into an already-open accumulation window and must not be
    // held hostage until the window's group fills.
    let slow_worst = {
        let wal = Arc::clone(&wal);
        let mut worst = Duration::ZERO;
        for i in 0..8u32 {
            std::thread::sleep(MAX_DELAY * 3);
            let start = Instant::now();
            wal.append(Bytes::from(format!("slow-{i}").into_bytes()))
                .unwrap();
            worst = worst.max(start.elapsed());
        }
        worst
    };

    stop.store(true, Ordering::Relaxed);
    let fast_frames: u64 = fast.into_iter().map(|h| h.join().unwrap()).sum();
    let fast_worst = Duration::from_nanos(worst_ns.load(Ordering::Relaxed));

    assert!(
        slow_worst < ACK_BUDGET,
        "slow writer waited {slow_worst:?} for an ack (budget {ACK_BUDGET:?})"
    );
    assert!(
        fast_worst < ACK_BUDGET,
        "a fast writer waited {fast_worst:?} for an ack (budget {ACK_BUDGET:?})"
    );
    assert!(fast_frames > 0, "fast writers made no progress");

    // Sanity: batching actually happened — the fast writers produced
    // more frames than groups, otherwise this test exercises nothing.
    let stats = wal.stats();
    assert!(
        stats.frames > stats.groups,
        "expected coalescing, got {} frames in {} groups",
        stats.frames,
        stats.groups
    );
    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
}
