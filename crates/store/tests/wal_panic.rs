//! Crashed-committer regression: when the committer thread dies mid-run
//! (panic injection via `arm_panic`), every pending submitter — blocked
//! in `WalTicket::wait` or waiting on a callback — must be woken with an
//! error. A committer that unwinds without resolving its acks would
//! leave waiters blocked on a condvar forever; the `Done` drop guard and
//! the `run_committer` catch_unwind close both halves (in-flight group
//! vs still-queued ops).

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use aodb_store::{Bytes, GroupWal, WalConfig};

fn temp_wal(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("aodb-wal-panic-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.join("wal.log")
}

/// Every submitter must come back (with an error) within the harness
/// timeout; a hang here is exactly the regression this test pins.
const WAKE_BUDGET: Duration = Duration::from_secs(30);

#[test]
fn committer_panic_wakes_all_pending_submitters() {
    let path = temp_wal("wake");
    let (wal, _) = GroupWal::open(&path, WalConfig::default()).unwrap();
    let wal = Arc::new(wal);

    // Let one real group commit first so the log is mid-life.
    wal.append(Bytes::from_static(b"warmup")).unwrap();

    // Arm the panic on the next non-empty group, then pile on
    // submitters from several threads. Which submissions land in the
    // fatal group and which are still queued behind it is up to
    // scheduling — both classes must resolve.
    wal.arm_panic(1);
    let (tx, rx) = mpsc::channel::<Result<(), String>>();
    let writers: Vec<_> = (0..4)
        .map(|t| {
            let wal = Arc::clone(&wal);
            let tx = tx.clone();
            std::thread::spawn(move || {
                for i in 0..8u32 {
                    let r = wal
                        .append(Bytes::from(format!("{t}:{i}")))
                        .map_err(|e| e.to_string());
                    tx.send(r).unwrap();
                }
            })
        })
        .collect();
    drop(tx);

    let mut acks = 0usize;
    let mut errors = 0usize;
    while let Ok(r) = rx.recv_timeout(WAKE_BUDGET) {
        match r {
            Ok(()) => acks += 1,
            Err(_) => errors += 1,
        }
    }
    assert_eq!(
        acks + errors,
        32,
        "a submitter never woke: {acks} acks + {errors} errors"
    );
    // The armed group had at least one frame in it, and everything after
    // the death fails fast — so at least one error must surface.
    assert!(errors > 0, "committer panic produced no errors");

    for w in writers {
        w.join().unwrap();
    }

    // Post-mortem submissions fail fast rather than queueing forever.
    assert!(wal.append(Bytes::from_static(b"late")).is_err());

    // Callback-style submissions resolve too (same Done machinery, but
    // pin it explicitly: a leaked callback is a leaked ReplyTo upstream).
    let (ctx, crx) = mpsc::channel();
    wal.submit_with(Bytes::from_static(b"cb"), move |r| {
        ctx.send(r.is_err()).unwrap();
    });
    assert!(
        crx.recv_timeout(WAKE_BUDGET).expect("callback never ran"),
        "post-crash callback must see an error"
    );

    // The pre-crash group survives recovery.
    drop(wal);
    let (_, recovered) = GroupWal::open(&path, WalConfig::default()).unwrap();
    assert_eq!(recovered[0].as_ref(), b"warmup");
}
