//! Property tests of the group-commit WAL frame codec: round-trip
//! identity over arbitrary frame batches, and a torn-tail corpus —
//! truncation at **every byte offset of the last group** must recover
//! exactly the committed frame prefix and never report an error for a
//! clean prefix (torn ≠ corrupt; only a checksum mismatch before the
//! tail is corruption).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use aodb_store::{Bytes, FsyncPolicy, GroupWal, StoreError, WalConfig};
use proptest::prelude::*;

static CASE: AtomicU64 = AtomicU64::new(0);

fn temp_wal() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "aodb-wal-props-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir.join("wal.log")
}

/// OnDemand keeps the corpus fast; recovery reads the file contents, so
/// the fsync policy is irrelevant to what these properties check.
fn config() -> WalConfig {
    WalConfig {
        fsync_policy: FsyncPolicy::OnDemand,
        ..WalConfig::default()
    }
}

/// Non-empty arbitrary payloads (an empty payload is a pure barrier and
/// intentionally leaves no record).
fn payloads(max_len: usize, max_count: usize) -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 1..max_len),
        1..max_count,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Submit → close → recover is the identity on any frame batch, in
    /// submission order.
    #[test]
    fn frames_roundtrip_in_order(payloads in payloads(64, 40)) {
        let path = temp_wal();
        {
            let (wal, recovered) = GroupWal::open(&path, config()).unwrap();
            prop_assert!(recovered.is_empty());
            for p in &payloads {
                wal.append(Bytes::from(p.clone())).unwrap();
            }
        }
        let (_, recovered) = GroupWal::open(&path, config()).unwrap();
        prop_assert_eq!(recovered.len(), payloads.len());
        for (frame, expected) in recovered.iter().zip(&payloads) {
            prop_assert_eq!(frame.as_ref(), expected.as_slice());
        }
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    /// Truncating the log at every byte offset of the last frame (the
    /// worst-case torn group write) recovers exactly the frames whose
    /// records end at or before the cut — never an error, and the
    /// recovered frames are byte-identical to the committed prefix.
    #[test]
    fn truncation_at_every_offset_recovers_committed_prefix(
        payloads in payloads(48, 10),
    ) {
        let path = temp_wal();
        {
            let (wal, _) = GroupWal::open(&path, config()).unwrap();
            for p in &payloads {
                wal.append(Bytes::from(p.clone())).unwrap();
            }
        }
        let bytes = std::fs::read(&path).unwrap();
        // Record boundaries: each frame is 8 bytes of header + payload.
        let mut ends = Vec::with_capacity(payloads.len());
        let mut off = 0usize;
        for p in &payloads {
            off += 8 + p.len();
            ends.push(off);
        }
        prop_assert_eq!(off, bytes.len());

        let last_start = if payloads.len() == 1 { 0 } else { ends[ends.len() - 2] };
        for cut in last_start..=bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let (wal, recovered) = GroupWal::open(&path, config())
                .expect("a clean prefix must never be an error");
            let expected = ends.iter().filter(|&&e| e <= cut).count();
            prop_assert_eq!(
                recovered.len(),
                expected,
                "cut at {} of {}",
                cut,
                bytes.len()
            );
            for (frame, want) in recovered.iter().zip(&payloads) {
                prop_assert_eq!(frame.as_ref(), want.as_slice());
            }
            // The torn bytes were physically truncated: the file now
            // ends exactly at the recovered prefix.
            drop(wal);
            let len = std::fs::metadata(&path).unwrap().len() as usize;
            let boundary = ends.iter().copied().rfind(|&e| e <= cut).unwrap_or(0);
            prop_assert_eq!(len, boundary);
        }
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    /// Appending after a torn-tail recovery keeps the log clean: the new
    /// frame lands at the committed boundary and the next recovery sees
    /// prefix + new frame with no corruption.
    #[test]
    fn append_after_torn_recovery_stays_clean(
        payloads in payloads(48, 8),
        chop in 1usize..8,
    ) {
        let path = temp_wal();
        {
            let (wal, _) = GroupWal::open(&path, config()).unwrap();
            for p in &payloads {
                wal.append(Bytes::from(p.clone())).unwrap();
            }
        }
        let bytes = std::fs::read(&path).unwrap();
        let cut = bytes.len().saturating_sub(chop.min(bytes.len() - 1)).max(1);
        std::fs::write(&path, &bytes[..cut]).unwrap();
        {
            let (wal, _) = GroupWal::open(&path, config()).unwrap();
            wal.append(Bytes::from_static(b"post-recovery")).unwrap();
        }
        let (_, recovered) = GroupWal::open(&path, config())
            .expect("recovery after torn-tail truncation must stay clean");
        prop_assert_eq!(recovered.last().unwrap().as_ref(), b"post-recovery");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    /// Flipping a byte strictly before the committed tail is corruption
    /// and must be reported, not silently truncated away.
    #[test]
    fn mid_log_flip_is_corruption(
        payloads in payloads(48, 8),
        flip_seed in any::<u64>(),
    ) {
        let path = temp_wal();
        {
            let (wal, _) = GroupWal::open(&path, config()).unwrap();
            for p in &payloads {
                wal.append(Bytes::from(p.clone())).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip inside the first record's payload region (offset ≥ 8 so
        // the length header survives and the parser reaches the CRC). A
        // complete record with a bad CRC is corruption even at the tail —
        // only an *incomplete* record is a torn tail.
        let pos = 8 + (flip_seed as usize % payloads[0].len());
        bytes[pos] ^= 0x5A;
        std::fs::write(&path, &bytes).unwrap();
        let result = GroupWal::open(&path, config());
        prop_assert!(
            matches!(result, Err(StoreError::Corrupt(_))),
            "a checksum mismatch must fail recovery, not truncate"
        );
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
