//! Beef-chain walkthrough (paper case study 2): farm → slaughterhouse →
//! distributor → retailer → consumer trace, plus both ownership-transfer
//! mechanisms from the paper's Section 4.4.
//!
//! ```text
//! cargo run --example cattle_tracing
//! ```

use std::sync::Arc;
use std::time::Duration;

use iot_aodb::cattle::types::{Breed, CollarReading, GeoFence, GeoPoint};
use iot_aodb::cattle::{register_all, CattleClient, CattleEnv};
use iot_aodb::core::TxnOutcome;
use iot_aodb::runtime::Runtime;
use iot_aodb::store::MemStore;

const T: Duration = Duration::from_secs(10);

fn main() {
    let rt = Runtime::single(2);
    register_all(&rt, CattleEnv::new(Arc::new(MemStore::new())));
    let client = CattleClient::new(rt.handle());

    // --- Participants.
    client
        .create_farmer("farm/nørgaard", "Nørgaard Agro")
        .unwrap();
    client
        .create_farmer("farm/jensen", "Jensen & Sønner")
        .unwrap();
    client
        .create_slaughterhouse("sh/danish-crown", "Danish Crown Holsted")
        .unwrap();
    client
        .create_distributor("dist/dsv", "DSV Cold Chain")
        .unwrap();
    client
        .create_retailer("retail/brugsen", "SuperBrugsen Ørestad")
        .unwrap();

    // --- A cow with a collar, geo-fenced to its pasture.
    client
        .register_cow("cow/dk-871234", "farm/nørgaard", Breed::HolsteinCross, 0)
        .unwrap();
    client
        .set_fence(
            "cow/dk-871234",
            Some(GeoFence::Circle {
                center: GeoPoint {
                    lat: 55.48,
                    lon: 8.68,
                },
                radius: 0.02,
            }),
        )
        .unwrap();
    let readings: Vec<CollarReading> = (0..48)
        .map(|h| CollarReading {
            ts_ms: h * 3_600_000,
            position: GeoPoint {
                lat: 55.48 + (h as f64 * 0.7).sin() * 0.01,
                lon: 8.68 + (h as f64 * 0.9).cos() * 0.01,
            },
            speed: 0.3,
            temperature: 38.5 + (h % 3) as f64 * 0.1,
        })
        .collect();
    client
        .collar_report("cow/dk-871234", readings)
        .unwrap()
        .wait_for(T)
        .unwrap();
    let info = client
        .cow_info("cow/dk-871234")
        .unwrap()
        .wait_for(T)
        .unwrap();
    println!(
        "cow dk-871234: {} collar fixes, {} fence violations, owner {}",
        info.total_readings, info.fence_violations, info.farmer
    );

    // --- Ownership transfer: atomically via 2PC (cow + both farmers).
    let outcome = client
        .transfer_cow_txn("cow/dk-871234", "farm/nørgaard", "farm/jensen")
        .unwrap()
        .wait_for(T)
        .unwrap();
    assert_eq!(outcome, TxnOutcome::Committed);
    println!(
        "sold to farm/jensen (2PC committed); herds: nørgaard={:?} jensen={:?}",
        client.herd("farm/nørgaard").unwrap().wait_for(T).unwrap(),
        client.herd("farm/jensen").unwrap().wait_for(T).unwrap(),
    );

    // --- Slaughter: the cow becomes meat cuts.
    let cuts = client
        .slaughter("sh/danish-crown", "cow/dk-871234", 1_000_000)
        .unwrap()
        .wait_for(T)
        .unwrap()
        .expect("cow was alive");
    println!("slaughtered → {} cuts: {cuts:?}", cuts.len());

    // --- Distribution: a refrigerated truck moves the cuts to retail.
    let delivery = client
        .create_delivery(
            "dist/dsv",
            cuts.clone(),
            "sh/danish-crown",
            "retail/brugsen",
            "truck-DK-4411",
        )
        .unwrap()
        .wait_for(T)
        .unwrap();
    client.depart(&delivery, 1_050_000).unwrap();
    client.arrive(&delivery, 1_100_000).unwrap();
    rt.quiesce(T);

    // --- Retail: two cuts become a consumer product.
    let product = client
        .create_product(
            "retail/brugsen",
            cuts[..2].to_vec(),
            "Familiepakke oksekød 1 kg",
            1_200_000,
        )
        .unwrap()
        .wait_for(T)
        .unwrap();
    rt.quiesce(T);

    // --- Consumer: scan the product, trace it back to the farm.
    let report = client.trace_product(&product).unwrap();
    println!("\n=== consumer trace of {product} ===");
    println!(
        "product: {} @ {}",
        report.product_info.name, report.product_info.retailer
    );
    println!("farms: {:?}", report.farms());
    println!("slaughterhouses: {:?}", report.slaughterhouses());
    for cut in &report.cuts {
        println!(
            "  {}: {} {:.1}kg — cow {} ({:?}), journey: {}",
            cut.cut,
            cut.info.data.cut_type,
            cut.info.data.weight_kg,
            cut.info.data.cow,
            cut.cow.breed,
            cut.info
                .itinerary
                .iter()
                .map(|leg| format!("{}→{}", leg.from, leg.to))
                .collect::<Vec<_>>()
                .join(", "),
        );
    }

    // The ownership history (farm/nørgaard → farm/jensen) is part of the
    // trace through the cow's event log.
    let events = &report.cuts[0].cow.events;
    println!("cow lifecycle events: {}", events.len());
    for e in events {
        println!("  {:?} by {} at t={}ms", e.kind, e.actor, e.ts_ms);
    }

    rt.shutdown();
    println!("done.");
}
