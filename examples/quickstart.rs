//! Quickstart: the actor-oriented database primitives in one file.
//!
//! Defines a tiny persistent actor, exercises virtual activation,
//! request/response, deactivation-with-persistence, and reactivation.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;
use std::time::Duration;

use iot_aodb::core::{Persisted, WritePolicy};
use iot_aodb::runtime::{Actor, ActorContext, Handler, Message, Runtime};
use iot_aodb::store::{MemStore, StateStore};
use serde::{Deserialize, Serialize};

/// The actor's durable state: a plain serde struct.
#[derive(Default, Serialize, Deserialize)]
struct GreeterState {
    greetings: u64,
}

/// A virtual actor: named, always addressable, activated on demand.
struct Greeter {
    state: Persisted<GreeterState>,
}

impl Actor for Greeter {
    const TYPE_NAME: &'static str = "example.greeter";

    fn on_activate(&mut self, ctx: &mut ActorContext<'_>) {
        // Load persisted state when the runtime (re)activates us.
        let existed = self.state.load_or_default();
        println!(
            "[{}] activated ({})",
            ctx.key(),
            if existed {
                "state restored from store"
            } else {
                "fresh state"
            }
        );
    }

    fn on_deactivate(&mut self, ctx: &mut ActorContext<'_>) {
        // Write-on-deactivate: the Orleans persistence pattern.
        self.state.flush();
        println!("[{}] deactivated, state persisted", ctx.key());
    }
}

struct Greet(String);
impl Message for Greet {
    type Reply = String;
}
impl Handler<Greet> for Greeter {
    fn handle(&mut self, msg: Greet, ctx: &mut ActorContext<'_>) -> String {
        let n = self.state.mutate(|s| {
            s.greetings += 1;
            s.greetings
        });
        format!("Hello {} — greeting #{n} from actor {}", msg.0, ctx.key())
    }
}

struct Hibernate;
impl Message for Hibernate {
    type Reply = ();
}
impl Handler<Hibernate> for Greeter {
    fn handle(&mut self, _msg: Hibernate, ctx: &mut ActorContext<'_>) {
        ctx.deactivate();
    }
}

fn main() {
    // One state store (the "DynamoDB"), one runtime (the "silo cluster").
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = Runtime::single(2);
    {
        let store = Arc::clone(&store);
        rt.register(move |id| Greeter {
            state: Persisted::for_actor(
                Arc::clone(&store),
                Greeter::TYPE_NAME,
                &id.key,
                WritePolicy::OnDeactivate,
            ),
        });
    }

    // Virtual actors need no explicit creation: the first message
    // activates them.
    let greeter = rt.actor_ref::<Greeter>("front-desk");
    println!("{}", greeter.call(Greet("Ada".into())).unwrap());
    println!("{}", greeter.call(Greet("Alan".into())).unwrap());

    // Force a deactivation: state is written to the store, the in-memory
    // activation disappears...
    greeter.call(Hibernate).unwrap();
    rt.quiesce(Duration::from_secs(5));
    assert_eq!(rt.active_actors(), 0);

    // ...and the very same reference keeps working: the next call
    // re-activates the actor, which reloads its state. The counter
    // continues at 3.
    let reply = greeter.call(Greet("Grace".into())).unwrap();
    println!("{reply}");
    assert!(reply.contains("#3"));

    rt.shutdown();
    println!("done.");
}
