//! Multi-silo deployment demo: the paper's scale-out architecture in
//! miniature — four simulated servers, organizations partitioned across
//! them with prefer-local placement, a simulated LAN, and live metrics
//! showing that tenant traffic never leaves its home silo.
//!
//! ```text
//! cargo run --release --example scale_out
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use iot_aodb::runtime::{NetConfig, PreferLocalPlacement, Runtime, SiloId};
use iot_aodb::shm::types::DataPoint;
use iot_aodb::shm::{provision, register_all, ShmClient, ShmEnv, Topology, TopologySpec};
use iot_aodb::store::MemStore;

fn main() {
    const SILOS: usize = 4;
    let rt = Runtime::builder()
        .silos(SILOS, 2)
        .placement(PreferLocalPlacement)
        .network(NetConfig::lan())
        .build();
    register_all(&rt, ShmEnv::paper_default(Arc::new(MemStore::new())));

    // 4 organizations of 50 sensors, one per silo.
    let spec = TopologySpec {
        sensors_per_org: 50,
        ..Default::default()
    };
    let topology = Topology::layout(200, spec);
    let silo_of_org = |org: usize| Some(SiloId((org % SILOS) as u32));
    provision(&rt, &topology, silo_of_org).expect("provisioning");
    println!(
        "{} orgs / {} sensors across {SILOS} silos, prefer-local placement, simulated LAN",
        topology.orgs.len(),
        topology.sensor_count()
    );

    // Each organization ingests through its silo-local gateway.
    let t0 = Instant::now();
    let mut requests = 0u64;
    for round in 0..20u64 {
        for (org_idx, org) in topology.orgs.iter().enumerate() {
            let client = ShmClient::new(rt.handle_on(SiloId(org_idx as u32)));
            for sensor in &org.sensors {
                for channel in &sensor.physical {
                    let points: Vec<DataPoint> = (0..10)
                        .map(|i| DataPoint {
                            ts_ms: round * 1000 + i * 100,
                            value: i as f64,
                        })
                        .collect();
                    client
                        .channel(channel)
                        .tell(iot_aodb::shm::messages::Ingest::new(points))
                        .unwrap();
                    requests += 1;
                }
            }
        }
    }
    assert!(rt.quiesce(Duration::from_secs(30)));
    let elapsed = t0.elapsed();

    let m = rt.metrics();
    println!(
        "\ningested {requests} batches in {elapsed:.2?} ({:.0} batches/s)",
        requests as f64 / elapsed.as_secs_f64()
    );
    println!(
        "messages: {} local, {} remote ({:.2}% crossed silos)",
        m.local_messages,
        m.remote_messages,
        100.0 * m.remote_messages as f64 / (m.local_messages + m.remote_messages).max(1) as f64
    );
    println!("activations: {}", m.activations);

    // A cross-silo query for contrast: ask org-0's live data from a
    // gateway on silo 3 — that one pays the LAN hop.
    let foreign = ShmClient::new(rt.handle_on(SiloId(3)));
    let t0 = Instant::now();
    foreign
        .live_data(&topology.orgs[0].key)
        .unwrap()
        .wait_for(Duration::from_secs(10))
        .unwrap();
    println!("\ncross-silo live-data query: {:?}", t0.elapsed());

    let local = ShmClient::new(rt.handle_on(SiloId(0)));
    let t0 = Instant::now();
    local
        .live_data(&topology.orgs[0].key)
        .unwrap()
        .wait_for(Duration::from_secs(10))
        .unwrap();
    println!("silo-local live-data query:  {:?}", t0.elapsed());

    rt.shutdown();
    println!("done.");
}
