//! Structural Health Monitoring walkthrough (paper case study 1).
//!
//! Provisions a small bridge-monitoring tenant with the paper's exact
//! ratios (2 physical channels per sensor, a virtual sum channel on every
//! 10th sensor, hour→day aggregation), streams sensor data including a
//! threshold breach, and runs every online query the platform supports.
//!
//! ```text
//! cargo run --example shm_platform
//! ```

use std::sync::Arc;
use std::time::Duration;

use iot_aodb::runtime::Runtime;
use iot_aodb::shm::types::{AggregateLevel, DataPoint, Threshold};
use iot_aodb::shm::{provision, register_all, ShmClient, ShmEnv, Topology, TopologySpec};
use iot_aodb::store::MemStore;

fn main() {
    let rt = Runtime::single(2);
    register_all(&rt, ShmEnv::paper_default(Arc::new(MemStore::new())));

    // A 20-sensor bridge: 1 organization, 40 physical + 2 virtual channels,
    // extension thresholds on every channel.
    let spec = TopologySpec {
        threshold: Threshold {
            high: Some(80.0),
            ..Default::default()
        },
        ..Default::default()
    };
    let topology = Topology::layout(20, spec);
    provision(&rt, &topology, |_| None).expect("provisioning");
    let org = topology.orgs[0].key.clone();
    println!(
        "provisioned {} sensors / {} physical + {} virtual channels under {org}",
        topology.sensor_count(),
        topology.physical_channel_count(),
        topology.virtual_channel_count()
    );

    let client = ShmClient::new(rt.handle());

    // --- Ingest: one hour of 10 Hz data on the first sensor, including a
    // spike that crosses the 80.0 threshold.
    let sensor = &topology.orgs[0].sensors[0];
    for minute in 0..60u64 {
        for (c, channel) in sensor.physical.iter().enumerate() {
            let points: Vec<DataPoint> = (0..10)
                .map(|i| DataPoint {
                    ts_ms: minute * 60_000 + i * 100,
                    value: if minute == 30 && c == 0 {
                        95.0 // the spike
                    } else {
                        20.0 + (minute as f64) * 0.1 + i as f64 * 0.01
                    },
                })
                .collect();
            client.ingest(channel, points).unwrap().wait().unwrap();
        }
    }
    rt.quiesce(Duration::from_secs(10));

    // --- FR 4: accumulated change.
    let stats = client
        .channel_stats(&sensor.physical[0])
        .unwrap()
        .wait()
        .unwrap();
    println!(
        "\nchannel {}: {} points, accumulated change {:.1}, net change {:.2}",
        sensor.physical[0], stats.total_points, stats.accumulated_change, stats.net_change
    );

    // --- FR 5: threshold alerts.
    let alerts = client.recent_alerts(&org, 5).unwrap().wait().unwrap();
    println!("alerts raised: {}", alerts.len());
    for a in &alerts {
        println!(
            "  [{:?}] {} = {:.1} at t={}ms",
            a.kind, a.channel, a.value, a.ts_ms
        );
    }

    // --- FR 6: statistical aggregates for plots.
    let buckets = client
        .aggregates(&sensor.physical[0], AggregateLevel::Hour, 0, 3_600_000)
        .unwrap()
        .wait()
        .unwrap();
    println!("\nhourly aggregate buckets: {}", buckets.len());
    for (start, agg) in &buckets {
        println!(
            "  hour@{start}: n={} mean={:.2} min={:.1} max={:.1}",
            agg.count,
            agg.mean().unwrap_or(0.0),
            agg.min,
            agg.max
        );
    }

    // --- FR 6/7: raw data exploration.
    let raw = client
        .raw_range(&sensor.physical[0], 1_800_000, 1_805_000, 0)
        .unwrap()
        .wait()
        .unwrap();
    println!("\nraw points in [1800s, 1805s]: {}", raw.len());

    // --- FR 7: live view of the whole structure (fan-out over all 42
    // channels, including the derived virtual ones).
    let report = client
        .live_data(&org)
        .unwrap()
        .wait_for(Duration::from_secs(10))
        .unwrap();
    let live = report.channels.iter().filter(|(_, p)| p.is_some()).count();
    println!(
        "live data: {live}/{} channels reporting",
        report.channels.len()
    );

    // Virtual channel: sum of its sensor's two physical channels.
    let vstats = client
        .virtual_channel_stats(sensor.virtual_channel.as_ref().unwrap())
        .unwrap()
        .wait()
        .unwrap();
    println!(
        "virtual channel latest = {:.2} (sum of both physical streams)",
        vstats.last.map(|p| p.value).unwrap_or(0.0)
    );

    rt.shutdown();
    println!("done.");
}
