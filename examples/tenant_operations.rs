//! Operations walkthrough: the production-facing features around the core
//! platform — authenticated tenant sessions (NFR 7), the burst-absorbing
//! ingest gateway (§6.1), durable reminders driving periodic flushes, and
//! the analytical warehouse export (§5's third architecture component).
//!
//! ```text
//! cargo run --example tenant_operations
//! ```

use std::sync::Arc;
use std::time::Duration;

use iot_aodb::core::{register_reminder, ReminderTable};
use iot_aodb::runtime::Runtime;
use iot_aodb::shm::auth::{AccessLevel, GrantAccess, SecureShmClient};
use iot_aodb::shm::gateway::{ConfigureGateway, GatewayConfig, GatewayIngest, GatewayStats};
use iot_aodb::shm::types::{AggregateLevel, DataPoint};
use iot_aodb::shm::warehouse::{WarehouseExporter, WarehouseReader};
use iot_aodb::shm::{
    provision, register_all, IngestGateway, ShmClient, ShmEnv, TenantGuard, Topology, TopologySpec,
};
use iot_aodb::store::{MemStore, StateStore};
use serde_json::json;

fn main() {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let rt = Runtime::single(2);
    register_all(&rt, ShmEnv::paper_default(Arc::clone(&store)));
    ReminderTable::register(&rt, Arc::clone(&store));

    let topology = Topology::layout(10, TopologySpec::default());
    provision(&rt, &topology, |_| None).expect("provisioning");
    let org = topology.orgs[0].key.clone();

    // --- Access control: provision a user, open an authenticated session.
    rt.actor_ref::<TenantGuard>(org.as_str())
        .call(GrantAccess {
            user: "inge".into(),
            secret: "s3cret".into(),
            level: AccessLevel::Operator,
        })
        .unwrap();
    let session =
        SecureShmClient::login(ShmClient::new(rt.handle()), &org, "inge", "s3cret").unwrap();
    println!(
        "session opened for inge@{org} (token {:?})",
        session.token()
    );
    assert!(
        SecureShmClient::login(ShmClient::new(rt.handle()), &org, "inge", "wrong").is_err(),
        "bad credentials must fail"
    );

    // --- Ingest through the burst gateway: devices send tiny packets; the
    // platform sees coalesced batches. A durable reminder flushes
    // stragglers every 50 ms.
    let gateway = rt.actor_ref::<IngestGateway>(format!("gw:{org}"));
    gateway
        .call(ConfigureGateway(GatewayConfig {
            flush_batch: 10,
            capacity_points: 50_000,
        }))
        .unwrap();
    let _flush_timer = register_reminder::<IngestGateway>(
        &rt,
        "ops-reminders",
        "gateway-flush",
        &format!("gw:{org}"),
        Duration::from_millis(50),
        json!(null),
    )
    .unwrap();
    const HOUR: u64 = 3_600_000;
    for (c_idx, channel) in topology.physical_channels().enumerate() {
        for burst in 0..12u64 {
            // 3-point packets: below any sane batch size.
            let points: Vec<DataPoint> = (0..3)
                .map(|i| DataPoint {
                    ts_ms: burst * 600_000 + i * 1000,
                    value: c_idx as f64 + burst as f64 * 0.1,
                })
                .collect();
            gateway
                .call(GatewayIngest {
                    channel: channel.to_string(),
                    points,
                })
                .unwrap();
        }
    }
    // Let the periodic flush drain the tails.
    std::thread::sleep(Duration::from_millis(150));
    rt.quiesce(Duration::from_secs(10));
    let gw_stats = gateway.call(GatewayStats).unwrap();
    println!(
        "gateway: {} packets accepted → {} channel batches ({} rejected)",
        gw_stats.accepted, gw_stats.forwarded_batches, gw_stats.rejected
    );

    // --- The authenticated session explores the data.
    let live = session.live_data().unwrap();
    let reporting = live.channels.iter().filter(|(_, p)| p.is_some()).count();
    println!(
        "live data: {reporting}/{} channels reporting",
        live.channels.len()
    );

    // --- Warehouse export + offline analytics.
    let client = ShmClient::new(rt.handle());
    let exporter = WarehouseExporter::new(Arc::clone(&store));
    let summary = exporter
        .export(&client, &topology, AggregateLevel::Hour, 0, 3 * HOUR)
        .unwrap();
    println!(
        "warehouse: {} fact rows, {} dimension rows",
        summary.facts, summary.dims
    );

    let reader = WarehouseReader::new(Arc::clone(&store));
    let by_channel = reader.rollup_by_channel(&org, 0, 3 * HOUR).unwrap();
    let busiest = by_channel
        .iter()
        .max_by_key(|(_, agg)| agg.count)
        .expect("facts exist");
    println!(
        "busiest channel: {} ({} samples, mean {:.2})",
        busiest.0,
        busiest.1.count,
        busiest.1.mean().unwrap_or(0.0)
    );

    session.logout().unwrap();
    rt.shutdown();
    println!("done.");
}
