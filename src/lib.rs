//! # iot-aodb — actor-oriented databases for IoT data platforms
//!
//! A from-scratch Rust reproduction of *"Modeling and Building IoT Data
//! Platforms with Actor-Oriented Databases"* (EDBT 2019): an Orleans-style
//! virtual-actor runtime, a DynamoDB-style persistent state store, the
//! actor-oriented database layer (persistence, secondary indexes,
//! multi-actor transactions, workflows, versioned objects, multi-actor
//! queries), and the paper's two case-study platforms.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! name for applications that want the whole stack.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`runtime`] | `aodb-runtime` | virtual actors, silos, placement, simulated network, metrics |
//! | [`store`] | `aodb-store` | `MemStore`, `LogStore` (WAL + snapshots), provisioned throughput |
//! | [`core`] | `aodb-core` | persistence, indexes, 2PC transactions, workflows, versioned objects |
//! | [`shm`] | `aodb-shm` | the Structural Health Monitoring platform (paper Figure 4) |
//! | [`cattle`] | `aodb-cattle` | the beef tracking & tracing platform (paper Figures 3 & 5) |
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use iot_aodb::runtime::Runtime;
//! use iot_aodb::store::MemStore;
//! use iot_aodb::shm::{register_all, provision, ShmClient, ShmEnv, Topology, TopologySpec};
//! use iot_aodb::shm::types::DataPoint;
//!
//! let rt = Runtime::single(2);
//! register_all(&rt, ShmEnv::paper_default(Arc::new(MemStore::new())));
//! let topology = Topology::layout(10, TopologySpec::default());
//! provision(&rt, &topology, |_| None).unwrap();
//!
//! let client = ShmClient::new(rt.handle());
//! let channel = topology.physical_channels().next().unwrap();
//! let accepted = client
//!     .ingest(channel, vec![DataPoint { ts_ms: 0, value: 0.42 }])
//!     .unwrap()
//!     .wait()
//!     .unwrap();
//! assert_eq!(accepted, 1);
//! rt.shutdown();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use aodb_cattle as cattle;
pub use aodb_core as core;
pub use aodb_runtime as runtime;
pub use aodb_shm as shm;
pub use aodb_store as store;
