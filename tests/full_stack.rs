//! Full-stack integration: both case-study platforms co-hosted on one
//! multi-silo runtime, backed by the durable log-structured store, with a
//! process-restart durability check — the complete architecture of the
//! paper's Section 5 (actor runtime + cloud storage system) end to end.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use iot_aodb::cattle;
use iot_aodb::cattle::types::Breed;
use iot_aodb::cattle::{CattleClient, CattleEnv};
use iot_aodb::core::{IndexClient, IndexMode, IndexShard, KeyRegistry, RegisterKey};
use iot_aodb::runtime::{NetConfig, PreferLocalPlacement, Runtime, SiloId};
use iot_aodb::shm;
use iot_aodb::shm::types::DataPoint;
use iot_aodb::shm::{ShmClient, ShmEnv, Topology, TopologySpec};
use iot_aodb::store::{Key, LogStore, LogStoreConfig, StateStore};

const T: Duration = Duration::from_secs(15);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iot-aodb-fullstack-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_runtime(store: &Arc<dyn StateStore>) -> Runtime {
    let rt = Runtime::builder()
        .silos(2, 2)
        .placement(PreferLocalPlacement)
        .network(NetConfig::lan())
        .build();
    shm::register_all(&rt, ShmEnv::paper_default(Arc::clone(store)));
    cattle::register_all(&rt, CattleEnv::new(Arc::clone(store)));
    IndexShard::register(&rt, Arc::clone(store));
    KeyRegistry::register(&rt, Arc::clone(store));
    rt
}

#[test]
fn both_platforms_share_one_runtime_and_survive_restart() {
    let dir = temp_dir("shared");
    let topology = Topology::layout(20, TopologySpec::default());
    let channel_key;
    let product;

    // ---- Phase 1: populate both platforms, then shut down.
    {
        let store: Arc<dyn StateStore> =
            Arc::new(LogStore::open(LogStoreConfig::new(&dir)).unwrap());
        let rt = build_runtime(&store);
        shm::provision(&rt, &topology, |org| Some(SiloId((org % 2) as u32))).unwrap();

        // SHM traffic.
        let shm_client = ShmClient::new(rt.handle_on(SiloId(0)));
        channel_key = topology.physical_channels().next().unwrap().to_string();
        shm_client
            .ingest(
                &channel_key,
                (0..100)
                    .map(|i| DataPoint {
                        ts_ms: i * 100,
                        value: i as f64,
                    })
                    .collect(),
            )
            .unwrap()
            .wait_for(T)
            .unwrap();

        // Cattle traffic on the same runtime and the same store.
        let cc = CattleClient::new(rt.handle());
        cc.create_farmer("fs/farm", "F").unwrap();
        cc.register_cow("fs/cow", "fs/farm", Breed::Angus, 0)
            .unwrap();
        cc.create_slaughterhouse("fs/house", "H").unwrap();
        cc.create_retailer("fs/retail", "R").unwrap();
        let cuts = cc
            .slaughter("fs/house", "fs/cow", 10)
            .unwrap()
            .wait_for(T)
            .unwrap()
            .unwrap();
        product = cc
            .create_product("fs/retail", cuts, "pack", 20)
            .unwrap()
            .wait_for(T)
            .unwrap();

        // An index over cattle breed, maintained synchronously.
        let idx = IndexClient::new(rt.handle(), "breed", 4);
        idx.update("fs/cow", None, Some("angus"), IndexMode::Synchronous)
            .unwrap()
            .wait_for(T)
            .unwrap();
        let reg = rt.actor_ref::<KeyRegistry>("all-cows");
        reg.call(RegisterKey("fs/cow".into())).unwrap();

        assert!(rt.quiesce(T));
        rt.shutdown(); // flushes every activation to the log store
    }

    // ---- Phase 2: cold start from disk; everything must be there.
    {
        let store: Arc<dyn StateStore> =
            Arc::new(LogStore::open(LogStoreConfig::new(&dir)).unwrap());
        let rt = build_runtime(&store);

        let shm_client = ShmClient::new(rt.handle());
        let stats = shm_client
            .channel_stats(&channel_key)
            .unwrap()
            .wait_for(T)
            .unwrap();
        assert_eq!(
            stats.total_points, 100,
            "channel window must survive restart"
        );

        let cc = CattleClient::new(rt.handle());
        let report = cc.trace_product(&product).unwrap();
        assert_eq!(report.farms(), vec!["fs/farm"]);
        assert_eq!(report.cuts.len(), cattle::CUT_TYPES.len());

        let idx = IndexClient::new(rt.handle(), "breed", 4);
        assert_eq!(
            idx.lookup("angus").unwrap().wait_for(T).unwrap(),
            vec!["fs/cow"]
        );
        let reg = rt.actor_ref::<KeyRegistry>("all-cows");
        assert_eq!(reg.call(iot_aodb::core::ListKeys).unwrap(), vec!["fs/cow"]);

        rt.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tenants_are_isolated_in_storage_namespaces() {
    // Multi-tenancy (non-functional requirement 2/7): the storage keys of
    // different actor types and instances live in disjoint namespaces, so
    // a tenant-scoped scan never observes another tenant's state.
    let dir = temp_dir("tenancy");
    let store = Arc::new(LogStore::open(LogStoreConfig::new(&dir)).unwrap());
    {
        let dyn_store: Arc<dyn StateStore> = Arc::clone(&store) as Arc<dyn StateStore>;
        let rt = build_runtime(&dyn_store);
        let topology = Topology::layout(200, TopologySpec::default()); // 2 orgs
        shm::provision(&rt, &topology, |_| None).unwrap();
        rt.shutdown();
    }
    // Channel state blobs are partitioned by actor type; each org's keys
    // carry its own prefix inside the sort component.
    let all = store
        .scan_prefix(&Key::namespace_prefix("actor-state"))
        .unwrap();
    assert!(!all.is_empty());
    let org0: Vec<_> = all
        .iter()
        .filter(|(k, _)| k.to_string().contains("org-0/"))
        .collect();
    let org1: Vec<_> = all
        .iter()
        .filter(|(k, _)| k.to_string().contains("org-1/"))
        .collect();
    assert!(!org0.is_empty() && !org1.is_empty());
    assert!(org0.iter().all(|(k, _)| !k.to_string().contains("org-1/")));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shm_and_cattle_do_not_interfere_under_concurrent_load() {
    let store: Arc<dyn StateStore> = Arc::new(iot_aodb::store::MemStore::new());
    let rt = build_runtime(&store);
    let topology = Topology::layout(10, TopologySpec::default());
    shm::provision(&rt, &topology, |_| None).unwrap();
    let cc = CattleClient::new(rt.handle());
    cc.create_farmer("cl/farm", "F").unwrap();
    for i in 0..20 {
        cc.register_cow(&format!("cl/cow-{i}"), "cl/farm", Breed::Nelore, 0)
            .unwrap();
    }

    let shm_client = ShmClient::new(rt.handle());
    let channels: Vec<String> = topology.physical_channels().map(str::to_string).collect();
    let shm_thread = {
        let client = shm_client.clone();
        let channels = channels.clone();
        std::thread::spawn(move || {
            for round in 0..50u64 {
                for c in &channels {
                    client
                        .ingest(
                            c,
                            vec![DataPoint {
                                ts_ms: round,
                                value: round as f64,
                            }],
                        )
                        .unwrap();
                }
            }
        })
    };
    let cattle_thread = {
        let cc = cc.clone();
        std::thread::spawn(move || {
            for round in 0..50u64 {
                for i in 0..20 {
                    cc.collar_report(
                        &format!("cl/cow-{i}"),
                        vec![iot_aodb::cattle::types::CollarReading {
                            ts_ms: round,
                            position: Default::default(),
                            speed: 1.0,
                            temperature: 38.0,
                        }],
                    )
                    .unwrap();
                }
            }
        })
    };
    shm_thread.join().unwrap();
    cattle_thread.join().unwrap();
    assert!(rt.quiesce(Duration::from_secs(30)));

    for c in channels.iter().take(3) {
        let stats = shm_client.channel_stats(c).unwrap().wait_for(T).unwrap();
        assert_eq!(stats.total_points, 50);
    }
    for i in 0..3 {
        let info = cc
            .cow_info(&format!("cl/cow-{i}"))
            .unwrap()
            .wait_for(T)
            .unwrap();
        assert_eq!(info.total_readings, 50);
    }
    rt.shutdown();
}
