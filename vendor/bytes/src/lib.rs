//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, reference-counted byte buffer whose
//! clones share one allocation. Only the surface the workspace uses is
//! implemented (`From` conversions, `Deref<Target = [u8]>`, equality).

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable slice of bytes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Wraps a static byte slice (no copy in spirit; one Arc allocation
    /// here, which is fine for the non-hot paths that use it).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.0[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0[..] == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_eq() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a, [1u8, 2, 3][..]);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![9; 128]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn debug_escapes() {
        assert_eq!(format!("{:?}", Bytes::from("a\"b")), "b\"a\\x22b\"");
    }
}
