//! Offline stand-in for `criterion`.
//!
//! Bench sources compile and run unchanged: `criterion_group!` /
//! `criterion_main!`, benchmark groups, `Throughput`, `b.iter`, and
//! `b.iter_batched` all exist with their real signatures. Instead of
//! criterion's statistical machinery, each benchmark is timed with a
//! fixed warm-up and a fixed measured batch, and a single mean-per-
//! iteration line is printed. Under `cargo test` (which runs
//! `harness = false` bench binaries) the `--test` flag switches to a
//! one-iteration smoke run so the suite stays fast.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], like `criterion::black_box`.
pub use std::hint::black_box;

const SMOKE_ITERS: u64 = 1;
const WARM_ITERS: u64 = 20;
const MEASURE_ITERS: u64 = 200;

fn smoke_mode() -> bool {
    // `cargo test` invokes harness=false bench binaries with `--test`;
    // `cargo bench` passes `--bench`.
    std::env::args().any(|a| a == "--test")
}

/// Entry point type: configures and runs benchmark groups.
#[derive(Clone, Debug)]
pub struct Criterion {
    _measurement_time: Duration,
    _warm_up_time: Duration,
    _sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            _measurement_time: Duration::from_secs(3),
            _warm_up_time: Duration::from_secs(1),
            _sample_size: 100,
        }
    }
}

impl Criterion {
    /// Sets the target measurement time (accepted, not enforced).
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self._measurement_time = t;
        self
    }

    /// Sets the warm-up time (accepted, not enforced).
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self._warm_up_time = t;
        self
    }

    /// Sets the sample count (accepted, not enforced).
    pub fn sample_size(mut self, n: usize) -> Self {
        self._sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// Units processed per iteration, for derived rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: if smoke_mode() {
                SMOKE_ITERS
            } else {
                MEASURE_ITERS
            },
            elapsed: Duration::ZERO,
            iters_run: 0,
        };
        f(&mut bencher);
        report(&self.name, id, &bencher, self.throughput);
        self
    }

    /// Ends the group (report flushing happens per-benchmark here).
    pub fn finish(self) {}
}

/// Batch-size hint for [`Bencher::iter_batched`]; accepted for
/// signature compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    iters_run: u64,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !smoke_mode() {
            for _ in 0..WARM_ITERS {
                black_box(routine());
            }
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters_run += self.iters;
    }

    /// Times `routine` over fresh inputs built by `setup`, excluding
    /// setup time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if !smoke_mode() {
            for _ in 0..WARM_ITERS.min(5) {
                let input = setup();
                black_box(routine(input));
            }
        }
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters_run += self.iters;
    }
}

fn report(group: &str, id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    if bencher.iters_run == 0 {
        println!("{group}/{id}: no iterations run");
        return;
    }
    let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters_run as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 * 1e9 / per_iter)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 * 1e9 / per_iter / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("{group}/{id}: {:.1} ns/iter{rate}", per_iter);
}

/// Declares a benchmark group, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident;
     config = $config:expr;
     targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default().sample_size(10);
        let mut group = c.benchmark_group("t");
        group.throughput(Throughput::Elements(1));
        let mut count = 0u64;
        group.bench_function("count", |b| b.iter(|| count += 1));
        assert!(count > 0);
        group.finish();
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        let mut seen = Vec::new();
        let mut n = 0u64;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    n += 1;
                    n
                },
                |input| seen.push(input),
                BatchSize::SmallInput,
            )
        });
        assert!(!seen.is_empty());
        let mut sorted = seen.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), seen.len(), "inputs were reused");
        group.finish();
    }
}
