//! MPMC channels: `unbounded`, `bounded`, cloneable senders *and*
//! receivers, blocking `recv`, `recv_timeout`, and non-blocking
//! `try_recv` — the subset of `crossbeam::channel` the runtime uses.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[cfg(feature = "model")]
use modelcheck::atomic::AtomicUsize;
use parking_lot::{Condvar, Mutex};
#[cfg(not(feature = "model"))]
use std::sync::atomic::AtomicUsize;

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    /// Signalled when an item arrives or the last sender disconnects.
    recv_ready: Condvar,
    /// Signalled when space frees up or the last receiver disconnects.
    send_ready: Condvar,
    capacity: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn disconnected_for_recv(&self) -> bool {
        self.senders.load(Ordering::Acquire) == 0
    }

    fn disconnected_for_send(&self) -> bool {
        self.receivers.load(Ordering::Acquire) == 0
    }
}

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent message is handed back.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The wait deadline elapsed with the channel still empty.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty, disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("channel empty"),
            TryRecvError::Disconnected => f.write_str("channel empty and disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// The sending half of a channel. Clone freely; the channel disconnects
/// for receivers when the last clone drops.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: wake all blocked receivers so they observe the
            // disconnect.
            let _guard = self.shared.queue.lock();
            self.shared.recv_ready.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Sends `msg`, blocking while a bounded channel is full. Fails only
    /// when every receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut queue = self.shared.queue.lock();
        loop {
            if self.shared.disconnected_for_send() {
                return Err(SendError(msg));
            }
            match self.shared.capacity {
                Some(cap) if queue.len() >= cap => {
                    queue = self.shared.send_ready.wait(queue);
                }
                _ => break,
            }
        }
        queue.push_back(msg);
        drop(queue);
        self.shared.recv_ready.notify_one();
        Ok(())
    }

    /// Queued message count.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The receiving half of a channel. Clone freely (MPMC); the channel
/// disconnects for senders when the last clone drops.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.shared.queue.lock();
            self.shared.send_ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock();
        loop {
            if let Some(msg) = queue.pop_front() {
                self.shared.send_ready.notify_one();
                return Ok(msg);
            }
            if self.shared.disconnected_for_recv() {
                return Err(RecvError);
            }
            queue = self.shared.recv_ready.wait(queue);
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.queue.lock();
        loop {
            if let Some(msg) = queue.pop_front() {
                self.shared.send_ready.notify_one();
                return Ok(msg);
            }
            if self.shared.disconnected_for_recv() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (q, timed_out) = self.shared.recv_ready.wait_for(queue, deadline - now);
            queue = q;
            if timed_out && queue.is_empty() {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.queue.lock();
        if let Some(msg) = queue.pop_front() {
            self.shared.send_ready.notify_one();
            return Ok(msg);
        }
        if self.shared.disconnected_for_recv() {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Queued message count.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        recv_ready: Condvar::new(),
        send_ready: Condvar::new(),
        capacity,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Creates a channel of unlimited capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Creates a channel holding at most `cap` queued messages; `send`
/// blocks while full. A zero capacity is rounded up to one (this stub
/// does not implement rendezvous channels, and the workspace never
/// requests them).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn multi_consumer_work_sharing() {
        let (tx, rx) = unbounded();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = 0usize;
                    while rx.recv().is_ok() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2).map_err(|_| ()));
        thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap().unwrap();
    }
}
