//! Work-stealing deques: `Worker`, `Stealer`, `Injector`, and the
//! `Steal` result enum — the subset of `crossbeam-deque` the silo
//! scheduler uses.
//!
//! The real crate implements the Chase–Lev lock-free deque; this offline
//! stand-in uses a `Mutex<VecDeque>` per queue, which keeps the exact same
//! API and batching semantics (LIFO owner pops, FIFO steals, steal-half
//! batches) at the cost of raw throughput under contention. Two deliberate
//! relaxations, both documented where they matter:
//!
//! * [`Worker`] is `Sync` here (the real one is `Send + !Sync`). The silo
//!   stores all workers' deques in one shared `Vec` so producers can fast-
//!   path push onto their own deque via a thread-local index; the mutex
//!   makes that safe.
//! * [`Steal::Retry`] is never produced: steals block briefly on the
//!   victim's mutex instead of failing on contention, which avoids
//!   yield-spin loops in callers. Callers must still handle `Retry` for
//!   API parity with the real crate.
//!
//! Lock ordering: `steal_batch_and_pop` moves the batch out of the victim
//! under the victim's lock, releases it, and only then locks the
//! destination — no call path ever holds two deque locks at once, so
//! cross-stealing workers cannot deadlock.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

/// The result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The victim queue was empty.
    Empty,
    /// A task was stolen.
    Success(T),
    /// The steal lost a race and should be retried. Kept for API parity
    /// with the real crate; this mutex-based stub never produces it
    /// (steals block briefly instead), but callers must still handle it.
    Retry,
}

impl<T> Steal<T> {
    /// True when the steal produced a task.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// True when the victim was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// True when the steal should be retried.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    /// Returns the stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(task) => Some(task),
            _ => None,
        }
    }
}

/// A worker-owned deque. The owner pushes and pops at the back (LIFO —
/// fresh work stays cache-hot); thieves steal from the front (FIFO —
/// the oldest, coldest tasks migrate).
pub struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Default for Worker<T> {
    fn default() -> Self {
        Self::new_lifo()
    }
}

impl<T> Worker<T> {
    /// Creates a new LIFO worker deque.
    pub fn new_lifo() -> Self {
        Worker {
            inner: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Creates a [`Stealer`] handle for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Pushes a task onto the owner end.
    pub fn push(&self, task: T) {
        self.inner.lock().push_back(task);
    }

    /// Pops the most recently pushed task (LIFO).
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().pop_back()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no task is queued.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// A handle for stealing tasks from another worker's deque.
pub struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Stealer<T> {
    /// Steals the oldest task from the victim (FIFO end).
    ///
    /// Unlike the lock-free original this blocks on the victim's mutex
    /// (briefly — every critical section is O(batch) at worst), which is
    /// cheaper than returning [`Steal::Retry`] and making callers
    /// yield-spin. `Retry` is kept in the API but never produced.
    pub fn steal(&self) -> Steal<T> {
        match self.inner.lock().pop_front() {
            Some(task) => Steal::Success(task),
            None => Steal::Empty,
        }
    }

    /// Steals up to half the victim's tasks into `dest`, returning the
    /// first of them. The batch is moved out under the victim's lock,
    /// which is released before `dest` is locked (see module docs on
    /// lock ordering).
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let batch: Vec<T> = {
            let mut queue = self.inner.lock();
            if queue.is_empty() {
                return Steal::Empty;
            }
            let take = queue.len().div_ceil(2);
            queue.drain(..take).collect()
        };
        let mut iter = batch.into_iter();
        let first = iter.next().expect("non-empty steal batch");
        let mut dest_queue = dest.inner.lock();
        dest_queue.extend(iter);
        Steal::Success(first)
    }

    /// Number of queued tasks in the victim.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when the victim has no queued task.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// A shared FIFO queue for tasks injected from outside the worker pool
/// (client dispatches, cross-silo sends, timer callbacks).
pub struct Injector<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Injector {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Pushes a task onto the back of the queue.
    pub fn push(&self, task: T) {
        self.inner.lock().push_back(task);
    }

    /// Pops the oldest task (FIFO). Blocks on the mutex rather than
    /// producing [`Steal::Retry`] (see [`Stealer::steal`]).
    pub fn steal(&self) -> Steal<T> {
        match self.inner.lock().pop_front() {
            Some(task) => Steal::Success(task),
            None => Steal::Empty,
        }
    }

    /// Moves up to half the queued tasks into `dest` and returns the
    /// first. Same two-phase locking as [`Stealer::steal_batch_and_pop`].
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let batch: Vec<T> = {
            let mut queue = self.inner.lock();
            if queue.is_empty() {
                return Steal::Empty;
            }
            let take = queue.len().div_ceil(2);
            queue.drain(..take).collect()
        };
        let mut iter = batch.into_iter();
        let first = iter.next().expect("non-empty steal batch");
        let mut dest_queue = dest.inner.lock();
        dest_queue.extend(iter);
        Steal::Success(first)
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no task is queued.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn owner_pops_lifo_thieves_steal_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn batch_steal_takes_half() {
        let victim = Worker::new_lifo();
        let dest = Worker::new_lifo();
        for i in 0..8 {
            victim.push(i);
        }
        let got = victim.stealer().steal_batch_and_pop(&dest);
        assert_eq!(got, Steal::Success(0));
        assert_eq!(dest.len(), 3);
        assert_eq!(victim.len(), 4);
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push("a");
        inj.push("b");
        assert_eq!(inj.steal(), Steal::Success("a"));
        let dest = Worker::new_lifo();
        inj.push("c");
        assert_eq!(inj.steal_batch_and_pop(&dest), Steal::Success("b"));
        assert_eq!(inj.len() + dest.len(), 1);
    }

    #[test]
    fn concurrent_stealing_loses_nothing() {
        let inj = Arc::new(Injector::new());
        const TASKS: usize = 10_000;
        for i in 0..TASKS {
            inj.push(i);
        }
        let seen = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let inj = Arc::clone(&inj);
                let seen = Arc::clone(&seen);
                thread::spawn(move || {
                    let local = Worker::new_lifo();
                    loop {
                        let task = local.pop().or_else(|| loop {
                            match inj.steal_batch_and_pop(&local) {
                                Steal::Success(t) => break Some(t),
                                Steal::Empty => break None,
                                Steal::Retry => thread::yield_now(),
                            }
                        });
                        match task {
                            Some(_) => {
                                seen.fetch_add(1, Ordering::Relaxed);
                            }
                            None => break,
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(seen.load(Ordering::Relaxed), TASKS);
    }
}
