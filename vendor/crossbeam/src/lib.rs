//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace uses only `crossbeam::channel` (multi-producer
//! multi-consumer channels with timeouts), so that is what this stub
//! provides: a straightforward `Mutex<VecDeque>` + `Condvar` queue. It is
//! slower than real crossbeam under heavy contention but semantically
//! equivalent for the runtime's run queues and promise rendezvous.

#![warn(missing_docs)]

pub mod channel;
