//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace uses `crossbeam::channel` (multi-producer multi-consumer
//! channels with timeouts, used for promise rendezvous and the clock) and
//! `crossbeam::deque` (work-stealing deques backing the silo scheduler).
//! Both are straightforward `Mutex<VecDeque>` implementations — slower
//! than real crossbeam under heavy contention but semantically equivalent
//! for the runtime's queues.

#![warn(missing_docs)]

pub mod channel;
pub mod deque;
