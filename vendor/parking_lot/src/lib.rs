//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `parking_lot` it uses: non-poisoning
//! [`Mutex`] and [`RwLock`] with the `lock()` / `read()` / `write()`
//! API (no `Result`, poison is swallowed by design — a panicked turn
//! must not wedge every other accessor of shared runtime structures).
//!
//! With the `model` feature the whole API is swapped for the
//! schedule-instrumented primitives from `crates/modelcheck`, which fall
//! back transparently to the plain behavior on threads that are not part
//! of a model execution. This is how the model checker hooks every lock,
//! condvar, and rwlock in the workspace without touching call sites.

#![warn(missing_docs)]

#[cfg(not(feature = "model"))]
mod plain;

#[cfg(not(feature = "model"))]
pub use plain::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(feature = "model")]
pub use modelcheck::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
