//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `parking_lot` it uses: non-poisoning
//! [`Mutex`] and [`RwLock`] with the `lock()` / `read()` / `write()`
//! API (no `Result`, poison is swallowed by design — a panicked turn
//! must not wedge every other accessor of shared runtime structures).

#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1; // must not deadlock or panic
        assert_eq!(*m.lock(), 1);
    }
}
