use std::sync::{self};
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable for use with [`Mutex`].
///
/// Deviates from the real `parking_lot` in one way: `wait` consumes and
/// returns the guard (`std::sync::Condvar` style) instead of taking
/// `&mut`, because the `&mut` form cannot be written safely on top of
/// `std` guards. Like the rest of the shim it never poisons.
#[derive(Default, Debug)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Atomically releases `guard` and blocks until notified; reacquires
    /// the lock before returning. Spurious wakeups are possible — always
    /// wait in a predicate loop.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Like [`Condvar::wait`] with a timeout; the boolean is `true` when
    /// the wait timed out rather than being notified.
    pub fn wait_for<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match self.0.wait_timeout(guard, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r.timed_out())
            }
        }
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_notifies_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_one();
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let (_g, timed_out) = cv.wait_for(m.lock(), std::time::Duration::from_millis(5));
        assert!(timed_out);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1; // must not deadlock or panic
        assert_eq!(*m.lock(), 1);
    }
}
