//! Offline stand-in for `proptest`.
//!
//! Same testing model — strategies generate random inputs, `proptest!`
//! wraps each property in a case loop — but with two deliberate
//! simplifications: the RNG is deterministic (seeded from the test
//! name, so failures reproduce exactly on re-run with no persistence
//! file) and there is no shrinking (a failing case reports its inputs
//! as generated). The strategy surface covers what this workspace uses:
//! integer/float ranges, `any::<T>()`, regex-subset string patterns,
//! tuples, `prop_map`, `prop_oneof!`, `collection::vec`, and
//! `option::of`.

#![warn(missing_docs)]

pub mod test_runner {
    //! Case-loop configuration and the deterministic RNG.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the offline suite
            // quick while still exercising the properties broadly.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic xorshift64* generator, seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from a test name (stable across runs).
        pub fn for_test(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: seed | 1 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Bernoulli draw with probability `p` of `true`.
        pub fn chance(&mut self, p: f64) -> bool {
            self.unit_f64() < p
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value from the strategy.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                sampler: std::rc::Rc::new(move |rng| self.sample(rng)),
            }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    #[derive(Clone)]
    pub struct BoxedStrategy<V> {
        sampler: std::rc::Rc<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (self.sampler)(rng)
        }
    }

    /// Uniform choice between boxed alternatives (what `prop_oneof!`
    /// expands to).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    /// Always yields clones of one value.
    #[derive(Clone, Debug)]
    pub struct Just<V>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn sample(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    // ------------------------------------------------------------ ranges

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    // ------------------------------------------------------------ tuples

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    }

    // ----------------------------------------------- regex-subset strings

    /// `&str` patterns act as string strategies, supporting the regex
    /// subset this workspace uses: literal characters, `\xNN` escapes,
    /// character classes with ranges (`[a-z0-9]`, `[a-z0\x00]`), and
    /// `{n}` / `{m,n}` repetition.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let atoms = parse_pattern(self);
            let mut out = String::new();
            for atom in &atoms {
                let n = atom.min as u64
                    + if atom.max > atom.min {
                        rng.below((atom.max - atom.min + 1) as u64)
                    } else {
                        0
                    };
                for _ in 0..n {
                    let idx = rng.below(atom.chars.len() as u64) as usize;
                    out.push(atom.chars[idx]);
                }
            }
            out
        }
    }

    struct Atom {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse_pattern(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let mut set = Vec::new();
            match chars[i] {
                '[' => {
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        let lo = read_char(&chars, &mut i, pattern);
                        if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                            i += 1;
                            let hi = read_char(&chars, &mut i, pattern);
                            assert!(lo <= hi, "bad range in pattern {pattern:?}");
                            for c in lo..=hi {
                                set.push(c);
                            }
                        } else {
                            set.push(lo);
                        }
                    }
                    assert!(
                        i < chars.len(),
                        "unterminated character class in pattern {pattern:?}"
                    );
                    i += 1; // consume ']'
                }
                _ => {
                    set.push(read_char(&chars, &mut i, pattern));
                }
            }
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                i += 1;
                let mut min_text = String::new();
                while i < chars.len() && chars[i].is_ascii_digit() {
                    min_text.push(chars[i]);
                    i += 1;
                }
                let min: usize = min_text.parse().expect("repetition count");
                let max = if i < chars.len() && chars[i] == ',' {
                    i += 1;
                    let mut max_text = String::new();
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        max_text.push(chars[i]);
                        i += 1;
                    }
                    max_text.parse().expect("repetition count")
                } else {
                    min
                };
                assert!(
                    i < chars.len() && chars[i] == '}',
                    "unterminated repetition in pattern {pattern:?}"
                );
                i += 1;
                (min, max)
            } else {
                (1, 1)
            };
            assert!(min <= max, "inverted repetition in pattern {pattern:?}");
            atoms.push(Atom {
                chars: set,
                min,
                max,
            });
        }
        atoms
    }

    fn read_char(chars: &[char], i: &mut usize, pattern: &str) -> char {
        let c = chars[*i];
        *i += 1;
        if c != '\\' {
            return c;
        }
        let esc = chars[*i];
        *i += 1;
        match esc {
            'x' => {
                let hex: String = chars[*i..*i + 2].iter().collect();
                *i += 2;
                let code = u8::from_str_radix(&hex, 16)
                    .unwrap_or_else(|_| panic!("bad \\x escape in pattern {pattern:?}"));
                code as char
            }
            'n' => '\n',
            't' => '\t',
            other => other, // \\, \[, \], \{ ...
        }
    }

    // ------------------------------------------------------- arbitrary

    /// Types with a canonical "any value" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, zero-centered; proptest biases toward "nice"
            // floats too, and the tests here only need coverage.
            (rng.unit_f64() - 0.5) * 2e9
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{FFFD}')
        }
    }

    /// Strategy wrapper produced by [`crate::arbitrary::any`].
    #[derive(Clone, Debug)]
    pub struct ArbitraryStrategy<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T> Default for ArbitraryStrategy<T> {
        fn default() -> Self {
            ArbitraryStrategy {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()`, mirroring `proptest::arbitrary`.

    use crate::strategy::{Arbitrary, ArbitraryStrategy};

    /// A strategy producing unconstrained values of `T`.
    pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
        ArbitraryStrategy::default()
    }
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// Output of [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies, mirroring `proptest::option`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Some` from `inner` about 3/4 of the time, `None` otherwise (the
    /// same bias real proptest uses).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Output of [`of`].
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.chance(0.75) {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

pub mod prelude {
    //! The usual glob import, mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(args in strategies) { body }`
/// becomes a `#[test]` running the body over many sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _case in 0..config.cases {
                    $(let $p = $crate::strategy::Strategy::sample(&($s), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Like `assert!`, inside a property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Like `assert_eq!`, inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Like `assert_ne!`, inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_shapes() {
        let mut rng = crate::test_runner::TestRng::for_test("string_pattern_shapes");
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z0-9]{1,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 6);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));

            let nul = Strategy::sample(&"[a-z0\\x00]{1,5}", &mut rng);
            assert!(!nul.is_empty() && nul.chars().count() <= 5);
            assert!(nul
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '0' || c == '\0'));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("ranges_stay_in_bounds");
        for _ in 0..500 {
            let u = Strategy::sample(&(5u64..17), &mut rng);
            assert!((5..17).contains(&u));
            let f = Strategy::sample(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn determinism_per_test_name() {
        let sample = |name: &str| {
            let mut rng = crate::test_runner::TestRng::for_test(name);
            (0..10)
                .map(|_| Strategy::sample(&(0u64..1000), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(sample("alpha"), sample("alpha"));
        assert_ne!(sample("alpha"), sample("beta"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(
            mut xs in crate::collection::vec(0u64..100, 1..20),
            flag in any::<bool>(),
            opt in crate::option::of(1i64..5),
        ) {
            xs.sort_unstable();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
            prop_assert_eq!(flag as u8 <= 1, true);
            if let Some(v) = opt {
                prop_assert!((1..5).contains(&v));
            }
        }

        #[test]
        fn oneof_and_map(op in prop_oneof![
            (0u64..10).prop_map(|n| n * 2),
            (0u64..10).prop_map(|n| n * 2 + 1),
        ]) {
            prop_assert!(op < 20);
        }
    }
}
