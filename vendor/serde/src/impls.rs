//! `Serialize` / `Deserialize` implementations for standard-library
//! types, mirroring the conventions of real serde + serde_json:
//! integers and floats are numbers, `Option::None` is `null`, sequences
//! and tuples are arrays, maps are objects with stringified keys.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::Hash;
use std::sync::Arc;

use crate::{Deserialize, Error, JsonKey, Map, Number, Serialize, Value};

// ---------------------------------------------------------------- scalars

macro_rules! int_impl {
    ($($t:ty => $via:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn json_value(&self) -> Value {
                Value::Number(Number::from(*self as $via))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(n) => n,
                    other => return Err(crate::__private::type_mismatch(stringify!($t), other)),
                };
                let wide: $via = match (<$via>::MIN == 0, n.as_u64(), n.as_i64()) {
                    (true, Some(u), _) => u as $via,
                    (false, _, Some(i)) => i as $via,
                    _ => return Err(Error::custom(concat!("number out of range for ", stringify!($t)))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(concat!("number out of range for ", stringify!($t))))
            }
        }
        impl JsonKey for $t {
            fn to_json_key(&self) -> String {
                self.to_string()
            }
            fn from_json_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| {
                    Error::custom(concat!("invalid map key for ", stringify!($t)))
                })
            }
        }
    )*};
}

int_impl! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
}

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_value(&self) -> Value {
                Value::Number(Number::Float(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    other => Err(crate::__private::type_mismatch(stringify!($t), other)),
                }
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Serialize for bool {
    fn json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(crate::__private::type_mismatch("bool", other)),
        }
    }
}

impl Serialize for String {
    fn json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(crate::__private::type_mismatch("String", other)),
        }
    }
}

impl Serialize for str {
    fn json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(crate::__private::type_mismatch("char", other)),
        }
    }
}

impl Serialize for () {
    fn json_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(crate::__private::type_mismatch("()", other)),
        }
    }
}

impl JsonKey for String {
    fn to_json_key(&self) -> String {
        self.clone()
    }
    fn from_json_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

// ----------------------------------------------------------- references

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json_value(&self) -> Value {
        (**self).json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn json_value(&self) -> Value {
        (**self).json_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        T::from_json_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn json_value(&self) -> Value {
        (**self).json_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        T::from_json_value(v).map(Arc::new)
    }
}

// ------------------------------------------------------------- wrappers

impl<T: Serialize> Serialize for Option<T> {
    fn json_value(&self) -> Value {
        match self {
            Some(v) => v.json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl Serialize for Value {
    fn json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ------------------------------------------------------------ sequences

macro_rules! seq_impl {
    ($name:ident < T $(: $bound:ident $(+ $bound2:ident)*)? >) => {
        impl<T: Serialize $(+ $bound $(+ $bound2)*)?> Serialize for $name<T> {
            fn json_value(&self) -> Value {
                Value::Array(self.iter().map(|x| x.json_value()).collect())
            }
        }
        impl<T: Deserialize $(+ $bound $(+ $bound2)*)?> Deserialize for $name<T> {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        items.iter().map(T::from_json_value).collect()
                    }
                    other => Err(crate::__private::type_mismatch(stringify!($name), other)),
                }
            }
        }
    };
}

seq_impl!(Vec<T>);
seq_impl!(VecDeque<T>);
seq_impl!(BTreeSet<T: Ord>);
seq_impl!(HashSet<T: Eq + Hash>);

impl<T: Serialize> Serialize for [T] {
    fn json_value(&self) -> Value {
        Value::Array(self.iter().map(|x| x.json_value()).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn json_value(&self) -> Value {
        Value::Array(self.iter().map(|x| x.json_value()).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let items = match v {
            Value::Array(items) if items.len() == N => items,
            Value::Array(items) => {
                return Err(Error::custom(format!(
                    "expected array of length {N}, got {}",
                    items.len()
                )))
            }
            other => return Err(crate::__private::type_mismatch("array", other)),
        };
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_json_value(item)?;
        }
        Ok(out)
    }
}

// --------------------------------------------------------------- tuples

macro_rules! tuple_impl {
    ($(($($t:ident . $idx:tt),+ ; $len:expr)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.json_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        let mut it = items.iter();
                        Ok(($($t::from_json_value(it.next().expect("length checked"))?,)+))
                    }
                    other => Err(crate::__private::type_mismatch("tuple", other)),
                }
            }
        }
    )+};
}

tuple_impl! {
    (A.0; 1),
    (A.0, B.1; 2),
    (A.0, B.1, C.2; 3),
    (A.0, B.1, C.2, D.3; 4),
    (A.0, B.1, C.2, D.3, E.4; 5),
    (A.0, B.1, C.2, D.3, E.4, F.5; 6),
}

// ----------------------------------------------------------------- maps

macro_rules! map_impl {
    ($name:ident, $($bound:ident)+) => {
        impl<K: JsonKey $(+ $bound)+, V: Serialize> Serialize for $name<K, V> {
            fn json_value(&self) -> Value {
                let mut obj = Map::new();
                for (k, v) in self {
                    obj.insert(k.to_json_key(), v.json_value());
                }
                Value::Object(obj)
            }
        }
        impl<K: JsonKey $(+ $bound)+, V: Deserialize> Deserialize for $name<K, V> {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Object(obj) => obj
                        .iter()
                        .map(|(k, v)| Ok((K::from_json_key(k)?, V::from_json_value(v)?)))
                        .collect(),
                    other => Err(crate::__private::type_mismatch(stringify!($name), other)),
                }
            }
        }
    };
}

map_impl!(BTreeMap, Ord);
map_impl!(HashMap, Eq Hash);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(u32::from_json_value(&42u32.json_value()).unwrap(), 42);
        assert_eq!(i64::from_json_value(&(-7i64).json_value()).unwrap(), -7);
        assert_eq!(f64::from_json_value(&1.5f64.json_value()).unwrap(), 1.5);
        assert_eq!(String::from_json_value(&"hi".json_value()).unwrap(), "hi");
        assert!(u8::from_json_value(&300u32.json_value()).is_err());
    }

    #[test]
    fn container_roundtrips() {
        let v = vec![(String::from("a"), 1u64), (String::from("b"), 2)];
        let back: Vec<(String, u64)> = Deserialize::from_json_value(&v.json_value()).unwrap();
        assert_eq!(back, v);

        let mut m = HashMap::new();
        m.insert(7u64, vec![1.5f64]);
        let back: HashMap<u64, Vec<f64>> = Deserialize::from_json_value(&m.json_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn option_null_mapping() {
        assert_eq!(Option::<u32>::from_json_value(&Value::Null).unwrap(), None);
        assert_eq!(None::<u32>.json_value(), Value::Null);
        assert_eq!(Some(3u32).json_value(), 3u32.json_value());
    }
}
