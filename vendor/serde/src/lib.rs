//! Offline stand-in for the `serde` crate.
//!
//! The build environment cannot reach crates.io, and the only data format
//! this workspace ever serializes to is JSON (via the sibling
//! `serde_json` stub). That permits a radical simplification: instead of
//! serde's visitor architecture, [`Serialize`] converts a value directly
//! into a JSON [`Value`] tree and [`Deserialize`] reads one back. The
//! public *names* match real serde — `Serialize` / `Deserialize` traits
//! and derive macros, `serde::de::DeserializeOwned`, the
//! `#[serde(default)]` field attribute — so application code compiles
//! unchanged and can move back to the real crates when the environment
//! allows.

#![warn(missing_docs)]

mod impls;
mod text;
mod value;

pub use value::{Error, Map, Number, Value};

/// Derive macros mirroring `serde_derive`.
pub use serde_derive::{Deserialize, Serialize};

pub(crate) use text::to_compact_string;

/// A value that can be converted into a JSON tree.
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn json_value(&self) -> Value;
}

/// A value that can be reconstructed from a JSON tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a JSON value.
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

/// Deserialization sub-module, mirroring `serde::de`.
pub mod de {
    /// Marker for deserializable types that own all their data. With this
    /// stub's lifetime-free [`crate::Deserialize`], every deserializable
    /// type qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Map keys: types usable as JSON object keys (JSON keys are always
/// strings, so numeric keys round-trip through their decimal rendering —
/// the same convention real `serde_json` uses).
pub trait JsonKey: Sized {
    /// Renders the key as a JSON object key.
    fn to_json_key(&self) -> String;
    /// Parses the key back from a JSON object key.
    fn from_json_key(s: &str) -> Result<Self, Error>;
}

#[doc(hidden)]
pub mod __private {
    //! Helpers the derive macros expand to. Not a stable API.
    pub use crate::text::{parse_value, to_compact_string, to_pretty_string};

    use crate::{Error, Value};

    /// Field lookup for derived `Deserialize` impls: returns the field's
    /// value, `Null` for a missing field that may default, or an error.
    pub fn field<'v>(
        obj: &'v crate::Map,
        name: &str,
        ty: &str,
        allow_missing: bool,
    ) -> Result<Option<&'v Value>, Error> {
        match obj.get(name) {
            Some(v) => Ok(Some(v)),
            None if allow_missing => Ok(None),
            None => Err(Error::custom(format!("{ty}: missing field `{name}`"))),
        }
    }

    /// Error for an unknown enum variant.
    pub fn unknown_variant(ty: &str, got: &str) -> Error {
        Error::custom(format!("{ty}: unknown variant `{got}`"))
    }

    /// Error for a JSON shape that does not match the expected type.
    pub fn type_mismatch(ty: &str, got: &Value) -> Error {
        Error::custom(format!("{ty}: unexpected JSON shape {}", got.kind_name()))
    }
}
