//! JSON text layer: a recursive-descent parser and compact / pretty
//! printers over [`Value`]. Lives in the serde stub so both `serde` and
//! the `serde_json` facade can use it.

use crate::{Error, Map, Number, Value};

// ---------------------------------------------------------------- print

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(obj) => {
            out.push('{');
            for (i, (k, v)) in obj.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const PAD: &str = "  ";
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&PAD.repeat(indent + 1));
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push(']');
        }
        Value::Object(obj) if !obj.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in obj.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&PAD.repeat(indent + 1));
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(v, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Renders `v` as minified JSON.
pub fn to_compact_string(v: &Value) -> String {
    let mut out = String::new();
    write_compact(v, &mut out);
    out
}

/// Renders `v` as two-space-indented JSON.
pub fn to_pretty_string(v: &Value) -> String {
    let mut out = String::new();
    write_pretty(v, 0, &mut out);
    out
}

// ---------------------------------------------------------------- parse

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}")))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|_| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "string")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: recombine when a high
                            // surrogate is followed by \uDC00-\uDFFF.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or_else(|| self.err("truncated surrogate"))?;
                                    let lo_hex = std::str::from_utf8(lo_hex)
                                        .map_err(|_| self.err("bad surrogate"))?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| self.err("bad surrogate"))?;
                                    self.pos += 6;
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar from the raw bytes.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked byte exists");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n = if is_float {
            Number::Float(text.parse().map_err(|_| self.err("invalid float"))?)
        } else if text.starts_with('-') {
            Number::from(
                text.parse::<i64>()
                    .map_err(|_| self.err("integer out of range"))?,
            )
        } else {
            Number::PosInt(
                text.parse::<u64>()
                    .map_err(|_| self.err("integer out of range"))?,
            )
        };
        Ok(Value::Number(n))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "object")?;
        let mut obj = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(obj));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "`:`")?;
            let value = self.parse_value()?;
            obj.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(obj));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a complete JSON document from `bytes`.
pub fn parse_value(bytes: &[u8]) -> Result<Value, Error> {
    let mut p = Parser { bytes, pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing data after JSON document"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> Value {
        let v = parse_value(text.as_bytes()).unwrap();
        let back = parse_value(to_compact_string(&v).as_bytes()).unwrap();
        assert_eq!(v, back);
        v
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(roundtrip("null"), Value::Null);
        assert_eq!(roundtrip("true"), Value::Bool(true));
        assert_eq!(roundtrip("42"), Value::Number(Number::PosInt(42)));
        assert_eq!(roundtrip("-3"), Value::Number(Number::NegInt(-3)));
        assert_eq!(roundtrip("1.5"), Value::Number(Number::Float(1.5)));
        assert_eq!(roundtrip("\"a\\nb\""), Value::String("a\nb".into()));
    }

    #[test]
    fn parses_nested() {
        let v = roundtrip(r#"{"a": [1, {"b": null}], "c": "x"}"#);
        assert_eq!(v["a"][1]["b"], Value::Null);
        assert_eq!(v["c"].as_str(), Some("x"));
    }

    #[test]
    fn unicode_escapes() {
        // Raw UTF-8 passes through; \u escapes (including the surrogate
        // pair for U+1F600) decode to the same string.
        assert_eq!(
            parse_value(r#""æ😀""#.as_bytes()).unwrap(),
            Value::String("æ😀".into())
        );
        assert_eq!(
            parse_value(br#""\u00e6\ud83d\ude00""#).unwrap(),
            Value::String("æ😀".into())
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value(b"not json at all {").is_err());
        assert!(parse_value(b"{\"a\": }").is_err());
        assert!(parse_value(b"1 2").is_err());
    }

    #[test]
    fn pretty_print_shape() {
        let v = parse_value(br#"{"b": 1, "a": [true]}"#).unwrap();
        assert_eq!(
            to_pretty_string(&v),
            "{\n  \"a\": [\n    true\n  ],\n  \"b\": 1\n}"
        );
    }

    #[test]
    fn float_rendering_reparses_as_float() {
        let v = Value::Number(Number::Float(2.0));
        let text = to_compact_string(&v);
        assert_eq!(text, "2.0");
        assert_eq!(parse_value(text.as_bytes()).unwrap(), v);
    }
}
