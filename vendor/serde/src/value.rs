//! The JSON data model: [`Value`], [`Number`], [`Map`], and [`Error`].

use std::collections::BTreeMap;
use std::fmt;

/// JSON object representation. A `BTreeMap` keeps key order
/// deterministic, which the golden-file tests rely on.
pub type Map = BTreeMap<String, Value>;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object (keys sorted).
    Object(Map),
}

impl Value {
    /// Human-readable name of the value's JSON kind (for error messages).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, when representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, when representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The key/value map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member access (`None` for non-objects or absent keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::to_compact_string(self))
    }
}

/// A JSON number: non-negative integer, negative integer, or float —
/// the same three-way split real `serde_json` uses, preserved so integer
/// values compare exactly.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// An integer ≥ 0.
    PosInt(u64),
    /// An integer < 0.
    NegInt(i64),
    /// Any finite float.
    Float(f64),
}

impl Number {
    /// As `u64` when the number is an integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(_) => None,
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// As `i64` when the number is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }

    /// Lossy conversion to `f64` (exact for floats and small integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(f) => f,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        use Number::*;
        match (*self, *other) {
            (PosInt(a), PosInt(b)) => a == b,
            (NegInt(a), NegInt(b)) => a == b,
            // Mixed-sign integers: equal only when both denote the same
            // non-negative value (a NegInt is always < 0 by construction,
            // but be defensive about hand-built values).
            (PosInt(a), NegInt(b)) | (NegInt(b), PosInt(a)) => b >= 0 && a == b as u64,
            (Float(a), Float(b)) => a == b,
            // Ints never equal floats, matching serde_json.
            _ => false,
        }
    }
}

impl From<u64> for Number {
    fn from(v: u64) -> Self {
        Number::PosInt(v)
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Self {
        if v < 0 {
            Number::NegInt(v)
        } else {
            Number::PosInt(v as u64)
        }
    }
}

impl From<f64> for Number {
    fn from(v: f64) -> Self {
        Number::Float(v)
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v == v.trunc() && v.is_finite() && v.abs() < 1e15 {
                    // Keep a trailing ".0" so floats re-parse as floats.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}
