//! Offline stand-in for `serde_derive`.
//!
//! `syn`/`quote` are unavailable in this build environment, so the item
//! is parsed directly from the `proc_macro` token stream. The supported
//! grammar is exactly what the workspace uses:
//!
//! * structs with named fields, tuple structs, unit structs;
//! * enums with unit, tuple, and struct variants;
//! * simple generic parameters (`<T>`, `<P>`) without bounds or
//!   lifetimes;
//! * the `#[serde(default)]` field attribute.
//!
//! Encoding matches real serde_json defaults: structs → objects,
//! newtype structs → their inner value, tuples → arrays, unit enum
//! variants → `"Name"`, data-carrying variants → `{"Name": payload}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String, // named fields: identifier; tuple fields: index
    has_default: bool,
    is_option: bool,
}

#[derive(Debug)]
enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    body: VariantBody,
}

#[derive(Debug)]
enum VariantBody {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Item {
    name: String,
    generics: Vec<String>,
    body: Body,
}

/// Derives the stub `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the stub `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ------------------------------------------------------------------ parse

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (incl. doc comments) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // `#` + `[...]`
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };
    i += 1;

    // Optional simple generics `<A, B>` (no bounds, no lifetimes — all
    // the workspace uses).
    let mut generics = Vec::new();
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1usize;
        while depth > 0 {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Ident(id)) if depth == 1 => generics.push(id.to_string()),
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
                Some(other) => panic!(
                    "serde derive: only plain `<T>`-style generics are supported, got {other:?}"
                ),
                None => panic!("serde derive: unterminated generics"),
            }
            i += 1;
        }
    }

    let body = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => panic!("serde derive: malformed struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: malformed enum body: {other:?}"),
        },
        other => panic!("serde derive: unsupported item kind `{other}`"),
    };

    Item {
        name,
        generics,
        body,
    }
}

/// Splits a field-list token stream at top-level commas (angle-bracket
/// depth tracked so `Option<(A, B)>` stays intact; bracketed groups are
/// single tokens already).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut pieces = vec![Vec::new()];
    let mut angle = 0isize;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                pieces.push(Vec::new());
                continue;
            }
            _ => {}
        }
        pieces.last_mut().expect("non-empty").push(tt);
    }
    if pieces.last().is_some_and(Vec::is_empty) {
        pieces.pop();
    }
    pieces
}

/// Parses one named field out of its token slice: attributes, visibility,
/// name, `:`, type. Detects `#[serde(default)]` and `Option<...>` types.
fn parse_named_field(tokens: &[TokenTree]) -> Field {
    let mut i = 0;
    let mut has_default = false;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let text = g.stream().to_string();
                    // `serde(default)` — the only serde attribute supported.
                    if text.starts_with("serde") && text.contains("default") {
                        has_default = true;
                    } else if text.starts_with("serde") {
                        panic!("serde derive: unsupported serde attribute: #[{text}]");
                    }
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected field name, got {other:?}"),
    };
    // tokens[i+1] is `:`; the type follows.
    let is_option = matches!(
        tokens.get(i + 2),
        Some(TokenTree::Ident(id)) if id.to_string() == "Option"
    );
    Field {
        name,
        has_default,
        is_option,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level(stream)
        .iter()
        .map(|piece| parse_named_field(piece))
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|piece| {
            let mut i = 0;
            // Skip doc comments / attributes on the variant.
            while matches!(piece.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
                i += 2;
            }
            let name = match piece.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde derive: expected variant name, got {other:?}"),
            };
            let body = match piece.get(i + 1) {
                None => VariantBody::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantBody::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantBody::Named(parse_named_fields(g.stream()))
                }
                // `Variant = 3` discriminants and anything else are out of
                // scope for this stub.
                other => panic!("serde derive: malformed variant body: {other:?}"),
            };
            Variant { name, body }
        })
        .collect()
}

// ---------------------------------------------------------------- codegen

fn impl_header(item: &Item, trait_path: &str, bound: &str) -> String {
    if item.generics.is_empty() {
        format!("impl {trait_path} for {} ", item.name)
    } else {
        let params = item.generics.join(", ");
        let bounds = item
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "impl<{params}> {trait_path} for {}<{params}> where {bounds} ",
            item.name
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let mut s = String::from("let mut obj = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "obj.insert(\"{n}\".to_string(), ::serde::Serialize::json_value(&self.{n}));\n",
                    n = f.name
                ));
            }
            s.push_str("::serde::Value::Object(obj)");
            s
        }
        Body::TupleStruct(1) => "::serde::Serialize::json_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::json_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Array(vec![{items}])")
        }
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let ty = &item.name;
                let name = &v.name;
                match &v.body {
                    VariantBody::Unit => arms.push_str(&format!(
                        "{ty}::{name} => ::serde::Value::String(\"{name}\".to_string()),\n"
                    )),
                    VariantBody::Tuple(1) => arms.push_str(&format!(
                        "{ty}::{name}(f0) => {{\n\
                         let mut obj = ::serde::Map::new();\n\
                         obj.insert(\"{name}\".to_string(), ::serde::Serialize::json_value(f0));\n\
                         ::serde::Value::Object(obj)\n}}\n"
                    )),
                    VariantBody::Tuple(n) => {
                        let binds = (0..*n)
                            .map(|i| format!("f{i}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let items = (0..*n)
                            .map(|i| format!("::serde::Serialize::json_value(f{i})"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "{ty}::{name}({binds}) => {{\n\
                             let mut obj = ::serde::Map::new();\n\
                             obj.insert(\"{name}\".to_string(), ::serde::Value::Array(vec![{items}]));\n\
                             ::serde::Value::Object(obj)\n}}\n"
                        ));
                    }
                    VariantBody::Named(fields) => {
                        let binds = fields
                            .iter()
                            .map(|f| f.name.clone())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut inner = String::from("let mut inner = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "inner.insert(\"{n}\".to_string(), ::serde::Serialize::json_value({n}));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{ty}::{name} {{ {binds} }} => {{\n{inner}\
                             let mut obj = ::serde::Map::new();\n\
                             obj.insert(\"{name}\".to_string(), ::serde::Value::Object(inner));\n\
                             ::serde::Value::Object(obj)\n}}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "{header}{{\nfn json_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}",
        header = impl_header(item, "::serde::Serialize", "::serde::Serialize")
    )
}

fn gen_field_extract(ty: &str, f: &Field, source: &str) -> String {
    // `#[serde(default)]` or an Option type tolerate a missing key.
    let allow_missing = f.has_default || f.is_option;
    let fallback = if f.has_default {
        "::core::default::Default::default()".to_string()
    } else if f.is_option {
        "::core::option::Option::None".to_string()
    } else {
        String::new()
    };
    if allow_missing {
        format!(
            "match ::serde::__private::field({source}, \"{n}\", \"{ty}\", true)? {{\n\
             Some(v) => ::serde::Deserialize::from_json_value(v)?,\n\
             None => {fallback},\n}}",
            n = f.name
        )
    } else {
        format!(
            "::serde::Deserialize::from_json_value(\
             ::serde::__private::field({source}, \"{n}\", \"{ty}\", false)?\
             .expect(\"present\"))?",
            n = f.name
        )
    }
}

fn gen_deserialize(item: &Item) -> String {
    let ty = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let mut s = format!(
                "let obj = match v {{\n\
                 ::serde::Value::Object(m) => m,\n\
                 other => return Err(::serde::__private::type_mismatch(\"{ty}\", other)),\n}};\n"
            );
            s.push_str(&format!("Ok({ty} {{\n"));
            for f in fields {
                s.push_str(&format!(
                    "{n}: {expr},\n",
                    n = f.name,
                    expr = gen_field_extract(ty, f, "obj")
                ));
            }
            s.push_str("})");
            s
        }
        Body::TupleStruct(1) => {
            format!("Ok({ty}(::serde::Deserialize::from_json_value(v)?))")
        }
        Body::TupleStruct(n) => {
            let mut s = format!(
                "let items = match v {{\n\
                 ::serde::Value::Array(a) if a.len() == {n} => a,\n\
                 other => return Err(::serde::__private::type_mismatch(\"{ty}\", other)),\n}};\n"
            );
            let args = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_json_value(&items[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            s.push_str(&format!("Ok({ty}({args}))"));
            s
        }
        Body::UnitStruct => format!("let _ = v;\nOk({ty})"),
        Body::Enum(variants) => {
            // Unit variants arrive as strings; data variants as
            // single-key objects.
            let mut str_arms = String::new();
            let mut obj_arms = String::new();
            for var in variants {
                let name = &var.name;
                match &var.body {
                    VariantBody::Unit => {
                        str_arms.push_str(&format!("\"{name}\" => Ok({ty}::{name}),\n"));
                    }
                    VariantBody::Tuple(1) => {
                        obj_arms.push_str(&format!(
                            "\"{name}\" => Ok({ty}::{name}(\
                             ::serde::Deserialize::from_json_value(payload)?)),\n"
                        ));
                    }
                    VariantBody::Tuple(n) => {
                        let args = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_json_value(&items[{i}])?"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        obj_arms.push_str(&format!(
                            "\"{name}\" => {{\n\
                             let items = match payload {{\n\
                             ::serde::Value::Array(a) if a.len() == {n} => a,\n\
                             other => return Err(::serde::__private::type_mismatch(\"{ty}::{name}\", other)),\n}};\n\
                             Ok({ty}::{name}({args}))\n}}\n"
                        ));
                    }
                    VariantBody::Named(fields) => {
                        let mut s = format!(
                            "\"{name}\" => {{\n\
                             let inner = match payload {{\n\
                             ::serde::Value::Object(m) => m,\n\
                             other => return Err(::serde::__private::type_mismatch(\"{ty}::{name}\", other)),\n}};\n\
                             Ok({ty}::{name} {{\n"
                        );
                        for f in fields {
                            s.push_str(&format!(
                                "{n}: {expr},\n",
                                n = f.name,
                                expr = gen_field_extract(ty, f, "inner")
                            ));
                        }
                        s.push_str("})\n}\n");
                        obj_arms.push_str(&s);
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{str_arms}\
                 other => Err(::serde::__private::unknown_variant(\"{ty}\", other)),\n}},\n\
                 ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                 let (tag, payload) = m.iter().next().expect(\"len checked\");\n\
                 match tag.as_str() {{\n{obj_arms}\
                 other => Err(::serde::__private::unknown_variant(\"{ty}\", other)),\n}}\n}},\n\
                 other => Err(::serde::__private::type_mismatch(\"{ty}\", other)),\n}}"
            )
        }
    };
    format!(
        "{header}{{\nfn from_json_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}",
        header = impl_header(item, "::serde::Deserialize", "::serde::Deserialize")
    )
}
