//! Offline stand-in for `serde_json`.
//!
//! A thin facade over the sibling `serde` stub, which already carries
//! the JSON [`Value`] tree, the text parser/printers, and the
//! tree-based `Serialize`/`Deserialize` traits. Only the functions and
//! macros this workspace actually calls are provided.

#![warn(missing_docs)]

pub use serde::{Error, Map, Number, Value};

use serde::de::DeserializeOwned;
use serde::Serialize;

/// `serde_json::Result`, as used by `?` on the fallible functions here.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` into a compact JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string(value)?.into_bytes())
}

/// Serializes `value` into a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::__private::to_compact_string(&value.json_value()))
}

/// Serializes `value` into a pretty-printed (2-space indent) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::__private::to_pretty_string(&value.json_value()))
}

/// Converts `value` into a JSON [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.json_value())
}

/// Deserializes `T` from JSON text bytes.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let v = serde::__private::parse_value(bytes)?;
    T::from_json_value(&v)
}

/// Deserializes `T` from a JSON text string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    from_slice(s.as_bytes())
}

/// Reconstructs `T` from a JSON [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(v: Value) -> Result<T> {
    T::from_json_value(&v)
}

/// Builds a [`Value`] from JSON-ish literal syntax, like `serde_json::json!`.
///
/// Expressions interpolate through [`serde::Serialize`], so
/// `json!({"n": count})` works for any serializable `count`. Object and
/// array bodies are token-munched, so multi-token values (`-30`,
/// `a + b`, nested literals) work as they do in real serde_json.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => { $crate::__json_array!([] [] $($tt)*) };
    ({ $($tt:tt)* }) => { $crate::__json_object!([] $($tt)*) };
    ($other:expr) => {
        ::serde::Serialize::json_value(&$other)
    };
}

/// Array muncher: accumulates `[done-elements] [current-buffer] rest...`.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_array {
    ([$(($elem:expr))*] []) => {
        $crate::Value::Array(vec![$($elem),*])
    };
    ([$(($elem:expr))*] [$($buf:tt)+]) => {
        $crate::Value::Array(vec![$($elem,)* $crate::json!($($buf)+)])
    };
    ([$($done:tt)*] [$($buf:tt)+] , $($rest:tt)*) => {
        $crate::__json_array!([$($done)* ($crate::json!($($buf)+))] [] $($rest)*)
    };
    ([$($done:tt)*] [$($buf:tt)*] $next:tt $($rest:tt)*) => {
        $crate::__json_array!([$($done)*] [$($buf)* $next] $($rest)*)
    };
}

/// Object muncher: accumulates `[(key, value))*]`, then builds the map.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_object {
    ([$(($k:expr, $v:expr))*]) => {{
        #[allow(unused_mut)]
        let mut obj = $crate::Map::new();
        $(obj.insert(($k).to_string(), $v);)*
        $crate::Value::Object(obj)
    }};
    ([$($acc:tt)*] $key:tt : $($rest:tt)*) => {
        $crate::__json_value!([$($acc)*] ($key) [] $($rest)*)
    };
}

/// Value muncher for one object entry: collects tokens up to a
/// top-level comma, then hands back to the object muncher.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_value {
    ([$($acc:tt)*] ($key:tt) [$($buf:tt)+] , $($rest:tt)*) => {
        $crate::__json_object!([$($acc)* (($key), $crate::json!($($buf)+))] $($rest)*)
    };
    ([$($acc:tt)*] ($key:tt) [$($buf:tt)+]) => {
        $crate::__json_object!([$($acc)* (($key), $crate::json!($($buf)+))])
    };
    ([$($acc:tt)*] ($key:tt) [$($buf:tt)*] $next:tt $($rest:tt)*) => {
        $crate::__json_value!([$($acc)*] ($key) [$($buf)* $next] $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "name": "pump-3",
            "ok": true,
            "delta": -30,
            "temps": [1, 2.5, null],
            "nested": {"count": 2u64},
        });
        assert_eq!(v["name"].as_str(), Some("pump-3"));
        assert_eq!(v["delta"].as_i64(), Some(-30));
        assert_eq!(v["temps"][1].as_f64(), Some(2.5));
        assert!(v["temps"][2].is_null());
        assert_eq!(v["nested"]["count"].as_u64(), Some(2));
    }

    #[test]
    fn text_roundtrip() {
        let v = json!({"a": [1, 2], "b": "x\"y"});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn interpolation_uses_serialize() {
        let count = 5u32;
        let v = json!({ "count": count });
        assert_eq!(v["count"].as_u64(), Some(5));
    }
}
